"""Public-API surface checks: exports exist, __all__ is honest."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.htl",
    "repro.model",
    "repro.pictures",
    "repro.core",
    "repro.sqlbaseline",
    "repro.sqlbaseline.relational",
    "repro.analyzer",
    "repro.workloads",
    "repro.bench",
    "repro.store",
    "repro.shard",
    "repro.serve",
    "repro.ingest",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_top_level_quickstart_surface():
    import repro

    assert callable(repro.parse)
    assert callable(repro.pretty)
    engine = repro.RetrievalEngine()
    assert engine.config.join_mode == "inner"
    assert repro.__version__


def test_errors_hierarchy():
    from repro import errors

    leaves = [
        errors.InvalidIntervalError,
        errors.InvalidSimilarityError,
        errors.SimilarityListInvariantError,
        errors.HTLSyntaxError,
        errors.HTLTypeError,
        errors.UnsupportedFormulaError,
        errors.HierarchyError,
        errors.UnknownLevelError,
        errors.MetadataError,
        errors.SQLSyntaxError,
        errors.SQLCatalogError,
        errors.SQLExecutionError,
        errors.WorkloadError,
    ]
    for leaf in leaves:
        assert issubclass(leaf, errors.ReproError)
    # Catching the base class is the documented contract.
    with pytest.raises(errors.ReproError):
        raise errors.HTLSyntaxError("x", 1, 2)


def test_syntax_errors_carry_positions():
    from repro.errors import HTLSyntaxError, SQLSyntaxError

    error = HTLSyntaxError("bad", line=3, column=7)
    assert error.line == 3 and error.column == 7
    assert "line 3" in str(error)
    sql_error = SQLSyntaxError("bad", line=2, column=5)
    assert "line 2" in str(sql_error)
