"""Unit tests for the cost-based query planner (DESIGN.md §13)."""

import pytest

from repro.core import planner as planning
from repro.core.cache import PlanCache
from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.planner import (
    CostModel,
    Planner,
    Statistics,
    has_picture_atoms,
    order_conjuncts,
    structural_cost,
)
from repro.core.tables import OUTER
from repro.htl import ast, parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.pictures.index import MetadataIndex
from repro.pictures.retrieval import PictureRetrievalSystem


def skewed_segments(n=20, rare=2):
    """``rare`` segments carry the rare type, the rest the common one."""
    segments = []
    for position in range(n):
        objects = [make_object("common", "plane")]
        if position < rare:
            objects.append(make_object(f"rare{position}", "person"))
        segments.append(SegmentMetadata(objects=objects))
    return segments


def skewed_video(name="vid", n=20, rare=2):
    return flat_video(name, skewed_segments(n, rare))


# ---------------------------------------------------------------------------
# structural fallback (the old optimizer heuristic)
# ---------------------------------------------------------------------------
class TestStructuralCost:
    def test_tuple_shape_matches_old_heuristic(self):
        formula = parse("exists x . eventually present(x)")
        n_vars, n_temporal, size = structural_cost(formula)
        assert n_vars == 0  # closed formula: x is bound
        assert n_temporal == 1
        assert size == 3

    def test_free_vars_dominate(self):
        open_atom = parse("exists x . present(x)").sub
        closed = parse("eventually eventually eventually $A")
        # Free object variables are the dominant cost driver: one free var
        # outranks any number of temporal operators.
        assert structural_cost(closed) < structural_cost(open_atom)

    def test_order_conjuncts_is_stable(self):
        a = parse("$A")
        b = parse("$B")
        c = parse("eventually $C")
        assert order_conjuncts([a, b, c]) == [a, b, c]
        assert order_conjuncts([c, a, b]) == [a, b, c]

    def test_order_conjuncts_custom_key(self):
        a, b = parse("$A"), parse("eventually $B")
        assert order_conjuncts([a, b], key=lambda f: 0) == [a, b]

    def test_deprecated_alias_in_optimizer(self):
        from repro.core.optimizer import estimated_cost

        formula = parse("eventually $A")
        assert estimated_cost(formula) == structural_cost(formula)


class TestHasPictureAtoms:
    def test_pure_refs_have_none(self):
        assert not has_picture_atoms(parse("$A and eventually $B"))

    def test_metadata_atoms_do(self):
        assert has_picture_atoms(parse("exists x . present(x)"))

    def test_mixed_ref_conjunction(self):
        assert has_picture_atoms(parse("$A and (exists x . present(x))"))


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------
class TestIndexStats:
    def test_empty_index_edge_case(self):
        stats = MetadataIndex([]).stats()
        assert stats["n_segments"] == 0
        assert stats["pools"] == {
            "universe": 0,
            "types": 0,
            "any_object_segments": 0,
            "signature_segments": 0,
        }
        for family in stats["postings"].values():
            assert family["keys"] == 0
            assert family["lengths"] == {
                "mean": 0.0,
                "p50": 0,
                "p90": 0,
                "max": 0,
            }

    def test_single_video_percentiles(self):
        index = MetadataIndex(skewed_segments(n=10, rare=1))
        stats = index.stats()
        objects = stats["postings"]["object"]
        # 'common' appears in all 10, 'rare0' in 1.
        assert objects["keys"] == 2
        assert objects["lengths"]["max"] == 10
        assert objects["lengths"]["p50"] == 1
        assert objects["lengths"]["p90"] == 10
        assert objects["lengths"]["mean"] == pytest.approx(5.5)
        assert stats["pools"]["universe"] == 2
        assert stats["pools"]["any_object_segments"] == 10

    def test_signature_equal_for_identical_shapes(self):
        left = PictureRetrievalSystem(skewed_segments())
        right = PictureRetrievalSystem(skewed_segments())
        assert (
            Statistics.from_pictures(left).signature
            == Statistics.from_pictures(right).signature
        )

    def test_signature_differs_across_shapes(self):
        small = PictureRetrievalSystem(skewed_segments(n=5))
        large = PictureRetrievalSystem(skewed_segments(n=25))
        assert (
            Statistics.from_pictures(small).signature
            != Statistics.from_pictures(large).signature
        )

    def test_empty_statistics_dedup_factor(self):
        stats = Statistics.from_pictures(PictureRetrievalSystem([]))
        assert stats.dedup_factor == 1.0
        assert stats.n_segments == 0


# ---------------------------------------------------------------------------
# plan construction
# ---------------------------------------------------------------------------
class TestPlanConstruction:
    def test_selective_side_ordered_first(self):
        """The rare-type conjunct evaluates before the everywhere-true one."""
        pictures = PictureRetrievalSystem(skewed_segments())
        formula = parse(
            "exists x . (present(x) and (eventually type(x) = 'person'))"
        )
        planner = Planner()
        plan = planner.plan_for(formula, pictures, 2, EngineConfig())
        conjunction = formula.sub
        assert isinstance(conjunction, ast.And)
        assert plan.right_first(conjunction)

    def test_no_swaps_under_outer_join(self):
        pictures = PictureRetrievalSystem(skewed_segments())
        formula = parse(
            "exists x . (present(x) and (eventually type(x) = 'person'))"
        )
        config = EngineConfig(join_mode=OUTER)
        plan = Planner().plan_for(formula, pictures, 2, config)
        assert not plan.swapped

    def test_every_picture_atom_gets_a_strategy(self):
        pictures = PictureRetrievalSystem(skewed_segments())
        formula = parse(
            "exists x . (present(x) and (eventually type(x) = 'person'))"
        )
        plan = Planner().plan_for(formula, pictures, 2, EngineConfig())
        assert len(plan.atoms) == 2
        assert all(
            choice.strategy in ("indexed", "naive")
            for choice in plan.atoms.values()
        )

    def test_probes_do_not_touch_picture_stats(self):
        """Planning must not inflate the system's evaluation counters."""
        pictures = PictureRetrievalSystem(skewed_segments())
        before = (pictures.stats.bindings, pictures.stats.segments_scored)
        Planner().plan_for(
            formula=parse("exists x . present(x)"),
            pictures=pictures,
            level=2,
            config=EngineConfig(),
        )
        assert (
            pictures.stats.bindings,
            pictures.stats.segments_scored,
        ) == before

    def test_describe_and_to_dict_render(self):
        pictures = PictureRetrievalSystem(skewed_segments())
        formula = parse(
            "exists x . (present(x) and (eventually type(x) = 'person'))"
        )
        plan = Planner().plan_for(formula, pictures, 2, EngineConfig())
        text = plan.describe()
        assert "strategy=" in text
        assert "evaluate right first" in text
        doc = plan.to_dict()
        assert doc["tree"]["children"]
        assert doc["estimated_cost"] == pytest.approx(plan.estimated_cost)


# ---------------------------------------------------------------------------
# plan caching
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_hit_on_identical_shape(self):
        planner = Planner()
        formula = parse("exists x . present(x)")
        config = EngineConfig()
        left = PictureRetrievalSystem(skewed_segments())
        right = PictureRetrievalSystem(skewed_segments())
        first = planner.plan_for(formula, left, 2, config)
        second = planner.plan_for(formula, right, 2, config)
        assert second is first  # cross-video reuse via the signature
        assert planner.stats.cache_hits == 1
        assert planner.stats.plans_built == 1

    def test_miss_on_different_shape_or_config(self):
        planner = Planner()
        formula = parse("exists x . present(x)")
        pictures = PictureRetrievalSystem(skewed_segments())
        plan = planner.plan_for(formula, pictures, 2, EngineConfig())
        other_level = planner.plan_for(formula, pictures, 1, EngineConfig())
        other_config = planner.plan_for(
            formula, pictures, 2, EngineConfig(prune_atoms=True)
        )
        assert other_level is not plan
        assert other_config is not plan
        assert planner.stats.plans_built == 3

    def test_generation_sync_invalidates(self):
        planner = Planner()
        formula = parse("exists x . present(x)")
        pictures = PictureRetrievalSystem(skewed_segments())
        first = planner.plan_for(
            formula, pictures, 2, EngineConfig(), generation=1
        )
        second = planner.plan_for(
            formula, pictures, 2, EngineConfig(), generation=2
        )
        assert second is not first
        assert planner.cache.stats().invalidations == 1

    def test_plan_cache_fifo_eviction(self):
        cache = PlanCache(max_plans=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("c") == 3
        assert cache.stats().entries == 2

    def test_invalidate_single_key(self):
        cache = PlanCache()
        cache.put("a", 1)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a") is None


# ---------------------------------------------------------------------------
# adaptive feedback
# ---------------------------------------------------------------------------
class TestAdaptiveFeedback:
    def _plan(self, planner):
        pictures = PictureRetrievalSystem(skewed_segments())
        return planner.plan_for(
            parse("exists x . present(x)"), pictures, 2, EngineConfig()
        )

    def test_converging_observations_keep_plan(self):
        planner = Planner()
        plan = self._plan(planner)
        for __ in range(5):
            planner.observe(plan, plan.estimated_seconds)
        assert planner.stats.replans == 0
        assert plan.observations == 5

    def test_divergence_retires_plan_and_recalibrates(self):
        planner = Planner()
        plan = self._plan(planner)
        slow = plan.estimated_seconds * 100
        planner.observe(plan, slow)
        assert planner.stats.replans == 0  # one bad run is not a trend
        planner.observe(plan, slow)
        assert planner.stats.replans == 1
        assert plan.retired
        # The cached entry is gone: the next request re-plans with the
        # recalibrated unit.
        rebuilt = self._plan(planner)
        assert rebuilt is not plan
        assert planner.model.unit_seconds > CostModel().unit_seconds
        assert rebuilt.estimated_seconds == pytest.approx(
            slow, rel=0.5
        )  # estimates now in the observed regime

    def test_retired_plan_not_replanned_twice(self):
        planner = Planner()
        plan = self._plan(planner)
        slow = plan.estimated_seconds * 100
        for __ in range(6):
            planner.observe(plan, slow)
        assert planner.stats.replans == 1


# ---------------------------------------------------------------------------
# engine integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def _database(self):
        database = VideoDatabase()
        database.add(skewed_video())
        return database

    def test_planned_matches_unplanned(self):
        database = self._database()
        video = database.get("vid")
        formula = parse(
            "exists x . (present(x) and (eventually type(x) = 'person'))"
        )
        planned = RetrievalEngine()
        unplanned = RetrievalEngine(EngineConfig(plan=False))
        assert planned.evaluate_video(
            formula, video, database=database
        ) == unplanned.evaluate_video(formula, video, database=database)
        assert planned.planner.stats.plans_built == 1

    def test_short_circuit_skips_subformula(self):
        """A row-free selective side short-circuits its join partner."""
        database = self._database()
        video = database.get("vid")
        # No 'car' objects anywhere: the right conjunct's table is empty,
        # so the (swapped-first) evaluation skips scoring present(x).
        formula = parse(
            "exists x . (present(x) and (eventually type(x) = 'car'))"
        )
        planned = RetrievalEngine()
        unplanned = RetrievalEngine(EngineConfig(plan=False))
        a = planned.evaluate_video(formula, video, database=database)
        b = unplanned.evaluate_video(formula, video, database=database)
        assert a == b
        assert not a  # empty similarity list, identical both ways
        assert planned.planner.stats.skipped_subformulas == 1

    def test_plan_false_builds_no_planner_work(self):
        database = self._database()
        video = database.get("vid")
        engine = RetrievalEngine(EngineConfig(plan=False))
        engine.evaluate_video(
            parse("exists x . present(x)"), video, database=database
        )
        assert engine.planner is None

    def test_pure_ref_queries_never_planned(self):
        from repro.workloads.synthetic import random_similarity_list

        database = VideoDatabase()
        video = flat_video("v", [SegmentMetadata() for __ in range(4)])
        database.add(video)
        database.register_atomic(
            "A", "v", random_similarity_list(4, satisfy_fraction=0.5)
        )
        engine = RetrievalEngine()
        engine.evaluate_video(
            parse("eventually $A"), video, database=database
        )
        assert engine.planner.stats.plans_built == 0

    def test_naive_oracle_config_never_planned(self):
        database = self._database()
        video = database.get("vid")
        engine = RetrievalEngine(EngineConfig(naive_atoms=True))
        engine.evaluate_video(
            parse("exists x . present(x)"), video, database=database
        )
        assert (
            engine.planner is None
            or engine.planner.stats.plans_built == 0
        )

    def test_observed_seconds_fed_back(self):
        database = self._database()
        video = database.get("vid")
        engine = RetrievalEngine()
        formula = parse("exists x . present(x)")
        engine.evaluate_video(formula, video, database=database)
        plan = engine.planner.plan_for(
            formula,
            video.root.pictures_at_level(2),
            2,
            engine.config,
            generation=database.generation,
        )
        assert plan.observations >= 1
        assert plan.observed_seconds > 0

    def test_malformed_atom_raises_even_when_skippable(self):
        """Attr-var misuse raises whether or not the operand is skipped."""
        from repro.errors import HTLTypeError

        database = self._database()
        video = database.get("vid")
        # f(x) > h uses the attribute variable h twice in one comparison
        # chain misuse scenario; simpler: unbound attr var comparison is
        # checked by the picture system's validator either way.
        formula = parse(
            "exists x . ((eventually type(x) = 'car') and "
            "[h := f(x)] f(x) > h and f(x) < h)"
        )
        planned = RetrievalEngine()
        unplanned = RetrievalEngine(EngineConfig(plan=False))
        outcomes = []
        for engine in (planned, unplanned):
            try:
                engine.evaluate_video(formula, video, database=database)
                outcomes.append("ok")
            except HTLTypeError:
                outcomes.append("raised")
            except Exception as error:  # pragma: no cover - diagnostic
                outcomes.append(type(error).__name__)
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------
class TestPlanObservability:
    def test_counters_flow_into_trace_spans(self):
        from repro.core import trace

        database = VideoDatabase()
        database.add(skewed_video())
        engine = RetrievalEngine()
        formula = parse("exists x . present(x)")
        with trace.recording() as recorder:
            from repro.core.topk import top_k_across_videos

            top_k_across_videos(engine, formula, database, k=3)
        root = recorder.roots[-1]
        assert root.attrs["plans-built"] == 1
        assert root.attrs["plan-reuses"] == 0
        # bump() credits the innermost span, so roll up the subtree.
        counters = root.total_counters()
        assert counters.get(planning.PLAN_BUILT, 0) == 1
        assert counters.get(planning.PLAN_CACHE_MISS, 0) == 1

    def test_cross_video_plan_reuse(self):
        database = VideoDatabase()
        database.add(skewed_video("a"))
        database.add(skewed_video("b"))
        database.add(skewed_video("c"))
        # Wall-clock on a 20-segment corpus is dominated by overhead, so
        # pin the feedback loop open: this test is about cache sharing.
        engine = RetrievalEngine(
            planner=Planner(model=CostModel(replan_ratio=1e9))
        )
        from repro.core.topk import top_k_across_videos

        top_k_across_videos(
            engine,
            parse("exists x . present(x)"),
            database,
            k=3,
            prune=False,
        )
        stats = engine.planner.stats
        assert stats.plans_built == 1  # identical index shapes share it
        assert stats.cache_hits == 2
