"""Tests for the §5 future-work extension operators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.extensions import (
    bounded_always,
    bounded_eventually,
    fuzzy_and_lists,
    or_lists,
)
from repro.core.ops import eventually_list
from repro.core.simlist import SimilarityList
from repro.errors import SimilarityListInvariantError

from tests.core.test_simlist import similarity_lists


class TestOrLists:
    def test_best_disjunct_wins(self):
        left = SimilarityList.from_entries([((1, 5), 2.0)], 4.0)
        right = SimilarityList.from_entries([((3, 8), 3.0)], 6.0)
        result = or_lists(left, right)
        assert result.maximum == pytest.approx(6.0)
        assert result.actual_at(2) == pytest.approx(2.0)
        assert result.actual_at(4) == pytest.approx(3.0)
        assert result.actual_at(7) == pytest.approx(3.0)
        assert result.actual_at(9) == 0.0

    @given(similarity_lists(), similarity_lists())
    def test_matches_naive(self, left, right):
        result = or_lists(left, right)
        horizon = max(left.last_id(), right.last_id()) + 2
        for position in range(1, horizon + 1):
            assert result.actual_at(position) == pytest.approx(
                max(left.actual_at(position), right.actual_at(position))
            )

    @given(similarity_lists(), similarity_lists())
    def test_commutative(self, left, right):
        assert or_lists(left, right) == or_lists(right, left)

    @given(similarity_lists())
    def test_idempotent(self, sim):
        assert or_lists(sim, sim) == sim


class TestFuzzyAnd:
    def test_min_of_fractions(self):
        left = SimilarityList.from_entries([((1, 5), 2.0)], 4.0)  # frac 0.5
        right = SimilarityList.from_entries([((3, 8), 3.0)], 6.0)  # frac 0.5
        result = fuzzy_and_lists(left, right)
        assert result.maximum == pytest.approx(1.0)
        assert result.actual_at(4) == pytest.approx(0.5)

    def test_zero_conjunct_zeroes(self):
        """Unlike the paper's sum, the fuzzy conjunction drops one-sided
        matches entirely."""
        left = SimilarityList.from_entries([((1, 5), 2.0)], 4.0)
        right = SimilarityList.empty(6.0)
        assert not fuzzy_and_lists(left, right)

    def test_exact_needs_both_exact(self):
        left = SimilarityList.from_entries([((1, 1), 4.0)], 4.0)
        right = SimilarityList.from_entries([((1, 1), 3.0)], 6.0)
        result = fuzzy_and_lists(left, right)
        assert result.actual_at(1) == pytest.approx(0.5)

    @given(similarity_lists(), similarity_lists())
    def test_matches_naive(self, left, right):
        result = fuzzy_and_lists(left, right)
        horizon = max(left.last_id(), right.last_id()) + 2
        for position in range(1, horizon + 1):
            expected = min(
                left.fraction_at(position), right.fraction_at(position)
            )
            assert result.actual_at(position) == pytest.approx(expected)


class TestBoundedEventually:
    def test_window_reaches_forward(self):
        sim = SimilarityList.from_entries([((10, 12), 3.0)], 4.0)
        result = bounded_eventually(sim, 4)
        assert result.actual_at(6) == pytest.approx(3.0)
        assert result.actual_at(5) == 0.0
        assert result.actual_at(12) == pytest.approx(3.0)
        assert result.actual_at(13) == 0.0

    def test_window_zero_is_identity(self):
        sim = SimilarityList.from_entries([((3, 5), 2.0), ((9, 9), 1.0)], 4.0)
        assert bounded_eventually(sim, 0) == sim

    def test_negative_window_rejected(self):
        sim = SimilarityList.from_entries([((1, 1), 1.0)], 4.0)
        with pytest.raises(SimilarityListInvariantError):
            bounded_eventually(sim, -1)

    @given(similarity_lists(max_id=40), st.integers(0, 15))
    @settings(max_examples=80)
    def test_matches_naive(self, sim, window):
        result = bounded_eventually(sim, window)
        horizon = sim.last_id() + 2
        for position in range(1, horizon + 1):
            expected = max(
                (
                    sim.actual_at(later)
                    for later in range(position, position + window + 1)
                ),
                default=0.0,
            )
            assert result.actual_at(position) == pytest.approx(expected)

    @given(similarity_lists(max_id=40))
    def test_large_window_equals_eventually(self, sim):
        huge = sim.last_id() + 5
        assert bounded_eventually(sim, huge) == eventually_list(sim)

    @given(similarity_lists(max_id=40), st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=50)
    def test_monotone_in_window(self, sim, w1, w2):
        small, large = sorted((w1, w2))
        narrow = bounded_eventually(sim, small)
        wide = bounded_eventually(sim, large)
        for position in range(1, sim.last_id() + 2):
            assert (
                narrow.actual_at(position) <= wide.actual_at(position) + 1e-9
            )


class TestBoundedAlways:
    def test_window_min(self):
        sim = SimilarityList.from_entries(
            [((1, 4), 3.0), ((5, 8), 2.0)], 4.0
        )
        result = bounded_always(sim, 2, axis_end=8)
        assert result.actual_at(1) == pytest.approx(3.0)  # [1..3] all 3.0
        assert result.actual_at(3) == pytest.approx(2.0)  # [3..5] min 2.0
        assert result.actual_at(7) == pytest.approx(2.0)  # clipped at 8

    def test_gap_zeroes_window(self):
        sim = SimilarityList.from_entries([((1, 2), 3.0), ((4, 6), 2.0)], 4.0)
        result = bounded_always(sim, 2, axis_end=6)
        assert result.actual_at(1) == 0.0  # window [1,3] hits the gap at 3
        assert result.actual_at(4) == pytest.approx(2.0)

    @given(similarity_lists(max_id=25), st.integers(0, 8), st.integers(1, 30))
    @settings(max_examples=80)
    def test_matches_naive(self, sim, window, axis_end):
        result = bounded_always(sim, window, axis_end)
        for position in range(1, axis_end + 1):
            stop = min(position + window, axis_end)
            expected = min(
                sim.actual_at(later) for later in range(position, stop + 1)
            )
            assert result.actual_at(position) == pytest.approx(expected), (
                f"at {position} (window {window}, axis {axis_end})"
            )
        assert result.last_id() <= axis_end
