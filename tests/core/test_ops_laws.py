"""Algebraic laws of the list operators (property-based).

These pin semantic identities the paper's definitions imply; a regression
in any merge algorithm shows up as a broken law long before it shows up
in an end-to-end query.
"""

import pytest
from hypothesis import given, settings

from repro.core.extensions import or_lists
from repro.core.ops import (
    and_lists,
    eventually_list,
    max_merge_lists,
    next_list,
    until_lists,
)
from repro.core.simlist import SIM_EPS, SimilarityList

from tests.core.test_simlist import similarity_lists


class TestConjunctionLaws:
    @given(similarity_lists())
    def test_empty_is_identity_on_values(self, sim):
        """∧ with an empty list keeps every actual value (only the
        maximum grows)."""
        combined = and_lists(sim, SimilarityList.empty(3.0))
        for entry in sim:
            assert combined.actual_at(entry.begin) == pytest.approx(
                entry.actual
            )

    @given(similarity_lists())
    def test_self_conjunction_doubles(self, sim):
        doubled = and_lists(sim, sim)
        assert doubled == sim.scaled(2.0)


class TestTemporalLaws:
    @given(similarity_lists())
    def test_eventually_absorbs_eventually(self, sim):
        assert eventually_list(eventually_list(sim)) == eventually_list(sim)

    @given(similarity_lists())
    def test_eventually_dominates(self, sim):
        """eventually f >= f pointwise."""
        lifted = eventually_list(sim)
        for entry in sim:
            assert lifted.actual_at(entry.begin) >= entry.actual - SIM_EPS

    @given(similarity_lists())
    def test_next_eventually_vs_eventually(self, sim):
        """eventually f = max(f, next eventually f) pointwise."""
        ev = eventually_list(sim)
        recomposed = max_merge_lists([sim, next_list(ev)])
        assert recomposed == ev

    @given(similarity_lists(), similarity_lists())
    @settings(max_examples=60)
    def test_until_bounded_by_eventually(self, left, right):
        """g until h <= eventually h pointwise (fewer witnesses)."""
        until = until_lists(left, right, 0.5)
        ev = eventually_list(right)
        horizon = max(until.last_id(), ev.last_id()) + 1
        for position in range(1, horizon + 1):
            assert (
                until.actual_at(position) <= ev.actual_at(position) + SIM_EPS
            )

    @given(similarity_lists(), similarity_lists())
    @settings(max_examples=60)
    def test_until_at_least_right(self, left, right):
        """g until h >= h pointwise (the witness may be the segment
        itself, regardless of g)."""
        until = until_lists(left, right, 0.5)
        for entry in right:
            assert until.actual_at(entry.begin) >= entry.actual - SIM_EPS

    @given(similarity_lists())
    def test_true_until_right_is_eventually(self, sim):
        horizon = max(sim.last_id(), 1)
        true_list = SimilarityList.from_entries([((1, horizon), 1.0)], 1.0)
        assert until_lists(true_list, sim, 1.0) == eventually_list(sim)

    @given(similarity_lists(), similarity_lists())
    @settings(max_examples=60)
    def test_until_monotone_in_threshold(self, left, right):
        """A stricter threshold never increases the until value."""
        strict = until_lists(left, right, 0.9)
        lax = until_lists(left, right, 0.2)
        horizon = max(strict.last_id(), lax.last_id()) + 1
        for position in range(1, horizon + 1):
            assert (
                strict.actual_at(position)
                <= lax.actual_at(position) + SIM_EPS
            )


class TestMaxMergeLaws:
    @given(similarity_lists(), similarity_lists())
    def test_or_equals_two_way_max_merge(self, left, right):
        """With equal maxima, ∨ and the m-way max merge coincide."""
        right_matched = right.with_maximum(left.maximum)
        assert or_lists(left, right_matched) == max_merge_lists(
            [left, right_matched]
        )

    @given(similarity_lists(), similarity_lists(), similarity_lists())
    @settings(max_examples=40)
    def test_max_merge_associative(self, a, b, c):
        grouped = max_merge_lists([max_merge_lists([a, b]), c])
        flat = max_merge_lists([a, b, c])
        assert grouped == flat


class TestNextLaws:
    @given(similarity_lists())
    def test_double_next_is_double_shift(self, sim):
        twice = next_list(next_list(sim))
        for position in range(1, sim.last_id() + 1):
            assert twice.actual_at(position) == pytest.approx(
                sim.actual_at(position + 2)
            )

    @given(similarity_lists(), similarity_lists())
    def test_next_distributes_over_and(self, left, right):
        assert next_list(and_lists(left, right)) == and_lists(
            next_list(left), next_list(right)
        )
