"""Engine unit tests: configuration, validation, dispatch edge cases."""

import pytest

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.errors import (
    HTLTypeError,
    UnsupportedFormulaError,
)
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode, flat_video
from repro.model.metadata import SegmentMetadata, make_object


def simple_video():
    return flat_video(
        "v",
        [
            SegmentMetadata(
                objects=[make_object("a", "train")],
                attributes={"kind": "x"},
            ),
            SegmentMetadata(attributes={"kind": "y"}),
            SegmentMetadata(objects=[make_object("a", "train")]),
        ],
    )


class TestConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.until_threshold == 0.5
        assert config.join_mode == "inner"
        assert not config.allow_extensions

    def test_threshold_validation(self):
        with pytest.raises(HTLTypeError):
            EngineConfig(until_threshold=0.0)
        with pytest.raises(HTLTypeError):
            EngineConfig(until_threshold=1.5)

    def test_join_mode_validation(self):
        with pytest.raises(HTLTypeError):
            EngineConfig(join_mode="sideways")


class TestValidation:
    def test_open_formula_rejected(self):
        engine = RetrievalEngine()
        with pytest.raises(HTLTypeError):
            engine.evaluate_video(parse("present(x)"), simple_video())

    def test_general_formula_rejected_by_default(self):
        engine = RetrievalEngine()
        formula = parse("(eventually kind() = 'x') or kind() = 'y'")
        with pytest.raises(UnsupportedFormulaError):
            engine.evaluate_video(formula, simple_video())

    def test_negated_temporal_rejected_in_every_mode(self):
        formula = parse("not next kind() = 'x'")
        for config in (EngineConfig(), EngineConfig(allow_extensions=True)):
            with pytest.raises(UnsupportedFormulaError):
                RetrievalEngine(config).evaluate_video(formula, simple_video())


class TestAtomicResolution:
    def test_atomic_lists_parameter_overrides(self):
        video = simple_video()
        database = VideoDatabase()
        database.add(video)
        database.register_atomic(
            "P", "v", SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        )
        override = SimilarityList.from_entries([((3, 3), 2.0)], 2.0)
        engine = RetrievalEngine()
        result = engine.evaluate_video(
            parse("atomic('P')"),
            video,
            database=database,
            atomic_lists={"P": override},
        )
        assert result == override

    def test_missing_atomic_raises(self):
        engine = RetrievalEngine()
        with pytest.raises(UnsupportedFormulaError):
            engine.evaluate_video(parse("atomic('nope')"), simple_video())

    def test_atomic_conjoined_with_metadata_atom(self):
        video = simple_video()
        lists = {"P": SimilarityList.from_entries([((1, 2), 1.0)], 1.0)}
        engine = RetrievalEngine()
        result = engine.evaluate_video(
            parse("atomic('P') and kind() = 'x'"),
            video,
            atomic_lists=lists,
        )
        assert result.actual_at(1) == pytest.approx(2.0)
        assert result.actual_at(2) == pytest.approx(1.0)

    def test_atomic_under_or_inside_atom_rejected(self):
        video = simple_video()
        lists = {"P": SimilarityList.from_entries([((1, 2), 1.0)], 1.0)}
        engine = RetrievalEngine()
        with pytest.raises(UnsupportedFormulaError):
            engine.evaluate_video(
                parse("atomic('P') or kind() = 'x'"),
                video,
                atomic_lists=lists,
            )


class TestLevelDispatch:
    def three_level_video(self):
        root = VideoNode(metadata=SegmentMetadata(attributes={"kind": "root"}))
        for scene_kind in ("x", "y"):
            scene = root.add_child(
                VideoNode(
                    metadata=SegmentMetadata(attributes={"kind": scene_kind})
                )
            )
            for position in range(2):
                scene.add_child(
                    VideoNode(
                        metadata=SegmentMetadata(
                            attributes={"n": position + 1}
                        )
                    )
                )
        return Video(
            name="v3",
            root=root,
            level_names={1: "video", 2: "scene", 3: "shot"},
        )

    def test_level_above_current_rejected(self):
        video = self.three_level_video()
        engine = RetrievalEngine()
        with pytest.raises(UnsupportedFormulaError):
            engine.evaluate_video(
                parse("at_level(1, true)"), video, level=2
            )

    def test_level_beyond_depth_rejected(self):
        video = self.three_level_video()
        engine = RetrievalEngine()
        with pytest.raises(UnsupportedFormulaError):
            engine.evaluate_video(parse("at_level(9, true)"), video, level=1)

    def test_named_level(self):
        video = self.three_level_video()
        engine = RetrievalEngine()
        result = engine.evaluate_video(
            parse("at_shot_level(n() = 1)"), video, level=2
        )
        assert result.to_segment_values() == {1: 1.0, 2: 1.0}

    def test_at_level_same_level_is_identity_position(self):
        video = self.three_level_video()
        engine = RetrievalEngine()
        result = engine.evaluate_video(
            parse("at_level(2, kind() = 'y')"), video, level=2
        )
        # at-level-2 of a level-2 node looks at the node itself.
        assert result.to_segment_values() == {2: 1.0}

    def test_evaluate_at_root(self):
        video = self.three_level_video()
        engine = RetrievalEngine()
        value = engine.evaluate_at_root(
            parse("kind() = 'root' and at_scene_level(kind() = 'x')"), video
        )
        assert value.actual == pytest.approx(2.0)
        assert value.maximum == pytest.approx(2.0)


class TestCombineLists:
    def test_requires_registered_names(self):
        engine = RetrievalEngine()
        with pytest.raises(UnsupportedFormulaError):
            engine.combine_lists(parse("atomic('Q')"), {})

    def test_next_of_atomic(self):
        engine = RetrievalEngine()
        lists = {"P": SimilarityList.from_entries([((2, 4), 3.0)], 5.0)}
        result = engine.combine_lists(parse("next atomic('P')"), lists)
        assert result.to_segment_values() == {1: 3.0, 2: 3.0, 3: 3.0}

    def test_threshold_config_respected(self):
        low = RetrievalEngine(EngineConfig(until_threshold=0.1))
        high = RetrievalEngine(EngineConfig(until_threshold=0.9))
        lists = {
            "G": SimilarityList.from_entries([((1, 4), 2.5)], 5.0),
            "H": SimilarityList.from_entries([((5, 5), 4.0)], 5.0),
        }
        formula = parse("atomic('G') until atomic('H')")
        assert low.combine_lists(formula, lists).actual_at(1) == pytest.approx(4.0)
        assert high.combine_lists(formula, lists).actual_at(1) == 0.0
