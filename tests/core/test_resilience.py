"""Unit tests for the resilience layer: budgets, breakers, fallbacks."""

import threading

import pytest

from repro.core import instrument, resilience
from repro.core.engine import RetrievalEngine
from repro.core.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    QueryBudget,
    ResilienceContext,
    ResiliencePolicy,
    evaluate_with_fallback,
)
from repro.core.simlist import SimilarityList
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    UnsupportedFormulaError,
)
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object


class FakeClock:
    """A hand-cranked monotone clock for deterministic deadline tests."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestQueryBudget:
    def test_deadline_raises_with_site_and_elapsed(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=50, clock=clock, check_interval=1)
        budget.charge(1, site="warm")
        clock.advance(0.2)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge(1, site="list-merge")
        error = excinfo.value
        assert error.site == "list-merge"
        assert error.elapsed_ms == pytest.approx(200.0)
        assert "50" in str(error)

    def test_step_budget_raises_independent_of_clock(self):
        budget = QueryBudget(max_steps=10, clock=FakeClock())
        budget.charge(10)
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge(1, site="atom-scoring")
        assert excinfo.value.steps == 11
        assert excinfo.value.site == "atom-scoring"

    def test_clock_checked_only_every_interval(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=50, clock=clock, check_interval=100)
        clock.advance(10.0)  # way past the deadline
        for __ in range(99):
            budget.charge(1)  # below the check interval: no clock read
        with pytest.raises(BudgetExceededError):
            budget.charge(1)

    def test_checkpoint_forces_immediate_check(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=50, clock=clock, check_interval=10**6)
        clock.advance(10.0)
        with pytest.raises(BudgetExceededError):
            budget.checkpoint(site="engine-table")

    def test_remaining_and_elapsed(self):
        clock = FakeClock()
        budget = QueryBudget(deadline_ms=100, clock=clock)
        clock.advance(0.03)
        assert budget.elapsed_ms() == pytest.approx(30.0)
        assert budget.remaining_ms() == pytest.approx(70.0)
        clock.advance(1.0)
        assert budget.remaining_ms() == 0.0
        assert budget.expired()

    def test_no_limits_never_expires(self):
        budget = QueryBudget(clock=FakeClock())
        budget.charge(10**6)
        budget.checkpoint()
        assert not budget.expired()
        assert budget.remaining_ms() is None

    def test_invalid_limits_rejected(self):
        with pytest.raises(BudgetExceededError):
            QueryBudget(deadline_ms=0)
        with pytest.raises(BudgetExceededError):
            QueryBudget(max_steps=-1)

    def test_overrun_counted(self):
        instrument.reset()
        budget = QueryBudget(max_steps=1, clock=FakeClock())
        with pytest.raises(BudgetExceededError):
            budget.charge(5)
        assert instrument.counters()[instrument.BUDGET_EXCEEDED] == 1


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker("x", failure_threshold=3, cooldown=2)
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker("x", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker("x", failure_threshold=1, cooldown=3)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.allow()  # third refusal-count probe: half-open trial
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        breaker = CircuitBreaker("x", failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker("x", failure_threshold=1, cooldown=2)
        breaker.record_failure()
        assert not breaker.allow()  # first refusal of the cooldown
        assert breaker.allow()  # second probe runs half-open
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown restarts from zero

    def test_half_open_admits_one_probe_only(self):
        breaker = CircuitBreaker("x", failure_threshold=1, cooldown=1)
        breaker.record_failure()
        assert breaker.allow()
        assert not breaker.allow()  # concurrent probe refused

    def test_guard_raises_typed_error(self):
        breaker = CircuitBreaker("atoms", failure_threshold=1, cooldown=99)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.guard()
        assert excinfo.value.breaker == "atoms"

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", cooldown=0)


class TestPolicyAndContext:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(mode="yolo")

    def test_lenient_property(self):
        assert not ResiliencePolicy().lenient
        assert ResiliencePolicy(mode=resilience.LENIENT).lenient

    def test_breakers_are_minted_once_with_policy_knobs(self):
        context = ResilienceContext(
            ResiliencePolicy(breaker_threshold=7, breaker_cooldown=11)
        )
        breaker = context.breaker("engine")
        assert breaker is context.breaker("engine")
        assert breaker.failure_threshold == 7
        assert breaker.cooldown == 11
        assert context.breaker("other") is not breaker

    def test_scope_installs_and_restores(self):
        assert resilience.current() is None
        with resilience.scope(budget=QueryBudget(max_steps=5)) as context:
            assert resilience.current() is context
            assert resilience.current_budget() is context.budget
        assert resilience.current() is None
        assert resilience.current_budget() is None

    def test_context_is_thread_local(self):
        seen = {}

        def worker():
            seen["context"] = resilience.current()

        with resilience.scope():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["context"] is None

    def test_activate_nests(self):
        outer = ResilienceContext()
        inner = ResilienceContext()
        with resilience.activate(outer):
            with resilience.activate(inner):
                assert resilience.current() is inner
            assert resilience.current() is outer


def _video_with_trains(name="v"):
    return flat_video(
        name,
        [
            SegmentMetadata(objects=[make_object("a", "train")]),
            SegmentMetadata(),
            SegmentMetadata(objects=[make_object("a", "train")]),
        ],
    )


class _ExplodingEngine(RetrievalEngine):
    """Primary path always fails; the naive fallback is a real engine."""

    def evaluate_video(self, *args, **kwargs):
        raise RuntimeError("primary engine down")


class TestEvaluateWithFallback:
    def test_primary_success_needs_no_context(self):
        database = VideoDatabase()
        video = database.add(_video_with_trains())
        formula = parse("exists x . present(x)")
        engine = RetrievalEngine()
        direct = engine.evaluate_video(formula, video, database=database)
        assert (
            evaluate_with_fallback(engine, formula, video, 2, database)
            == direct
        )

    def test_engine_failure_falls_back_to_naive(self):
        instrument.reset()
        database = VideoDatabase()
        video = database.add(_video_with_trains())
        formula = parse("exists x . present(x)")
        oracle = RetrievalEngine().evaluate_video(
            formula, video, database=database
        )
        context = ResilienceContext()
        result = evaluate_with_fallback(
            _ExplodingEngine(), formula, video, 2, database, context
        )
        assert result == oracle
        assert instrument.counters()[instrument.ENGINE_FALLBACK] == 1

    def test_no_context_propagates_primary_error(self):
        database = VideoDatabase()
        video = database.add(_video_with_trains())
        with pytest.raises(RuntimeError, match="primary engine down"):
            evaluate_with_fallback(
                _ExplodingEngine(),
                parse("exists x . present(x)"),
                video,
                2,
                database,
                None,
            )

    def test_fallback_disabled_by_policy(self):
        database = VideoDatabase()
        video = database.add(_video_with_trains())
        context = ResilienceContext(ResiliencePolicy(engine_fallback=False))
        with pytest.raises(RuntimeError, match="primary engine down"):
            evaluate_with_fallback(
                _ExplodingEngine(),
                parse("exists x . present(x)"),
                video,
                2,
                database,
                context,
            )

    def test_budget_error_never_degrades(self):
        class DeadlineEngine(RetrievalEngine):
            def evaluate_video(self, *args, **kwargs):
                raise BudgetExceededError("deadline blown")

        database = VideoDatabase()
        video = database.add(_video_with_trains())
        context = ResilienceContext()
        with pytest.raises(BudgetExceededError):
            evaluate_with_fallback(
                DeadlineEngine(),
                parse("exists x . present(x)"),
                video,
                2,
                database,
                context,
            )

    def test_sql_baseline_recovers_type1_queries(self, monkeypatch):
        instrument.reset()
        database = VideoDatabase()
        video = database.add(_video_with_trains())
        sim = SimilarityList.from_entries([((1, 2), 3.0)], 4.0)
        database.register_atomic("P1", video.name, sim)
        formula = parse("eventually atomic('P1')")
        # Break *every* engine evaluation — primary and naive alike — so
        # only the SQL hop can answer.
        monkeypatch.setattr(
            RetrievalEngine,
            "evaluate_video",
            lambda self, *a, **k: (_ for _ in ()).throw(
                RuntimeError("engines down")
            ),
        )
        context = ResilienceContext()
        result = evaluate_with_fallback(
            RetrievalEngine(), formula, video, 2, database, context
        )
        assert result.maximum == pytest.approx(4.0)
        assert result.support_size() > 0
        assert instrument.counters()[instrument.SQL_FALLBACK] == 1

    def test_type2_queries_cannot_use_sql_and_raise_primary(self, monkeypatch):
        database = VideoDatabase()
        video = database.add(_video_with_trains())
        monkeypatch.setattr(
            RetrievalEngine,
            "evaluate_video",
            lambda self, *a, **k: (_ for _ in ()).throw(
                RuntimeError("engines down")
            ),
        )
        context = ResilienceContext()
        with pytest.raises(RuntimeError, match="engines down"):
            evaluate_with_fallback(
                RetrievalEngine(),
                parse("exists x . present(x)"),
                video,
                2,
                database,
                context,
            )

    def test_breaker_opens_after_repeated_engine_failures(self, monkeypatch):
        database = VideoDatabase()
        video = database.add(_video_with_trains())
        monkeypatch.setattr(
            RetrievalEngine,
            "evaluate_video",
            lambda self, *a, **k: (_ for _ in ()).throw(
                RuntimeError("engines down")
            ),
        )
        context = ResilienceContext(ResiliencePolicy(breaker_threshold=2))
        formula = parse("exists x . present(x)")
        for __ in range(2):
            with pytest.raises(RuntimeError):
                evaluate_with_fallback(
                    RetrievalEngine(), formula, video, 2, database, context
                )
        assert context.breaker("engine").state == OPEN


class TestSqlBaselineGuards:
    def test_outer_join_mode_rejected(self):
        from repro.core.engine import EngineConfig
        from repro.core.resilience import _sql_baseline
        from repro.core.tables import OUTER

        database = VideoDatabase()
        video = database.add(_video_with_trains())
        engine = RetrievalEngine(EngineConfig(join_mode=OUTER))
        with pytest.raises(UnsupportedFormulaError, match="inner-join"):
            _sql_baseline(
                engine, parse("atomic('P1')"), video, 2, database
            )

    def test_unregistered_atom_rejected(self):
        from repro.core.resilience import _sql_baseline

        database = VideoDatabase()
        video = database.add(_video_with_trains())
        with pytest.raises(UnsupportedFormulaError, match="no similarity"):
            _sql_baseline(
                RetrievalEngine(),
                parse("atomic('ghost')"),
                video,
                2,
                database,
            )
