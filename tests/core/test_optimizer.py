"""Tests for the formula optimizer: golden rewrites + semantic preservation."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.optimizer import estimated_cost, optimize
from repro.htl import ast, parse, pretty

from tests.integration.strategies import (
    conjunctive_formulas,
    flat_videos,
    type1_formulas,
    type2_formulas,
)


class TestGoldenRewrites:
    def test_eventually_idempotent(self):
        formula = parse("eventually eventually atomic('P')")
        assert optimize(formula) == parse("eventually atomic('P')")

    def test_always_idempotent(self):
        formula = parse("always always atomic('P')")
        assert optimize(formula) == parse("always atomic('P')")

    def test_eventually_next_commutes(self):
        formula = parse("eventually next atomic('P')")
        assert optimize(formula) == parse("next eventually atomic('P')")

    def test_next_distributes_over_and(self):
        formula = parse("next atomic('P') and next atomic('Q')")
        assert optimize(formula) == parse("next (atomic('P') and atomic('Q'))")

    def test_exists_prefixes_merge(self):
        formula = parse("exists x . exists y . eventually near(x, y)")
        optimized = optimize(formula)
        assert isinstance(optimized, ast.Exists)
        assert optimized.vars == ("x", "y")
        assert not isinstance(optimized.sub, ast.Exists)

    def test_colliding_exists_not_merged(self):
        formula = ast.Exists(
            ("x",),
            ast.Exists(("x",), ast.Eventually(ast.Present(ast.ObjectVar("x")))),
        )
        optimized = optimize(formula)
        assert isinstance(optimized.sub, ast.Exists)

    def test_true_conjunct_not_eliminated(self):
        """∧ true changes the similarity value; boolean simplification is
        unsound under graded semantics."""
        formula = parse("true and atomic('P')")
        assert optimize(formula) == formula

    def test_rules_compose_to_fixed_point(self):
        formula = parse(
            "eventually eventually next (eventually eventually atomic('P'))"
        )
        optimized = optimize(formula)
        assert optimized == parse("next eventually atomic('P')")

    def test_conjunction_reordered_cheapest_first(self):
        formula = parse(
            "(exists x, y . eventually near(x, y)) "
            "and kind() = 'a' and (exists z . present(z))"
        )
        optimized = optimize(formula)
        rendered = pretty(optimized)
        # The variable-free atom leads, the two-variable temporal conjunct
        # trails.
        assert rendered.index("kind()") < rendered.index("present(z)")
        assert rendered.index("present(z)") < rendered.index("near(x, y)")

    def test_atoms_stay_intact(self):
        formula = parse(
            "eventually (present(x) and present(y) and near(x, y))"
        )
        closed = ast.Exists(("x", "y"), formula)
        optimized = optimize(closed)
        # The inner non-temporal conjunction is one atom; nothing to split.
        assert optimized == closed


class TestCostHeuristic:
    def test_orders_by_variables_then_size(self):
        cheap = parse("kind() = 'a'")
        medium = parse("exists x . present(x)")  # closed: 0 free vars
        pricey = parse("eventually near(x, y)")  # 2 free vars
        assert estimated_cost(cheap) < estimated_cost(pricey)
        assert estimated_cost(medium) < estimated_cost(pricey)


class TestSemanticPreservation:
    @given(type1_formulas(), flat_videos())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_type1_results_unchanged(self, formula, video):
        engine = RetrievalEngine()
        assert engine.evaluate_video(
            optimize(formula), video
        ) == engine.evaluate_video(formula, video)

    @given(type2_formulas(), flat_videos())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_type2_results_unchanged_both_modes(self, formula, video):
        for mode in ("inner", "outer"):
            engine = RetrievalEngine(EngineConfig(join_mode=mode))
            assert engine.evaluate_video(
                optimize(formula), video
            ) == engine.evaluate_video(formula, video)

    @given(conjunctive_formulas(), flat_videos())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_conjunctive_results_unchanged(self, formula, video):
        engine = RetrievalEngine(EngineConfig(join_mode="outer"))
        assert engine.evaluate_video(
            optimize(formula), video
        ) == engine.evaluate_video(formula, video)
