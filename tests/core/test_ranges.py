"""Tests for attribute-variable ranges."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ranges import FULL, Range, flipped, from_comparison, interval
from repro.errors import HTLTypeError


class TestConstruction:
    def test_full(self):
        assert FULL.is_full()
        assert FULL.contains(5)
        assert FULL.contains("anything")

    def test_interval(self):
        r = interval(1, 10)
        assert r.is_interval
        assert r.contains(1) and r.contains(10)
        assert not r.contains(0) and not r.contains(11)
        assert not r.contains("5")

    def test_unbounded_sides(self):
        assert interval(None, 5).contains(-100)
        assert interval(5, None).contains(10 ** 9)

    def test_exact(self):
        r = Range(exact="gun")
        assert r.contains("gun")
        assert not r.contains("pistol")
        assert not r.contains(5)

    def test_complement(self):
        r = Range(excluded=frozenset({"a", "b"}))
        assert r.contains("c")
        assert r.contains(42)
        assert not r.contains("a")

    def test_empty_interval_rejected(self):
        with pytest.raises(HTLTypeError):
            interval(5, 4)

    def test_non_int_bound_rejected(self):
        with pytest.raises(HTLTypeError):
            interval("a", "b")  # type: ignore[arg-type]

    def test_bool_bound_rejected(self):
        with pytest.raises(HTLTypeError):
            interval(True, True)  # type: ignore[arg-type]


class TestIntersect:
    def test_interval_interval(self):
        assert interval(1, 10).intersect(interval(5, 20)) == interval(5, 10)
        assert interval(1, 4).intersect(interval(6, 9)) is None

    def test_interval_unbounded(self):
        assert interval(None, 10).intersect(interval(5, None)) == interval(5, 10)

    def test_exact_in_interval(self):
        assert interval(1, 10).intersect(Range(exact=5)) == Range(exact=5)
        assert interval(1, 10).intersect(Range(exact=50)) is None

    def test_exact_exact(self):
        assert Range(exact="a").intersect(Range(exact="a")) == Range(exact="a")
        assert Range(exact="a").intersect(Range(exact="b")) is None

    def test_complement_complement(self):
        left = Range(excluded=frozenset({"a"}))
        right = Range(excluded=frozenset({"b"}))
        assert left.intersect(right) == Range(excluded=frozenset({"a", "b"}))

    def test_full_is_identity(self):
        assert FULL.intersect(interval(1, 5)) == interval(1, 5)
        assert FULL.intersect(Range(exact="x")) == Range(exact="x")

    def test_mixed_typing_rejected(self):
        complement = Range(excluded=frozenset({3}))
        with pytest.raises(HTLTypeError):
            interval(1, 10).intersect(complement)

    def test_complement_excluding_outside_ints_ok(self):
        complement = Range(excluded=frozenset({99}))
        assert interval(1, 10).intersect(complement) == interval(1, 10)


class TestDifference:
    def test_interval_split(self):
        pieces = interval(1, 10).difference(interval(4, 6))
        assert pieces == [interval(1, 3), interval(7, 10)]

    def test_interval_disjoint(self):
        assert interval(1, 3).difference(interval(5, 9)) == [interval(1, 3)]

    def test_interval_swallowed(self):
        assert interval(4, 6).difference(interval(1, 10)) == []

    def test_interval_minus_exact_point(self):
        pieces = interval(1, 5).difference(Range(exact=3))
        assert pieces == [interval(1, 2), interval(4, 5)]

    def test_exact_minus_containing(self):
        assert Range(exact="a").difference(FULL) == []
        assert Range(exact="a").difference(Range(exact="b")) == [Range(exact="a")]

    def test_complement_minus_exact(self):
        base = Range(excluded=frozenset({"a"}))
        assert base.difference(Range(exact="b")) == [
            Range(excluded=frozenset({"a", "b"}))
        ]

    def test_complement_minus_complement(self):
        left = Range(excluded=frozenset({"a"}))
        right = Range(excluded=frozenset({"a", "b", "c"}))
        pieces = left.difference(right)
        assert sorted(p.exact for p in pieces) == ["b", "c"]

    def test_complement_minus_interval_gives_flanks(self):
        pieces = FULL.difference(interval(1, 5))
        assert pieces == [interval(None, 0), interval(6, None)]

    def test_punctured_complement_minus_interval(self):
        base = Range(excluded=frozenset({8}))
        pieces = base.difference(interval(1, 5))
        assert interval(None, 0) in pieces
        assert not any(piece.contains(8) for piece in pieces)
        assert any(piece.contains(6) for piece in pieces)
        assert any(piece.contains(9) for piece in pieces)


class TestSample:
    def test_samples_are_members(self):
        for r in [
            interval(3, 9),
            interval(None, -5),
            interval(7, None),
            Range(exact="gun"),
            Range(excluded=frozenset({"other", "other_1"})),
            FULL,
        ]:
            assert r.contains(r.sample())


class TestFromComparison:
    def test_all_integer_forms(self):
        assert from_comparison("=", 5) == interval(5, 5)
        assert from_comparison("<", 5) == interval(None, 4)
        assert from_comparison("<=", 5) == interval(None, 5)
        assert from_comparison(">", 5) == interval(6, None)
        assert from_comparison(">=", 5) == interval(5, None)

    def test_string_equality(self):
        assert from_comparison("=", "gun") == Range(exact="gun")

    def test_string_ordered_rejected(self):
        with pytest.raises(HTLTypeError):
            from_comparison("<", "gun")

    def test_unsupported_op_rejected(self):
        with pytest.raises(HTLTypeError):
            from_comparison("!=", 5)

    def test_flipped(self):
        assert flipped("<") == ">"
        assert flipped(">=") == "<="
        assert flipped("=") == "="


@st.composite
def int_ranges(draw):
    low = draw(st.one_of(st.none(), st.integers(-20, 20)))
    high = draw(st.one_of(st.none(), st.integers(-20, 20)))
    if low is not None and high is not None and low > high:
        low, high = high, low
    return interval(low, high)


class TestAlgebraProperties:
    @given(int_ranges(), int_ranges(), st.integers(-25, 25))
    def test_intersection_membership(self, left, right, value):
        shared = left.intersect(right)
        in_both = left.contains(value) and right.contains(value)
        if shared is None:
            assert not in_both
        else:
            assert shared.contains(value) == in_both

    @given(int_ranges(), int_ranges(), st.integers(-25, 25))
    def test_difference_membership(self, left, right, value):
        pieces = left.difference(right)
        in_difference = left.contains(value) and not right.contains(value)
        assert any(piece.contains(value) for piece in pieces) == in_difference

    @given(int_ranges(), int_ranges())
    def test_difference_pieces_disjoint_from_removed(self, left, right):
        for piece in left.difference(right):
            assert piece.intersect(right) is None
