"""Tests for the type (1) list algorithms, including the paper's Figure 2.

Every operator is cross-checked against a naive per-segment computation of
the paper's §2.5 definitions (the property tests), and the worked UNTIL
example of Figure 2 is reproduced entry for entry.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.ops import (
    always_list,
    and_lists,
    eventually_list,
    max_merge_lists,
    next_list,
    threshold_runs,
    until_lists,
    until_runs,
)
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.errors import SimilarityListInvariantError

from tests.core.test_simlist import similarity_lists


def naive_and(left, right, horizon):
    return {
        i: left.actual_at(i) + right.actual_at(i)
        for i in range(1, horizon + 1)
    }


def naive_until(left, right, horizon, threshold):
    values = {}
    for position in range(1, horizon + 1):
        best = 0.0
        for witness in range(position, horizon + 1):
            best = max(best, right.actual_at(witness))
            if left.fraction_at(witness) + SIM_EPS < threshold:
                break
        values[position] = best
    return values


class TestAnd:
    def test_overlap_sums(self):
        left = SimilarityList.from_entries([((1, 10), 2.0)], 5.0)
        right = SimilarityList.from_entries([((5, 15), 3.0)], 7.0)
        result = and_lists(left, right)
        assert result.maximum == pytest.approx(12.0)
        assert result.actual_at(3) == pytest.approx(2.0)
        assert result.actual_at(7) == pytest.approx(5.0)
        assert result.actual_at(12) == pytest.approx(3.0)
        assert result.actual_at(16) == 0.0

    def test_one_side_empty_passes_through(self):
        left = SimilarityList.from_entries([((2, 4), 1.0)], 2.0)
        right = SimilarityList.empty(3.0)
        result = and_lists(left, right)
        assert result.maximum == pytest.approx(5.0)
        assert result.actual_at(3) == pytest.approx(1.0)

    def test_partial_satisfaction_kept(self):
        """Paper: 'even if one of a1 and a2 is zero ... f may be partially
        satisfied' — segments on only one list stay in the output."""
        left = SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        right = SimilarityList.from_entries([((9, 9), 1.5)], 2.0)
        result = and_lists(left, right)
        assert result.to_segment_values() == {
            1: pytest.approx(1.0),
            9: pytest.approx(1.5),
        }

    @given(similarity_lists(), similarity_lists())
    def test_matches_naive(self, left, right):
        result = and_lists(left, right)
        horizon = max(left.last_id(), right.last_id()) + 2
        naive = naive_and(left, right, horizon)
        for i in range(1, horizon + 1):
            assert result.actual_at(i) == pytest.approx(naive[i])

    @given(similarity_lists(), similarity_lists())
    def test_commutative(self, left, right):
        assert and_lists(left, right) == and_lists(right, left)

    @given(similarity_lists(), similarity_lists(), similarity_lists())
    @settings(max_examples=30)
    def test_associative(self, a, b, c):
        left_first = and_lists(and_lists(a, b), c)
        right_first = and_lists(a, and_lists(b, c))
        assert left_first == right_first


class TestNext:
    def test_shift(self):
        sim = SimilarityList.from_entries([((3, 5), 2.0)], 4.0)
        assert next_list(sim).to_segment_values() == {
            2: pytest.approx(2.0),
            3: pytest.approx(2.0),
            4: pytest.approx(2.0),
        }

    def test_entry_at_first_segment_clamped(self):
        sim = SimilarityList.from_entries([((1, 2), 2.0)], 4.0)
        assert next_list(sim).to_segment_values() == {1: pytest.approx(2.0)}

    def test_single_first_segment_disappears(self):
        sim = SimilarityList.from_entries([((1, 1), 2.0)], 4.0)
        assert not next_list(sim)

    @given(similarity_lists())
    def test_matches_naive(self, sim):
        shifted = next_list(sim)
        for i in range(1, sim.last_id() + 2):
            assert shifted.actual_at(i) == pytest.approx(sim.actual_at(i + 1))


class TestThresholdRuns:
    def test_filters_and_coalesces(self):
        sim = SimilarityList.from_entries(
            [((1, 4), 1.0), ((5, 9), 8.0), ((10, 12), 9.0), ((20, 22), 8.0)],
            maximum=10.0,
        )
        runs = threshold_runs(sim, 0.5)
        assert runs == [Interval(5, 12), Interval(20, 22)]

    def test_threshold_inclusive(self):
        sim = SimilarityList.from_entries([((1, 2), 5.0)], 10.0)
        assert threshold_runs(sim, 0.5) == [Interval(1, 2)]

    def test_zero_threshold_keeps_all(self):
        sim = SimilarityList.from_entries([((1, 2), 0.1)], 10.0)
        assert threshold_runs(sim, 0.0) == [Interval(1, 2)]


class TestUntilFigure2:
    """The paper's worked example, Figure 2, reproduced exactly."""

    L1_RUNS = [Interval(25, 100), Interval(200, 250)]
    L2 = SimilarityList.from_entries(
        [((10, 50), 10.0), ((55, 60), 15.0), ((90, 110), 12.0), ((125, 175), 10.0)],
        maximum=20.0,
    )
    EXPECTED = SimilarityList.from_entries(
        [((10, 24), 10.0), ((25, 60), 15.0), ((61, 110), 12.0), ((125, 175), 10.0)],
        maximum=20.0,
    )

    def test_paper_example(self):
        assert until_runs(self.L1_RUNS, self.L2) == self.EXPECTED

    def test_paper_example_via_thresholded_lists(self):
        left = SimilarityList.from_entries(
            [((25, 100), 18.0), ((120, 124), 2.0), ((200, 250), 18.0)],
            maximum=20.0,
        )
        assert until_lists(left, self.L2, threshold=0.5) == self.EXPECTED


class TestUntil:
    def test_h_only_segments_keep_direct_value(self):
        result = until_runs([], SimilarityList.from_entries([((3, 5), 2.0)], 4.0))
        assert result.to_segment_values() == {
            3: pytest.approx(2.0),
            4: pytest.approx(2.0),
            5: pytest.approx(2.0),
        }

    def test_h_entry_starting_just_past_run_is_reachable(self):
        """The off-by-one the paper's informal property misses: g holding
        on [u, u''-1] lets the witness sit one past the run's end."""
        runs = [Interval(1, 10)]
        right = SimilarityList.from_entries([((11, 11), 3.0)], 4.0)
        result = until_runs(runs, right)
        assert result.actual_at(1) == pytest.approx(3.0)
        assert result.actual_at(10) == pytest.approx(3.0)
        assert result.actual_at(11) == pytest.approx(3.0)
        assert result.actual_at(12) == 0.0

    def test_h_entry_past_gap_not_reachable(self):
        runs = [Interval(1, 10)]
        right = SimilarityList.from_entries([((12, 12), 3.0)], 4.0)
        result = until_runs(runs, right)
        assert result.actual_at(5) == 0.0
        assert result.actual_at(12) == pytest.approx(3.0)

    def test_later_better_witness_wins(self):
        runs = [Interval(1, 20)]
        right = SimilarityList.from_entries(
            [((2, 2), 1.0), ((9, 9), 4.0)], 4.0
        )
        result = until_runs(runs, right)
        assert result.actual_at(1) == pytest.approx(4.0)
        assert result.actual_at(5) == pytest.approx(4.0)
        assert result.actual_at(9) == pytest.approx(4.0)
        assert result.actual_at(10) == 0.0

    @given(similarity_lists(), similarity_lists())
    @settings(max_examples=60)
    def test_matches_naive(self, left, right):
        threshold = 0.5
        result = until_lists(left, right, threshold)
        horizon = max(left.last_id(), right.last_id()) + 2
        naive = naive_until(left, right, horizon, threshold)
        for i in range(1, horizon + 1):
            assert result.actual_at(i) == pytest.approx(naive[i]), f"at {i}"

    def test_zero_threshold_rejected(self):
        left = SimilarityList.from_entries([((1, 2), 1.0)], 2.0)
        right = SimilarityList.from_entries([((3, 3), 1.0)], 2.0)
        with pytest.raises(SimilarityListInvariantError):
            until_lists(left, right, threshold=0.0)

    @given(similarity_lists(), similarity_lists(), st.floats(0.01, 1.0))
    @settings(max_examples=40)
    def test_matches_naive_any_threshold(self, left, right, threshold):
        result = until_lists(left, right, threshold)
        horizon = max(left.last_id(), right.last_id()) + 2
        naive = naive_until(left, right, horizon, threshold)
        for i in range(1, horizon + 1):
            assert result.actual_at(i) == pytest.approx(naive[i]), f"at {i}"


class TestEventually:
    def test_suffix_max(self):
        sim = SimilarityList.from_entries(
            [((3, 5), 2.0), ((9, 9), 4.0), ((12, 14), 1.0)], 4.0
        )
        result = eventually_list(sim)
        assert result.actual_at(1) == pytest.approx(4.0)
        assert result.actual_at(9) == pytest.approx(4.0)
        assert result.actual_at(10) == pytest.approx(1.0)
        assert result.actual_at(14) == pytest.approx(1.0)
        assert result.actual_at(15) == 0.0

    def test_empty(self):
        assert not eventually_list(SimilarityList.empty(4.0))

    @given(similarity_lists())
    def test_matches_naive(self, sim):
        result = eventually_list(sim)
        horizon = sim.last_id() + 2
        for i in range(1, horizon + 1):
            expected = max(
                (sim.actual_at(j) for j in range(i, horizon + 1)), default=0.0
            )
            assert result.actual_at(i) == pytest.approx(expected)

    @given(similarity_lists())
    def test_equals_true_until(self, sim):
        """eventually g ≡ true until g."""
        horizon = max(sim.last_id(), 1)
        true_list = SimilarityList.from_entries([((1, horizon), 1.0)], 1.0)
        assert until_lists(true_list, sim, 0.5) == eventually_list(sim)

    @given(similarity_lists())
    def test_idempotent(self, sim):
        once = eventually_list(sim)
        assert eventually_list(once) == once


class TestAlways:
    def test_trailing_block_minimum(self):
        sim = SimilarityList.from_entries(
            [((1, 3), 4.0), ((6, 8), 3.0), ((9, 10), 2.0)], 4.0
        )
        result = always_list(sim, axis_end=10)
        assert result.actual_at(10) == pytest.approx(2.0)
        assert result.actual_at(9) == pytest.approx(2.0)
        assert result.actual_at(6) == pytest.approx(2.0)
        assert result.actual_at(5) == 0.0  # gap at 4..5
        assert result.actual_at(1) == 0.0

    def test_uncovered_axis_end_all_zero(self):
        sim = SimilarityList.from_entries([((1, 5), 4.0)], 4.0)
        assert not always_list(sim, axis_end=6)

    def test_full_coverage(self):
        sim = SimilarityList.from_entries([((1, 6), 2.5)], 4.0)
        result = always_list(sim, axis_end=6)
        assert result.actual_at(1) == pytest.approx(2.5)

    @given(similarity_lists(max_id=30), st.integers(1, 35))
    def test_matches_naive(self, sim, axis_end):
        result = always_list(sim, axis_end)
        for i in range(1, axis_end + 1):
            expected = min(
                sim.actual_at(j) for j in range(i, axis_end + 1)
            )
            assert result.actual_at(i) == pytest.approx(expected)


class TestMaxMerge:
    def test_pointwise_max(self):
        a = SimilarityList.from_entries([((1, 10), 2.0)], 5.0)
        b = SimilarityList.from_entries([((5, 15), 3.0)], 5.0)
        c = SimilarityList.from_entries([((8, 8), 1.0)], 5.0)
        merged = max_merge_lists([a, b, c])
        assert merged.actual_at(3) == pytest.approx(2.0)
        assert merged.actual_at(7) == pytest.approx(3.0)
        assert merged.actual_at(8) == pytest.approx(3.0)
        assert merged.actual_at(12) == pytest.approx(3.0)
        assert merged.actual_at(16) == 0.0

    def test_single_list_identity(self):
        a = SimilarityList.from_entries([((1, 3), 2.0)], 5.0)
        assert max_merge_lists([a]) is a

    def test_mismatched_maxima_rejected(self):
        a = SimilarityList.from_entries([((1, 3), 2.0)], 5.0)
        b = SimilarityList.from_entries([((1, 3), 2.0)], 6.0)
        with pytest.raises(SimilarityListInvariantError):
            max_merge_lists([a, b])

    def test_no_lists_rejected(self):
        with pytest.raises(SimilarityListInvariantError):
            max_merge_lists([])

    @given(st.lists(similarity_lists(), min_size=1, max_size=5))
    @settings(max_examples=50)
    def test_matches_naive(self, lists):
        merged = max_merge_lists(lists)
        horizon = max((sim.last_id() for sim in lists), default=0) + 2
        for i in range(1, horizon + 1):
            expected = max(sim.actual_at(i) for sim in lists)
            assert merged.actual_at(i) == pytest.approx(expected)


class TestCriticalPoints:
    @given(similarity_lists(), similarity_lists())
    @settings(max_examples=60)
    def test_two_pointer_matches_set_union(self, left, right):
        from repro.core.ops import _critical_points

        expected = sorted(
            {
                point
                for sim in (left, right)
                for entry in sim
                for point in (entry.begin, entry.end + 1)
            }
        )
        assert _critical_points(left, right) == expected

    def test_empty_lists(self):
        from repro.core.ops import _critical_points

        empty = SimilarityList.empty(1.0)
        assert _critical_points(empty, empty) == []
        one = SimilarityList.from_entries([((2, 4), 1.0)], 1.0)
        assert _critical_points(one, empty) == [2, 5]
