"""Tests for the evaluation cache: hits, misses, invalidation, equality."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import EvaluationCache
from repro.core.engine import RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.htl import ast, parse
from repro.htl.ast import structural_key
from repro.core.tables import SimilarityTable
from repro.model.database import VideoDatabase
from repro.model.hierarchy import VideoNode, flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.workloads.synthetic import random_similarity_list

from tests.integration.strategies import (
    flat_videos,
    type1_formulas,
    type2_formulas,
)


def atomic_database(n_videos=3, n_segments=60, seed=11):
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(n_videos):
        video = flat_video(
            f"v{position}", [SegmentMetadata() for __ in range(n_segments)]
        )
        database.add(video)
        for name in ("P1", "P2"):
            database.register_atomic(
                name, video.name, random_similarity_list(n_segments, rng=rng)
            )
    return database


class TestStructuralKey:
    def test_equal_formulas_share_keys(self):
        assert structural_key(parse("$P1 and eventually $P2")) == (
            structural_key(parse("$P1 and eventually $P2"))
        )

    def test_distinct_formulas_differ(self):
        pairs = [
            ("$P1 and $P2", "$P2 and $P1"),
            ("next $P1", "eventually $P1"),
            ("exists x . present(x)", "exists y . present(y)"),
            ("height(x) > 3", "height(x) > 30"),
        ]
        for left, right in pairs:
            assert structural_key(parse(left)) != structural_key(parse(right))

    def test_key_is_deterministic_string(self):
        key = structural_key(ast.AtomicRef("P1"))
        assert isinstance(key, str)
        assert key == "AtomicRef('P1',)"


class TestCacheCounters:
    def test_repeated_query_hits_list_cache(self):
        database = atomic_database()
        cache = EvaluationCache()
        engine = RetrievalEngine(cache=cache)
        formula = parse("$P1 and eventually $P2")
        video = database.get("v0")
        first = engine.evaluate_video(formula, video, database=database)
        assert cache.stats().list_misses == 1
        second = engine.evaluate_video(formula, video, database=database)
        assert second == first
        assert cache.stats().list_hits == 1

    def test_shared_subformula_hits_table_cache(self):
        database = atomic_database()
        cache = EvaluationCache()
        engine = RetrievalEngine(cache=cache)
        engine.evaluate_video(
            parse("$P1 and eventually $P1"), database.get("v0"), database=database
        )
        # $P1 appears twice; the second occurrence must be a table hit.
        assert cache.stats().table_hits >= 1

    def test_cross_query_subformula_reuse(self):
        database = atomic_database()
        cache = EvaluationCache()
        engine = RetrievalEngine(cache=cache)
        video = database.get("v0")
        engine.evaluate_video(parse("eventually $P1"), video, database=database)
        before = cache.stats().table_hits
        engine.evaluate_video(parse("next $P1"), video, database=database)
        assert cache.stats().table_hits > before

    def test_stats_aggregates(self):
        stats = EvaluationCache().stats()
        assert stats.hits == 0
        assert stats.misses == 0
        assert stats.hit_rate == 0.0


class TestInvalidation:
    def test_register_atomic_invalidates(self):
        database = atomic_database(n_segments=40)
        cache = EvaluationCache()
        engine = RetrievalEngine(cache=cache)
        formula = parse("eventually $P1")
        video = database.get("v0")
        stale = engine.evaluate_video(formula, video, database=database)
        replacement = SimilarityList.from_entries([((2, 3), 5.0)], 20.0)
        database.register_atomic("P1", "v0", replacement)
        fresh = engine.evaluate_video(formula, video, database=database)
        assert cache.stats().invalidations == 1
        assert fresh != stale
        assert fresh == RetrievalEngine().evaluate_video(
            formula, video, database=database
        )

    def test_add_video_leaves_other_videos_warm(self):
        # Invalidation is per video: registering an unrelated video must
        # not discard v0's memoized list (the pre-ingest behavior dropped
        # everything on any generation bump).
        database = atomic_database()
        cache = EvaluationCache()
        engine = RetrievalEngine(cache=cache)
        formula = parse("eventually $P1")
        engine.evaluate_video(formula, database.get("v0"), database=database)
        database.add(flat_video("extra", [SegmentMetadata()]))
        engine.evaluate_video(formula, database.get("v0"), database=database)
        assert cache.stats().invalidations == 0
        assert cache.stats().list_hits == 1

    def test_adhoc_atomic_lists_bypass_cache(self):
        database = atomic_database()
        cache = EvaluationCache()
        engine = RetrievalEngine(cache=cache)
        lists = {"P9": SimilarityList.from_entries([((1, 2), 1.0)], 4.0)}
        engine.evaluate_video(
            parse("$P9"), database.get("v0"), database=database, atomic_lists=lists
        )
        stats = cache.stats()
        assert stats.list_misses == 0
        assert stats.table_misses == 0

    def test_capacity_is_bounded(self):
        cache = EvaluationCache(max_tables=2, max_lists=2)
        for position in range(5):
            cache.put_table(("k", position), SimilarityTable.empty(1.0))
            cache.put_list(("k", position), SimilarityList.empty(1.0))
        stats = cache.stats()
        assert stats.table_entries <= 2
        assert stats.list_entries <= 2


class TestPictureSystemCache:
    def test_cached_per_node_and_level(self):
        video = flat_video(
            "v",
            [SegmentMetadata(objects=[make_object("a", "train")])],
        )
        first = video.root.pictures_at_level(2)
        assert video.root.pictures_at_level(2) is first

    def test_add_child_invalidates_ancestors(self):
        video = flat_video("v", [SegmentMetadata(), SegmentMetadata()])
        system = video.root.pictures_at_level(2)
        video.root.add_child(VideoNode(metadata=SegmentMetadata()))
        assert video.root.pictures_at_level(2) is not system


@settings(max_examples=40, deadline=None)
@given(
    video=flat_videos(),
    formula=st.one_of(type1_formulas(), type2_formulas()),
)
def test_cached_equals_cold_on_random_formulas(video, formula):
    """Property: warm-cache results are ``==`` to a cold engine's."""
    database = VideoDatabase()
    database.add(video)
    cold = RetrievalEngine().evaluate_video(formula, video, database=database)
    cache = EvaluationCache()
    warm_engine = RetrievalEngine(cache=cache)
    first = warm_engine.evaluate_video(formula, video, database=database)
    second = warm_engine.evaluate_video(formula, video, database=database)
    assert first == cold
    assert second == cold
    assert cache.stats().list_hits >= 1
