"""Unit and property tests for similarity values and lists."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.simlist import SimEntry, SimilarityList, SimilarityValue
from repro.core.intervals import Interval
from repro.errors import (
    InvalidSimilarityError,
    SimilarityListInvariantError,
)


class TestSimilarityValue:
    def test_fraction(self):
        value = SimilarityValue(5.0, 20.0)
        assert value.fraction == pytest.approx(0.25)

    def test_exact_match(self):
        assert SimilarityValue(7.0, 7.0).is_exact()
        assert not SimilarityValue(6.9, 7.0).is_exact()

    def test_actual_above_maximum_rejected(self):
        with pytest.raises(InvalidSimilarityError):
            SimilarityValue(8.0, 7.0)

    def test_negative_actual_rejected(self):
        with pytest.raises(InvalidSimilarityError):
            SimilarityValue(-1.0, 7.0)

    def test_nonpositive_maximum_rejected(self):
        with pytest.raises(InvalidSimilarityError):
            SimilarityValue(0.0, 0.0)


class TestConstruction:
    def test_from_entries_sorts(self):
        sim = SimilarityList.from_entries(
            [((10, 20), 3.0), ((1, 5), 2.0)], maximum=4.0
        )
        assert [entry.begin for entry in sim] == [1, 10]

    def test_from_entries_drops_zero(self):
        sim = SimilarityList.from_entries(
            [((1, 5), 0.0), ((7, 9), 2.0)], maximum=4.0
        )
        assert len(sim) == 1

    def test_from_entries_coalesces_equal_adjacent(self):
        sim = SimilarityList.from_entries(
            [((1, 5), 2.0), ((6, 9), 2.0)], maximum=4.0
        )
        assert len(sim) == 1
        assert sim.entries[0].interval == Interval(1, 9)

    def test_from_entries_keeps_distinct_adjacent(self):
        sim = SimilarityList.from_entries(
            [((1, 5), 2.0), ((6, 9), 3.0)], maximum=4.0
        )
        assert len(sim) == 2

    def test_overlapping_entries_rejected(self):
        with pytest.raises(SimilarityListInvariantError):
            SimilarityList.from_entries(
                [((1, 5), 2.0), ((5, 9), 3.0)], maximum=4.0
            )

    def test_actual_above_maximum_rejected(self):
        with pytest.raises(SimilarityListInvariantError):
            SimilarityList.from_entries([((1, 5), 9.0)], maximum=4.0)

    def test_raw_requires_normalised(self):
        with pytest.raises(SimilarityListInvariantError):
            SimilarityList.from_raw(
                [
                    SimEntry(Interval(5, 9), 1.0),
                    SimEntry(Interval(1, 4), 1.0),
                ],
                maximum=2.0,
            )

    def test_from_segment_values(self):
        sim = SimilarityList.from_segment_values(
            {1: 2.0, 2: 2.0, 3: 2.0, 7: 1.0}, maximum=4.0
        )
        assert len(sim) == 2
        assert sim.entries[0].interval == Interval(1, 3)


class TestQueries:
    @pytest.fixture
    def sim(self):
        return SimilarityList.from_entries(
            [((2, 4), 1.5), ((8, 8), 3.0), ((10, 12), 0.5)], maximum=3.0
        )

    def test_value_at_inside(self, sim):
        assert sim.actual_at(3) == pytest.approx(1.5)

    def test_value_at_boundary(self, sim):
        assert sim.actual_at(8) == pytest.approx(3.0)

    def test_value_at_gap_is_zero(self, sim):
        assert sim.actual_at(5) == 0.0
        assert sim.actual_at(1) == 0.0
        assert sim.actual_at(99) == 0.0

    def test_fraction_at(self, sim):
        assert sim.fraction_at(8) == pytest.approx(1.0)

    def test_support_size(self, sim):
        assert sim.support_size() == 7

    def test_last_id(self, sim):
        assert sim.last_id() == 12

    def test_empty_list(self):
        empty = SimilarityList.empty(5.0)
        assert not empty
        assert empty.last_id() == 0
        assert empty.actual_at(1) == 0.0

    def test_segment_ids(self, sim):
        assert list(sim.segment_ids()) == [2, 3, 4, 8, 10, 11, 12]

    def test_restricted(self, sim):
        cut = sim.restricted(3, 10)
        assert cut.to_segment_values() == {
            3: pytest.approx(1.5),
            4: pytest.approx(1.5),
            8: pytest.approx(3.0),
            10: pytest.approx(0.5),
        }

    def test_scaled(self, sim):
        doubled = sim.scaled(2.0)
        assert doubled.maximum == pytest.approx(6.0)
        assert doubled.actual_at(8) == pytest.approx(6.0)

    def test_equality_tolerates_float_noise(self, sim):
        other = SimilarityList.from_entries(
            [((2, 4), 1.5 + 1e-12), ((8, 8), 3.0), ((10, 12), 0.5)],
            maximum=3.0,
        )
        assert sim == other


@st.composite
def similarity_lists(draw, max_id=80, maximum=10.0):
    """Random well-formed similarity lists."""
    n = draw(st.integers(0, 8))
    starts = draw(
        st.lists(
            st.integers(1, max_id), min_size=n, max_size=n, unique=True
        )
    )
    starts.sort()
    entries = []
    previous_end = 0
    for start in starts:
        begin = max(start, previous_end + 1)
        end = begin + draw(st.integers(0, 5))
        actual = draw(
            st.floats(0.5, maximum, allow_nan=False, allow_infinity=False)
        )
        entries.append(((begin, end), actual))
        previous_end = end
    return SimilarityList.from_entries(entries, maximum)


class TestRoundTripProperties:
    @given(similarity_lists())
    def test_segment_expansion_round_trips(self, sim):
        rebuilt = SimilarityList.from_segment_values(
            sim.to_segment_values(), sim.maximum
        )
        assert rebuilt == sim

    @given(similarity_lists())
    def test_value_at_matches_expansion(self, sim):
        expanded = sim.to_segment_values()
        for segment_id in range(1, sim.last_id() + 2):
            assert sim.actual_at(segment_id) == pytest.approx(
                expanded.get(segment_id, 0.0)
            )


class TestFromSortedPieces:
    def test_matches_from_entries(self):
        pieces = [(1, 3, 0.5), (4, 4, 0.5), (5, 9, 2.0), (12, 14, 0.0)]
        built = SimilarityList.from_sorted_pieces(pieces, 4.0)
        expected = SimilarityList.from_entries(
            [((begin, end), actual) for begin, end, actual in pieces], 4.0
        )
        assert built == expected
        # adjacent equal-valued runs coalesce; zero runs are dropped
        assert [(e.begin, e.end) for e in built] == [(1, 4), (5, 9)]

    def test_empty_and_all_zero(self):
        assert SimilarityList.from_sorted_pieces([], 1.0) == (
            SimilarityList.empty(1.0)
        )
        assert not SimilarityList.from_sorted_pieces([(1, 5, 0.0)], 1.0)

    @given(similarity_lists())
    def test_round_trips_entries(self, sim):
        pieces = [(entry.begin, entry.end, entry.actual) for entry in sim]
        assert SimilarityList.from_sorted_pieces(pieces, sim.maximum) == sim
