"""Tests for top-k retrieval and ranked presentation."""

import pytest

from repro.core.engine import RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.core.topk import (
    ranked_entries,
    top_k_across_videos,
    top_k_segments,
    top_k_videos,
)
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object


@pytest.fixture
def sim():
    return SimilarityList.from_entries(
        [((1, 3), 2.0), ((5, 5), 6.0), ((8, 9), 4.0)], 8.0
    )


class TestRankedEntries:
    def test_descending_similarity(self, sim):
        assert ranked_entries(sim) == [
            (5, 5, 6.0),
            (8, 9, 4.0),
            (1, 3, 2.0),
        ]

    def test_ties_break_on_begin(self):
        tied = SimilarityList.from_entries(
            [((7, 7), 2.0), ((1, 1), 2.0)], 4.0
        )
        assert ranked_entries(tied) == [(1, 1, 2.0), (7, 7, 2.0)]


class TestTopKSegments:
    def test_takes_best_first(self, sim):
        segments = top_k_segments(sim, 3, video="v")
        assert [(s.segment_id, s.actual) for s in segments] == [
            (5, 6.0),
            (8, 4.0),
            (9, 4.0),
        ]

    def test_expands_intervals_in_order(self, sim):
        segments = top_k_segments(sim, 6)
        assert [s.segment_id for s in segments] == [5, 8, 9, 1, 2, 3]

    def test_k_larger_than_support(self, sim):
        assert len(top_k_segments(sim, 100)) == sim.support_size()

    def test_k_zero(self, sim):
        assert top_k_segments(sim, 0) == []

    def test_fraction(self, sim):
        best = top_k_segments(sim, 1)[0]
        assert best.fraction == pytest.approx(0.75)


def two_video_database():
    database = VideoDatabase()
    first = flat_video(
        "alpha",
        [
            SegmentMetadata(objects=[make_object("a", "train")]),
            SegmentMetadata(),
        ],
    )
    second = flat_video(
        "beta",
        [
            SegmentMetadata(),
            SegmentMetadata(objects=[make_object("a", "train")]),
            SegmentMetadata(objects=[make_object("a", "train")]),
        ],
    )
    database.add(first)
    database.add(second)
    return database


class TestAcrossVideos:
    def test_global_ranking(self):
        database = two_video_database()
        engine = RetrievalEngine()
        formula = parse("exists x . present(x) and type(x) = 'train'")
        results = top_k_across_videos(engine, formula, database, k=4)
        assert [(r.video, r.segment_id) for r in results] == [
            ("alpha", 1),
            ("beta", 2),
            ("beta", 3),
        ]

    def test_k_limits(self):
        database = two_video_database()
        engine = RetrievalEngine()
        formula = parse("exists x . present(x)")
        results = top_k_across_videos(engine, formula, database, k=2)
        assert len(results) == 2

    def test_video_ranking(self):
        database = two_video_database()
        engine = RetrievalEngine()
        # Whole-video browsing: does the video eventually show a train?
        formula = parse(
            "at_next_level(eventually "
            "(exists x . present(x) and type(x) = 'train'))"
        )
        ranking = top_k_videos(engine, formula, database, k=2)
        assert [name for name, __ in ranking] == ["alpha", "beta"]
        assert ranking[0][1].actual == pytest.approx(2.0)
