"""Tests for top-k retrieval and ranked presentation."""

import heapq
import random

import pytest
from hypothesis import given, settings

from repro.core.cache import EvaluationCache
from repro.core.engine import RetrievalEngine, actual_upper_bound
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.core.topk import (
    ranked_entries,
    top_k_across_videos,
    top_k_segments,
    top_k_videos,
)
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.workloads.synthetic import random_similarity_list

from tests.integration.strategies import flat_videos, type1_formulas


@pytest.fixture
def sim():
    return SimilarityList.from_entries(
        [((1, 3), 2.0), ((5, 5), 6.0), ((8, 9), 4.0)], 8.0
    )


class TestRankedEntries:
    def test_descending_similarity(self, sim):
        assert ranked_entries(sim) == [
            (5, 5, 6.0),
            (8, 9, 4.0),
            (1, 3, 2.0),
        ]

    def test_ties_break_on_begin(self):
        tied = SimilarityList.from_entries(
            [((7, 7), 2.0), ((1, 1), 2.0)], 4.0
        )
        assert ranked_entries(tied) == [(1, 1, 2.0), (7, 7, 2.0)]


class TestTopKSegments:
    def test_takes_best_first(self, sim):
        segments = top_k_segments(sim, 3, video="v")
        assert [(s.segment_id, s.actual) for s in segments] == [
            (5, 6.0),
            (8, 4.0),
            (9, 4.0),
        ]

    def test_expands_intervals_in_order(self, sim):
        segments = top_k_segments(sim, 6)
        assert [s.segment_id for s in segments] == [5, 8, 9, 1, 2, 3]

    def test_k_larger_than_support(self, sim):
        assert len(top_k_segments(sim, 100)) == sim.support_size()

    def test_k_zero(self, sim):
        assert top_k_segments(sim, 0) == []

    def test_fraction(self, sim):
        best = top_k_segments(sim, 1)[0]
        assert best.fraction == pytest.approx(0.75)


def two_video_database():
    database = VideoDatabase()
    first = flat_video(
        "alpha",
        [
            SegmentMetadata(objects=[make_object("a", "train")]),
            SegmentMetadata(),
        ],
    )
    second = flat_video(
        "beta",
        [
            SegmentMetadata(),
            SegmentMetadata(objects=[make_object("a", "train")]),
            SegmentMetadata(objects=[make_object("a", "train")]),
        ],
    )
    database.add(first)
    database.add(second)
    return database


class TestAcrossVideos:
    def test_global_ranking(self):
        database = two_video_database()
        engine = RetrievalEngine()
        formula = parse("exists x . present(x) and type(x) = 'train'")
        results = top_k_across_videos(engine, formula, database, k=4)
        assert [(r.video, r.segment_id) for r in results] == [
            ("alpha", 1),
            ("beta", 2),
            ("beta", 3),
        ]

    def test_k_limits(self):
        database = two_video_database()
        engine = RetrievalEngine()
        formula = parse("exists x . present(x)")
        results = top_k_across_videos(engine, formula, database, k=2)
        assert len(results) == 2

    def test_video_ranking(self):
        database = two_video_database()
        engine = RetrievalEngine()
        # Whole-video browsing: does the video eventually show a train?
        formula = parse(
            "at_next_level(eventually "
            "(exists x . present(x) and type(x) = 'train'))"
        )
        ranking = top_k_videos(engine, formula, database, k=2)
        assert [name for name, __ in ranking] == ["alpha", "beta"]
        assert ranking[0][1].actual == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# the multi-video fast path: streaming heap, pruning, parallel fan-out
# ---------------------------------------------------------------------------
def synthetic_corpus(n_videos=8, n_segments=300, seed=23):
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(n_videos):
        video = flat_video(
            f"vid{position:02d}", [SegmentMetadata() for __ in range(n_segments)]
        )
        database.add(video)
        for name in ("P1", "P2"):
            database.register_atomic(
                name, video.name, random_similarity_list(n_segments, rng=rng)
            )
    return database


def oracle_top_k(engine, formula, database, k, level=2):
    """The pre-rewrite implementation: full expansion + nsmallest."""
    candidates = []
    for video in database.videos():
        sim = engine.evaluate_video(
            formula, video, level=level, database=database
        )
        for entry in sim.entries:
            for segment_id in entry.interval:
                candidates.append(
                    (entry.actual, video.name, segment_id, sim.maximum)
                )
    best = heapq.nsmallest(
        k, candidates, key=lambda item: (-item[0], item[1], item[2])
    )
    return [(video, seg, actual, maximum) for actual, video, seg, maximum in best]


CORPUS_FORMULAS = [
    "$P1 and $P2",
    "$P1 until $P2",
    "$P1 and eventually $P2",
    "next ($P1 and $P2)",
]


class TestFastPathIdentity:
    @pytest.mark.parametrize("text", CORPUS_FORMULAS)
    @pytest.mark.parametrize("k", [1, 7, 50, 10_000])
    def test_matches_expansion_oracle(self, text, k):
        database = synthetic_corpus()
        engine = RetrievalEngine()
        formula = parse(text)
        expected = oracle_top_k(engine, formula, database, k)
        got = top_k_across_videos(
            engine, formula, database, k, parallelism=None, prune=False
        )
        assert [
            (r.video, r.segment_id, r.actual, r.maximum) for r in got
        ] == expected

    @pytest.mark.parametrize("text", CORPUS_FORMULAS)
    @pytest.mark.parametrize(
        "parallelism,prune", [(None, True), (4, False), (4, True)]
    )
    def test_pruned_and_parallel_identical_to_serial(
        self, text, parallelism, prune
    ):
        database = synthetic_corpus()
        formula = parse(text)
        serial = top_k_across_videos(
            RetrievalEngine(), formula, database, 12,
            parallelism=None, prune=False,
        )
        fast = top_k_across_videos(
            RetrievalEngine(cache=EvaluationCache()), formula, database, 12,
            parallelism=parallelism, prune=prune,
        )
        assert fast == serial

    def test_metadata_formula_parallel(self):
        database = two_video_database()
        engine = RetrievalEngine()
        formula = parse("exists x . present(x) and type(x) = 'train'")
        serial = top_k_across_videos(engine, formula, database, k=4)
        parallel = top_k_across_videos(
            engine, formula, database, k=4, parallelism=3
        )
        assert parallel == serial

    def test_prune_without_registered_bound_is_safe(self):
        # Metadata atoms have only structural bounds; unregistered $refs
        # yield no bound at all — neither may change the answer.
        database = two_video_database()
        engine = RetrievalEngine()
        formula = parse("eventually (exists x . present(x))")
        assert top_k_across_videos(
            engine, formula, database, k=2, prune=True
        ) == top_k_across_videos(engine, formula, database, k=2, prune=False)

    def test_k_zero(self):
        database = synthetic_corpus(n_videos=2, n_segments=20)
        assert (
            top_k_across_videos(
                RetrievalEngine(), parse("$P1"), database, k=0
            )
            == []
        )


class TestUpperBound:
    def test_registered_atomics_tighten_the_bound(self):
        database = synthetic_corpus(n_videos=1, n_segments=50)
        video = database.get("vid00")
        formula = parse("$P1 and $P2")
        bound = actual_upper_bound(formula, video, 2, database)
        best = max(
            entry.actual
            for entry in RetrievalEngine().evaluate_video(
                formula, video, database=database
            )
        )
        assert best <= bound + SIM_EPS
        # The actual-based bound is tighter than the structural maximum.
        assert bound < 40.0

    @settings(max_examples=30, deadline=None)
    @given(video=flat_videos(), formula=type1_formulas())
    def test_bound_is_admissible_on_random_formulas(self, video, formula):
        database = VideoDatabase()
        database.add(video)
        bound = actual_upper_bound(formula, video, 2, database)
        sim = RetrievalEngine().evaluate_video(
            formula, video, database=database
        )
        for entry in sim.entries:
            assert entry.actual <= bound + SIM_EPS


# ---------------------------------------------------------------------------
# resilience: provenance, partial results, cancellation
# ---------------------------------------------------------------------------
from repro.core import resilience  # noqa: E402
from repro.core.topk import (  # noqa: E402
    OUTCOME_FAILED,
    OUTCOME_OK,
    OUTCOME_PRUNED,
    OUTCOME_TIMED_OUT,
    TopKResult,
    VideoOutcome,
)
from repro.errors import BudgetExceededError  # noqa: E402


class RecordingEngine(RetrievalEngine):
    """A real engine that logs which videos it evaluated and can be told
    to fail for some of them."""

    def __init__(self, fail_for=(), **kwargs):
        super().__init__(**kwargs)
        self.fail_for = set(fail_for)
        self.calls = []

    def evaluate_video(self, formula, video, level=2, database=None,
                       atomic_lists=None):
        self.calls.append(video.name)
        if video.name in self.fail_for:
            raise RuntimeError(f"evaluation down for {video.name}")
        return super().evaluate_video(
            formula, video, level=level, database=database,
            atomic_lists=atomic_lists,
        )


NO_FALLBACK_LENIENT = resilience.ResiliencePolicy(
    mode=resilience.LENIENT, atom_fallback=False, engine_fallback=False
)


class TestTopKResult:
    def test_sequence_protocol_and_list_equality(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        result = top_k_across_videos(RetrievalEngine(), formula, database, k=3)
        assert isinstance(result, TopKResult)
        assert len(result) == 3
        assert result[0].video == result.segments[0].video
        assert list(result) == result.segments
        assert result == result.segments  # list on the right
        assert result.segments == list(result)

    def test_outcomes_cover_every_video_in_order(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        result = top_k_across_videos(RetrievalEngine(), formula, database, k=3)
        assert [o.video for o in result.outcomes] == ["alpha", "beta"]
        assert all(o.status == OUTCOME_OK for o in result.outcomes)
        assert not result.partial
        assert result.failed_videos == []
        assert result.outcome_for("alpha").ok
        assert result.outcome_for("nope") is None

    def test_pruned_videos_are_marked_not_degraded(self):
        database = synthetic_corpus(n_videos=6, n_segments=100)
        formula = parse("$P1 and $P2")
        result = top_k_across_videos(
            RetrievalEngine(), formula, database, k=1, prune=True
        )
        statuses = {o.status for o in result.outcomes}
        assert OUTCOME_PRUNED in statuses  # at least one prune fired
        assert not result.partial  # pruning is not degradation


class TestLenientMode:
    def test_failed_video_recorded_rest_still_ranked(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        engine = RecordingEngine(fail_for=["beta"])
        result = top_k_across_videos(
            engine, formula, database, k=4, policy=NO_FALLBACK_LENIENT
        )
        assert result.partial
        assert result.failed_videos == ["beta"]
        assert result.outcome_for("beta").status == OUTCOME_FAILED
        assert isinstance(result.outcome_for("beta").error, RuntimeError)
        assert {s.video for s in result} == {"alpha"}

    def test_default_lenient_policy_recovers_via_fallback(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        baseline = top_k_across_videos(
            RetrievalEngine(), formula, database, k=4
        )
        engine = RecordingEngine(fail_for=["beta"])
        result = top_k_across_videos(
            engine, formula, database, k=4, lenient=True
        )
        # The naive-engine fallback answered for beta: full ranking, no
        # degradation recorded.
        assert result == baseline
        assert not result.partial

    def test_strict_mode_raises_first_failure(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        engine = RecordingEngine(fail_for=["beta"])
        with pytest.raises(RuntimeError, match="beta"):
            top_k_across_videos(
                engine, formula, database, k=4,
                policy=resilience.ResiliencePolicy(
                    atom_fallback=False, engine_fallback=False
                ),
            )

    def test_budget_timeout_marks_remaining_videos(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        engine = RecordingEngine()
        result = top_k_across_videos(
            engine, formula, database, k=4,
            budget=resilience.QueryBudget(max_steps=1),
            lenient=True,
        )
        assert result.partial
        assert [o.status for o in result.outcomes] == [
            OUTCOME_TIMED_OUT, OUTCOME_TIMED_OUT,
        ]
        # The deadline aborted the fan-out: beta was never evaluated.
        assert engine.calls == ["alpha"]
        assert isinstance(
            result.outcome_for("beta").error, BudgetExceededError
        )

    def test_strict_budget_raises(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        with pytest.raises(BudgetExceededError):
            top_k_across_videos(
                RetrievalEngine(), formula, database, k=4,
                budget=resilience.QueryBudget(max_steps=1),
            )

    def test_ambient_scope_supplies_budget_and_policy(self):
        database = two_video_database()
        formula = parse("exists x . present(x)")
        engine = RecordingEngine()
        with resilience.scope(
            budget=resilience.QueryBudget(max_steps=1),
            policy=resilience.ResiliencePolicy(mode=resilience.LENIENT),
        ):
            result = top_k_across_videos(engine, formula, database, k=4)
        assert result.partial
        assert result.outcome_for("alpha").status == OUTCOME_TIMED_OUT


class TestParallelCancellation:
    def test_worker_exception_propagates_and_cancels_siblings(self):
        database = synthetic_corpus(n_videos=6, n_segments=30)
        formula = parse("$P1 and $P2")
        engine = RecordingEngine(fail_for=["vid00"])
        with pytest.raises(RuntimeError, match="vid00"):
            top_k_across_videos(
                engine, formula, database, k=5,
                parallelism=1, prune=False,
            )
        # With one worker the failure lands before any sibling starts; the
        # cancellation event must stop every later video from evaluating.
        assert engine.calls == ["vid00"]

    def test_parallel_lenient_keeps_ranking_other_videos(self):
        database = synthetic_corpus(n_videos=5, n_segments=40)
        formula = parse("$P1 and $P2")
        # The expected partial answer is the exact ranking over the corpus
        # with the failing video absent.
        reduced = VideoDatabase()
        for video in database.videos():
            if video.name == "vid02":
                continue
            reduced.add(video)
            for name in ("P1", "P2"):
                reduced.register_atomic(
                    name, video.name, database.atomic_list(name, video.name)
                )
        expected = top_k_across_videos(
            RetrievalEngine(), formula, reduced, k=6, prune=False
        )
        engine = RecordingEngine(fail_for=["vid02"])
        result = top_k_across_videos(
            engine, formula, database, k=6,
            parallelism=3, prune=False, policy=NO_FALLBACK_LENIENT,
        )
        assert result.partial
        assert result.failed_videos == ["vid02"]
        assert result == expected

    def test_parallel_resilient_matches_serial(self):
        database = synthetic_corpus(n_videos=5, n_segments=60)
        formula = parse("$P1 until $P2")
        serial = top_k_across_videos(
            RetrievalEngine(), formula, database, k=8, prune=False
        )
        parallel = top_k_across_videos(
            RetrievalEngine(), formula, database, k=8,
            parallelism=4, lenient=True,
        )
        assert parallel == serial
        assert not parallel.partial

# ---------------------------------------------------------------------------
# sharding primitives: provenance-preserving merge, bound exchange
# ---------------------------------------------------------------------------
from repro.core import trace  # noqa: E402
from repro.core.intervals import Interval  # noqa: E402
from repro.core.simlist import SimEntry, SimilarityList  # noqa: E402
from repro.core.topk import BoundExchange, RetrievedSegment  # noqa: E402


def _seg(video, segment_id, actual, maximum=20.0):
    return RetrievedSegment(video, segment_id, actual, maximum)


class TestTopKResultMerge:
    def test_disjoint_union_reranks_canonically(self):
        left = TopKResult(
            [_seg("a", 1, 9.0), _seg("a", 2, 3.0)],
            [VideoOutcome("a", OUTCOME_OK)],
        )
        right = TopKResult(
            [_seg("b", 7, 5.0)], [VideoOutcome("b", OUTCOME_OK)]
        )
        merged = TopKResult.merge(left, right)
        assert [(s.video, s.segment_id) for s in merged] == [
            ("a", 1), ("b", 7), ("a", 2),
        ]
        assert sorted(o.video for o in merged.outcomes) == ["a", "b"]
        assert not merged.partial

    def test_truncates_to_k(self):
        left = TopKResult([_seg("a", i, 10.0 - i) for i in range(1, 6)])
        right = TopKResult([_seg("b", i, 9.5 - i) for i in range(1, 6)])
        merged = TopKResult.merge(left, right, k=3)
        assert [(s.video, s.segment_id) for s in merged] == [
            ("a", 1), ("b", 1), ("a", 2),
        ]

    def test_ties_break_by_video_then_segment(self):
        left = TopKResult([_seg("b", 2, 5.0), _seg("b", 1, 5.0)])
        right = TopKResult([_seg("a", 9, 5.0)])
        merged = TopKResult.merge(left, right)
        assert [(s.video, s.segment_id) for s in merged] == [
            ("a", 9), ("b", 1), ("b", 2),
        ]

    def test_duplicate_video_segment_keeps_highest_actual(self):
        # Overlapping corpora (e.g. a retried shard): the same segment
        # reported twice must appear once, at its best score.
        left = TopKResult([_seg("a", 1, 4.0)])
        right = TopKResult([_seg("a", 1, 6.0), _seg("a", 2, 1.0)])
        merged = TopKResult.merge(left, right)
        assert [(s.video, s.segment_id, s.actual) for s in merged] == [
            ("a", 1, 6.0), ("a", 2, 1.0),
        ]

    def test_conflicting_outcomes_most_informative_wins(self):
        error = RuntimeError("boom")
        ok_then_failed = TopKResult.merge(
            TopKResult([], [VideoOutcome("a", OUTCOME_OK)]),
            TopKResult([], [VideoOutcome("a", OUTCOME_FAILED, error)]),
        )
        # ok beats failed regardless of order...
        assert ok_then_failed.outcomes[0].status == OUTCOME_OK
        failed_then_ok = TopKResult.merge(
            TopKResult([], [VideoOutcome("a", OUTCOME_FAILED, error)]),
            TopKResult([], [VideoOutcome("a", OUTCOME_OK)]),
        )
        assert failed_then_ok.outcomes[0].status == OUTCOME_OK
        # ...failed beats pruned (damage stays visible)...
        merged = TopKResult.merge(
            TopKResult([], [VideoOutcome("a", OUTCOME_PRUNED)]),
            TopKResult([], [VideoOutcome("a", OUTCOME_FAILED, error)]),
        )
        assert merged.outcomes[0].status == OUTCOME_FAILED
        assert merged.outcomes[0].error is error
        assert merged.partial
        # ...and equal ranks keep the first-seen outcome.
        first = VideoOutcome("a", OUTCOME_FAILED, RuntimeError("first"))
        second = VideoOutcome("a", OUTCOME_TIMED_OUT, RuntimeError("second"))
        merged = TopKResult.merge(
            TopKResult([], [first]), TopKResult([], [second])
        )
        assert merged.outcomes[0] is first

    def test_partial_recomputed_from_merged_outcomes(self):
        healthy = TopKResult([], [VideoOutcome("a", OUTCOME_OK)])
        degraded = TopKResult(
            [],
            [VideoOutcome("b", OUTCOME_TIMED_OUT, TimeoutError())],
            partial=True,
        )
        assert not TopKResult.merge(healthy, healthy).partial
        assert TopKResult.merge(healthy, degraded).partial

    def test_profile_keeps_first_span(self):
        with trace.recording() as recorder:
            with recorder.span(trace.KIND_QUERY, "q") as span:
                pass
        first = TopKResult([], profile=span)
        second = TopKResult([])
        assert TopKResult.merge(second, first).profile is span
        assert TopKResult.merge(first, second).profile is span

    def test_empty_merge(self):
        merged = TopKResult.merge()
        assert merged == []
        assert not merged.outcomes
        assert not merged.partial


class TestBoundExchange:
    def test_no_threshold_before_k_published(self):
        exchange = BoundExchange(3)
        assert exchange.threshold() is None
        exchange.publish(
            SimilarityList.from_raw([SimEntry(Interval(1, 2), 4.0)], 20.0)
        )
        # Only 2 candidate values so far — below k, still no threshold.
        assert exchange.threshold() is None

    def test_threshold_is_kth_best(self):
        exchange = BoundExchange(2)
        entries = [
            SimEntry(Interval(1, 1), 5.0),
            SimEntry(Interval(2, 2), 9.0),
            SimEntry(Interval(3, 3), 7.0),
        ]
        exchange.publish(SimilarityList.from_raw(entries, 20.0))
        assert exchange.threshold() == pytest.approx(7.0)

    def test_runs_count_per_segment(self):
        # A run of 4 segments at one value is 4 candidate answers.
        exchange = BoundExchange(3)
        exchange.publish(
            SimilarityList.from_raw([SimEntry(Interval(1, 4), 6.0)], 20.0)
        )
        assert exchange.threshold() == pytest.approx(6.0)

    def test_threshold_only_improves(self):
        exchange = BoundExchange(1)
        exchange.publish(
            SimilarityList.from_raw([SimEntry(Interval(1, 1), 3.0)], 20.0)
        )
        exchange.publish(
            SimilarityList.from_raw([SimEntry(Interval(1, 1), 1.0)], 20.0)
        )
        assert exchange.threshold() == pytest.approx(3.0)
        exchange.publish(
            SimilarityList.from_raw([SimEntry(Interval(1, 1), 8.0)], 20.0)
        )
        assert exchange.threshold() == pytest.approx(8.0)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundExchange(0)
