"""Tests for the evaluation-plan renderer."""

import pytest

from repro.core.explain import explain
from repro.htl import parse


class TestExplain:
    def test_query1_plan(self):
        plan = explain(
            parse("atomic('Man-Woman') and eventually atomic('Moving-Train')")
        )
        assert "class: TYPE1" in plan
        assert "AND-merge" in plan
        assert "EVENTUALLY suffix-max scan" in plan
        assert "atomic 'Man-Woman'" in plan
        assert "atomic 'Moving-Train'" in plan

    def test_until_plan(self):
        plan = explain(parse("$P1 until $P2"))
        assert "UNTIL backward merge" in plan
        assert "threshold" in plan

    def test_exists_and_join_vars(self):
        plan = explain(
            parse(
                "exists x . (present(x) and type(x) = 'train') "
                "and eventually present(x)"
            )
        )
        assert "∃-projection over x" in plan
        assert "join on x" in plan
        assert "object vars x" in plan

    def test_freeze_plan(self):
        plan = explain(
            parse("exists z . [h := height(z)] eventually height(z) > h")
        )
        assert "FREEZE join [h := height(z)]" in plan
        assert "attr ranges h" in plan

    def test_level_descent(self):
        plan = explain(parse("at_frame_level(next true)"))
        assert "descend to 'frame' level" in plan
        plan = explain(parse("at_level(3, next true)"))
        assert "descend to level 3" in plan
        plan = explain(parse("at_next_level(next true)"))
        assert "descend one level" in plan

    def test_extension_operators_marked(self):
        plan = explain(parse("(eventually $P1) or always $P2"))
        assert "ALWAYS suffix-min scan (extension)" in plan
        assert "OR-merge (pointwise max; extension)" in plan

    def test_or_inside_atom_stays_in_picture_system(self):
        plan = explain(parse("always (kind() = 'a' or kind() = 'b')"))
        assert "OR-merge" not in plan
        assert "picture system" in plan

    def test_mixed_atomic_conjunction_split(self):
        plan = explain(parse("next (atomic('P') and kind() = 'a')"))
        assert "atomic 'P'" in plan
        assert "picture system" in plan

    def test_cross_join_noted(self):
        plan = explain(
            parse(
                "(exists x . eventually present(x)) "
                "and (exists y . eventually present(y))"
            )
        )
        assert "cross join" in plan

    def test_plan_indentation_reflects_nesting(self):
        plan = explain(parse("eventually next $P1"))
        lines = plan.splitlines()
        eventually_line = next(l for l in lines if "EVENTUALLY" in l)
        next_line = next(l for l in lines if "NEXT" in l)
        atom_line = next(l for l in lines if "atomic 'P1'" in l)
        def indent(line):
            return len(line) - len(line.lstrip())
        assert indent(eventually_line) < indent(next_line) < indent(atom_line)


def _walk_plan_tree(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk_plan_tree(child)


class TestCLIExplain:
    def test_cli_explain(self, capsys):
        from repro.cli import main

        assert main(["explain", "eventually $P1"]) == 0
        out = capsys.readouterr().out
        assert "plan for:" in out

    def test_cli_explain_optimize(self, capsys):
        from repro.cli import main

        assert main(
            ["explain", "--optimize", "eventually eventually $P1"]
        ) == 0
        out = capsys.readouterr().out
        assert "rewritten:" in out

    def test_cli_explain_plan(self, capsys):
        from repro.cli import main

        assert main(
            [
                "explain",
                "--plan",
                "exists x . (present(x) and (eventually type(x) = 'person'))",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "plan for" in out
        assert "strategy=" in out
        assert "planner:" in out

    def test_cli_explain_plan_json(self, capsys):
        import json

        from repro.cli import main

        assert main(
            [
                "explain",
                "--plan",
                "--json",
                "--dataset",
                "casablanca",
                "exists x . (present(x) and (eventually type(x) = 'person'))",
            ]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "tree" in doc
        assert doc["estimated_cost"] > 0
        strategies = [
            node.get("strategy")
            for node in _walk_plan_tree(doc["tree"])
            if "strategy" in node
        ]
        assert strategies and set(strategies) <= {"indexed", "naive"}
