"""Tests for exact-match (boolean) semantics, and its bridge to similarity.

Key property (paper §2.5: "for an exact match a and m will be equal"):
a segment exactly satisfying a negation-free formula receives full
similarity under the definitional semantics, when every metadata fact has
confidence 1.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.exact import ExactContext, satisfies, satisfying_positions
from repro.core.semantics import ReferenceContext, reference_value
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.errors import UnsupportedFormulaError
from repro.htl import ast, parse
from repro.model.hierarchy import flat_video
from repro.model.metadata import Relationship, SegmentMetadata, make_object

from tests.integration.strategies import flat_videos, type1_formulas


def demo_video():
    segments = [
        SegmentMetadata(
            objects=[make_object("jw", "person", name="John Wayne")],
            relationships=[Relationship("holds_gun", ("jw",))],
        ),
        SegmentMetadata(
            objects=[
                make_object("jw", "person", name="John Wayne"),
                make_object("b1", "person"),
            ],
            relationships=[Relationship("fires_at", ("jw", "b1"))],
        ),
        SegmentMetadata(
            objects=[make_object("b1", "person")],
            relationships=[Relationship("on_floor", ("b1",))],
        ),
    ]
    return flat_video("exact-demo", segments)


def exact_context():
    video = demo_video()
    return ExactContext(
        nodes=video.nodes_at_level(2),
        video=video,
        universe=video.object_universe(),
    )


class TestBooleanConnectives:
    def test_atoms(self):
        ctx = exact_context()
        assert satisfies(parse("holds_gun(x)"), ctx, 1, {"x": "jw"})
        assert not satisfies(parse("holds_gun(x)"), ctx, 2, {"x": "jw"})

    def test_negation(self):
        ctx = exact_context()
        formula = parse("exists x . not present(x)")
        # b1 is absent from segment 1.
        assert satisfies(formula, ctx, 1)

    def test_negated_temporal_supported_exactly(self):
        """Exact semantics covers the *full* language, negation included."""
        ctx = exact_context()
        formula = parse("exists y . not eventually on_floor(y)")
        # jw never ends up on the floor.
        assert satisfies(formula, ctx, 1)

    def test_disjunction(self):
        ctx = exact_context()
        formula = parse("exists x . on_floor(x) or holds_gun(x)")
        assert satisfies(formula, ctx, 1)
        assert satisfies(formula, ctx, 3)
        assert not satisfies(formula, ctx, 2)


class TestTemporal:
    def test_formula_b_shape(self):
        ctx = exact_context()
        formula = parse(
            "exists x, y . holds_gun(x) "
            "and eventually (fires_at(x, y) and eventually on_floor(y))"
        )
        assert satisfying_positions(formula, ctx) == [1]

    def test_until(self):
        ctx = exact_context()
        formula = parse("(exists x . present(x)) until on_floor(b)")
        # 'b' free -> bind through exists instead:
        formula = parse(
            "exists b . (exists x . present(x)) until on_floor(b)"
        )
        assert satisfies(formula, ctx, 1)

    def test_next(self):
        ctx = exact_context()
        formula = parse("exists x, y . next fires_at(x, y)")
        assert satisfying_positions(formula, ctx) == [1]

    def test_always(self):
        ctx = exact_context()
        formula = parse("always exists x . present(x)")
        assert satisfying_positions(formula, ctx) == [1, 2, 3]


class TestAtomicRefs:
    def test_exact_atomic_means_full_similarity(self):
        video = demo_video()
        registered = SimilarityList.from_entries(
            [((1, 1), 5.0), ((2, 2), 3.0)], 5.0
        )
        ctx = ExactContext(
            nodes=video.nodes_at_level(2),
            video=video,
            atomics={"P": registered},
        )
        formula = parse("atomic('P')")
        assert satisfies(formula, ctx, 1)
        assert not satisfies(formula, ctx, 2)  # partial, not exact

    def test_unregistered_atomic_raises(self):
        ctx = exact_context()
        with pytest.raises(UnsupportedFormulaError):
            satisfies(parse("atomic('ghost')"), ctx, 1)


class TestExactImpliesFullSimilarity:
    @given(type1_formulas(), flat_videos(full_confidence=True))
    @settings(
        max_examples=100,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_exact_match_gets_maximum(self, formula, video):
        if any(isinstance(node, ast.Not) for node in formula.walk()):
            return  # negation scores (m - a); the implication targets
            # negation-free formulas
        nodes = video.nodes_at_level(2)
        exact_ctx = ExactContext(
            nodes=nodes, video=video, universe=video.object_universe()
        )
        ref_ctx = ReferenceContext(
            nodes=nodes,
            video=video,
            universe=video.object_universe(),
            threshold=1e-6,  # exact until: any positive g counts... but
            # threshold only matters when g is partial; with an exact
            # match g is full, so any threshold <= 1 agrees.
        )
        for position in range(1, len(nodes) + 1):
            if satisfies(formula, exact_ctx, position):
                actual, maximum = reference_value(
                    formula, ref_ctx, position, {}
                )
                assert actual >= maximum - SIM_EPS, (
                    f"exact match at {position} but similarity "
                    f"{actual}/{maximum}"
                )
