"""Unit tests for closed segment-id intervals."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.intervals import Interval, coalesce, covers, total_length
from repro.errors import InvalidIntervalError


class TestConstruction:
    def test_single_point(self):
        interval = Interval(5, 5)
        assert len(interval) == 1
        assert 5 in interval

    def test_reversed_bounds_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(10, 5)

    def test_zero_id_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(0, 5)

    def test_non_int_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(1.5, 3)  # type: ignore[arg-type]

    def test_iteration_yields_all_ids(self):
        assert list(Interval(3, 6)) == [3, 4, 5, 6]


class TestOperations:
    def test_intersection_overlap(self):
        assert Interval(1, 10).intersection(Interval(5, 20)) == Interval(5, 10)

    def test_intersection_disjoint(self):
        assert Interval(1, 4).intersection(Interval(6, 9)) is None

    def test_intersects_touching_point(self):
        assert Interval(1, 5).intersects(Interval(5, 9))

    def test_adjacent_detection(self):
        assert Interval(1, 4).adjacent_to(Interval(5, 9))
        assert Interval(5, 9).adjacent_to(Interval(1, 4))
        assert not Interval(1, 4).adjacent_to(Interval(6, 9))
        assert not Interval(1, 5).adjacent_to(Interval(5, 9))

    def test_shift_left(self):
        assert Interval(2, 5).shift(-1) == Interval(1, 4)

    def test_shift_clamps_at_axis_start(self):
        assert Interval(1, 3).shift(-1) == Interval(1, 2)

    def test_shift_off_axis_returns_none(self):
        assert Interval(1, 1).shift(-1) is None

    def test_clamp_inside(self):
        assert Interval(1, 10).clamp(3, 7) == Interval(3, 7)

    def test_clamp_empty(self):
        assert Interval(1, 2).clamp(5, 9) is None


class TestCoalesce:
    def test_merges_adjacent(self):
        assert coalesce([Interval(1, 4), Interval(5, 9)]) == [Interval(1, 9)]

    def test_merges_overlapping_out_of_order(self):
        merged = coalesce([Interval(8, 12), Interval(1, 9)])
        assert merged == [Interval(1, 12)]

    def test_keeps_gaps(self):
        merged = coalesce([Interval(1, 3), Interval(5, 7)])
        assert merged == [Interval(1, 3), Interval(5, 7)]

    def test_empty(self):
        assert coalesce([]) == []

    @given(
        st.lists(
            st.tuples(st.integers(1, 60), st.integers(0, 8)).map(
                lambda pair: Interval(pair[0], pair[0] + pair[1])
            ),
            max_size=12,
        )
    )
    def test_coalesce_preserves_coverage(self, intervals):
        merged = coalesce(intervals)
        original_ids = {i for interval in intervals for i in interval}
        merged_ids = {i for interval in merged for i in interval}
        assert original_ids == merged_ids
        # Output is sorted, disjoint, non-adjacent.
        for first, second in zip(merged, merged[1:]):
            assert first.end + 1 < second.begin


class TestHelpers:
    def test_total_length(self):
        assert total_length([Interval(1, 3), Interval(10, 10)]) == 4

    def test_covers(self):
        run = [Interval(2, 4), Interval(8, 9)]
        assert covers(run, 3)
        assert covers(run, 8)
        assert not covers(run, 5)
        assert not covers(run, 1)
        assert not covers(run, 10)
