"""Edge-case tests for value tables and the freeze join (paper §3.3)."""

import pytest

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.intervals import Interval
from repro.core.simlist import SimilarityList
from repro.core.value_tables import build_value_table, restrict_to_intervals
from repro.htl import ast, parse
from repro.model.hierarchy import flat_video
from repro.model.metadata import Fact, SegmentMetadata, make_object


class TestValueTableConstruction:
    def test_multi_variable_function(self):
        """q with two object variables produces rows per pair."""
        segments = [
            SegmentMetadata(
                objects=[
                    make_object("a", "t", dist=5),
                    make_object("b", "t", dist=9),
                ]
            ),
        ]
        func = ast.AttrFunc("dist", (ast.ObjectVar("x"),))
        table = build_value_table(func, segments)
        values = {(row.objects, row.value) for row in table.rows}
        assert (("a",), 5) in values
        assert (("b",), 9) in values

    def test_interleaved_values_split_intervals(self):
        def seg(height):
            return SegmentMetadata(objects=[make_object("p", "t", h=height)])

        segments = [seg(1), seg(2), seg(1), seg(1)]
        func = ast.AttrFunc("h", (ast.ObjectVar("x"),))
        table = build_value_table(func, segments)
        by_value = {row.value: row.intervals for row in table.rows}
        assert by_value[1] == (Interval(1, 1), Interval(3, 4))
        assert by_value[2] == (Interval(2, 2),)

    def test_undefined_everywhere(self):
        segments = [SegmentMetadata(), SegmentMetadata()]
        func = ast.AttrFunc("h", (ast.ObjectVar("x"),))
        table = build_value_table(func, segments)
        assert len(table) == 0

    def test_string_values(self):
        segments = [
            SegmentMetadata(attributes={"mood": "dark"}),
            SegmentMetadata(attributes={"mood": "light"}),
        ]
        func = ast.AttrFunc("mood", ())
        table = build_value_table(func, segments)
        assert {row.value for row in table.rows} == {"dark", "light"}


class TestRestrictToIntervals:
    def test_unsorted_interval_input(self):
        sim = SimilarityList.from_entries([((1, 10), 1.0)], 2.0)
        cut = restrict_to_intervals(
            sim, [Interval(8, 9), Interval(2, 3)]
        )
        assert sorted(cut.to_segment_values()) == [2, 3, 8, 9]

    def test_empty_intervals(self):
        sim = SimilarityList.from_entries([((1, 10), 1.0)], 2.0)
        assert not restrict_to_intervals(sim, [])

    def test_no_overlap(self):
        sim = SimilarityList.from_entries([((1, 3), 1.0)], 2.0)
        assert not restrict_to_intervals(sim, [Interval(7, 9)])


class TestFreezeEndToEnd:
    """Freeze behaviours through the whole engine, both join modes."""

    def video(self):
        def seg(height=None, extra=()):
            objects = []
            if height is not None:
                objects.append(make_object("p", "plane", height=height))
            objects.extend(extra)
            return SegmentMetadata(objects=objects)

        return flat_video(
            "fv",
            [
                seg(100),
                seg(500),
                seg(None),  # plane absent: capture impossible
                seg(200),
                seg(300),
            ],
        )

    @pytest.mark.parametrize("mode", ["inner", "outer"])
    def test_strictly_rising_pattern(self, mode):
        engine = RetrievalEngine(EngineConfig(join_mode=mode))
        formula = parse(
            "exists z . [h := height(z)] "
            "(present(z) and eventually height(z) > h)"
        )
        result = engine.evaluate_video(formula, self.video())
        # From 1 (100): 500 later -> exact (2/2), both modes.
        assert result.actual_at(1) == pytest.approx(2.0)
        # From 4 (200): 300 later -> exact, both modes.
        assert result.actual_at(4) == pytest.approx(2.0)
        # From 3: no capture possible, both modes.
        assert result.actual_at(3) == 0.0
        # From 5 (300): the comparison fails afterwards, but h=300 is
        # satisfied at *other* segments (500 > 300 at segment 2), so the
        # comparison atom has a range row covering the captured value and
        # the presence score passes through in both modes.
        assert result.actual_at(5) == pytest.approx(1.0)
        # From 2 (500): no segment anywhere satisfies height > 500, so no
        # range row covers the captured value.  Definitional (outer)
        # semantics keep the presence score; the paper's inner join loses
        # the evaluation entirely (DESIGN.md §5, decision 3).
        expected_partial = 1.0 if mode == "outer" else 0.0
        assert result.actual_at(2) == pytest.approx(expected_partial)

    def test_equality_capture(self):
        engine = RetrievalEngine()
        formula = parse(
            "exists z . [h := height(z)] "
            "next eventually height(z) = h"
        )
        result = engine.evaluate_video(formula, self.video())
        # No height repeats later, anywhere.
        assert not result

    def test_nested_freeze(self):
        """Two captures: a later height strictly between two marks."""
        engine = RetrievalEngine()
        formula = parse(
            "exists z . [lo := height(z)] next [hi := height(z)] "
            "eventually (height(z) > lo and height(z) < hi)"
        )
        result = engine.evaluate_video(formula, self.video())
        # From 1: lo=100 (seg1), hi=500 (seg2); later heights 200, 300
        # both in (100, 500) -> both conditions satisfied -> 2 of 2.
        assert result.actual_at(1) == pytest.approx(2.0)
        # From 4: lo=200, hi=300; at segment 5 the height 300 satisfies
        # > lo but not < hi -> partial 1 of 2.
        assert result.actual_at(4) == pytest.approx(1.0)


class TestRestrictCanonical:
    def test_adjacent_capture_intervals_coalesce(self):
        """Regression: adjacent capture intervals over one entry must give
        a canonical (coalesced) list, or == misreports inequality."""
        base = SimilarityList.from_entries([((1, 10), 5.0)], 8.0)
        cut = restrict_to_intervals(base, [Interval(2, 3), Interval(4, 6)])
        assert cut == SimilarityList.from_entries([((2, 6), 5.0)], 8.0)
        assert len(cut) == 1
