"""Direct unit tests of the reference (definitional) evaluator.

The oracle is itself load-bearing — the engine is validated against it —
so its own behaviour on hand-worked cases is pinned here.
"""

import pytest

from repro.core.semantics import (
    ReferenceContext,
    maximum_similarity,
    reference_list,
    reference_value,
    value_at,
)
from repro.core.simlist import SimilarityList
from repro.errors import UnsupportedFormulaError
from repro.htl import ast, parse
from repro.model.hierarchy import flat_video
from repro.model.metadata import (
    Fact,
    Relationship,
    SegmentMetadata,
    make_object,
)


def video_fixture():
    """Four segments: plane rising, then gone, then back lower."""
    def plane(height):
        return make_object("p1", "airplane", height=height)

    segments = [
        SegmentMetadata(objects=[plane(100)], attributes={"kind": "a"}),
        SegmentMetadata(objects=[plane(500)]),
        SegmentMetadata(attributes={"kind": "a"}),
        SegmentMetadata(objects=[plane(200)]),
    ]
    return flat_video("oracle-demo", segments)


def context():
    video = video_fixture()
    return ReferenceContext(
        nodes=video.nodes_at_level(2),
        video=video,
        universe=video.object_universe(),
    )


class TestBasics:
    def test_atom_value(self):
        ctx = context()
        formula = parse("kind() = 'a'")
        assert reference_value(formula, ctx, 1, {}) == (1.0, 1.0)
        assert reference_value(formula, ctx, 2, {}) == (0.0, 1.0)

    def test_conjunction_sums(self):
        ctx = context()
        formula = parse("kind() = 'a' and exists x . present(x)")
        actual, maximum = reference_value(formula, ctx, 1, {})
        assert (actual, maximum) == (2.0, 2.0)
        # Segment 3 has kind but no objects.
        actual, __ = reference_value(formula, ctx, 3, {})
        assert actual == 1.0

    def test_next_at_last_segment(self):
        ctx = context()
        formula = parse("next kind() = 'a'")
        assert reference_value(formula, ctx, 4, {})[0] == 0.0
        assert reference_value(formula, ctx, 2, {})[0] == 1.0

    def test_eventually(self):
        ctx = context()
        formula = parse("eventually kind() = 'a'")
        assert reference_value(formula, ctx, 1, {})[0] == 1.0
        assert reference_value(formula, ctx, 4, {})[0] == 0.0

    def test_always(self):
        ctx = context()
        formula = parse("always exists x . present(x)")
        # Segment 3 has no objects, so no suffix from 1..3 is all-present.
        assert reference_value(formula, ctx, 1, {})[0] == 0.0
        assert reference_value(formula, ctx, 4, {})[0] == 1.0

    def test_disjunction_takes_best(self):
        ctx = context()
        formula = parse("kind() = 'a' or eventually kind() = 'a'")
        assert reference_value(formula, ctx, 2, {})[0] == 1.0


class TestUntilThreshold:
    def test_threshold_blocks_weak_left(self):
        video = video_fixture()
        ctx = ReferenceContext(
            nodes=video.nodes_at_level(2),
            video=video,
            universe=video.object_universe(),
            threshold=0.9,
        )
        # left: presence (full at 1,2, absent at 3); right: kind at 3.
        formula = parse("(exists x . present(x)) until kind() = 'a'")
        # From 1: kind fails at 1 and 2, left holds -> witness at 3: but
        # left need only hold up to (not incl.) 3. Reachable.
        assert reference_value(formula, ctx, 1, {})[0] == 1.0
        # From 4: no kind at or after 4.
        assert reference_value(formula, ctx, 4, {})[0] == 0.0


class TestFreeze:
    def test_capture_and_compare(self):
        ctx = context()
        formula = parse(
            "exists z . [h := height(z)] eventually height(z) > h"
        ).sub  # strip exists; bind manually
        actual, __ = reference_value(formula, ctx, 1, {"z": "p1"})
        assert actual == 1.0  # 100 then 500
        actual, __ = reference_value(formula, ctx, 2, {"z": "p1"})
        assert actual == 0.0  # 500 never exceeded later

    def test_capture_undefined_fails(self):
        ctx = context()
        formula = parse(
            "exists z . [h := height(z)] eventually height(z) > h"
        ).sub
        # Segment 3 has no plane: capturing height is impossible.
        assert reference_value(formula, ctx, 3, {"z": "p1"})[0] == 0.0


class TestAtomics:
    def test_registered_atomic(self):
        video = video_fixture()
        registered = SimilarityList.from_entries([((2, 3), 4.0)], 5.0)
        ctx = ReferenceContext(
            nodes=video.nodes_at_level(2),
            video=video,
            atomics=lambda name, level: registered if name == "P" else None,
        )
        formula = parse("atomic('P')")
        assert reference_value(formula, ctx, 2, {}) == (4.0, 5.0)
        assert maximum_similarity(formula, ctx) == 5.0

    def test_unregistered_atomic_raises(self):
        ctx = context()
        with pytest.raises(UnsupportedFormulaError):
            reference_value(parse("atomic('ghost')"), ctx, 1, {})

    def test_atomic_under_disjunction_rejected(self):
        video = video_fixture()
        registered = SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        ctx = ReferenceContext(
            nodes=video.nodes_at_level(2),
            video=video,
            atomics=lambda name, level: registered,
        )
        formula = parse("exists x . atomic('P') or present(x)")
        with pytest.raises(UnsupportedFormulaError):
            reference_value(formula, ctx, 1, {})


class TestListConstruction:
    def test_reference_list(self):
        ctx = context()
        sim = reference_list(parse("kind() = 'a'"), ctx)
        assert sim.to_segment_values() == {1: 1.0, 3: 1.0}

    def test_value_at_closed(self):
        ctx = context()
        value = value_at(parse("eventually kind() = 'a'"), ctx, 2)
        assert value.actual == 1.0
        assert value.maximum == 1.0

    def test_negated_temporal_rejected(self):
        ctx = context()
        with pytest.raises(UnsupportedFormulaError):
            reference_list(parse("not eventually kind() = 'a'"), ctx)


class TestLevelOperators:
    def test_at_next_level(self):
        from repro.model.hierarchy import Video, VideoNode

        root = VideoNode()
        scene = root.add_child(
            VideoNode(metadata=SegmentMetadata(attributes={"tag": "s"}))
        )
        scene.add_child(
            VideoNode(metadata=SegmentMetadata(attributes={"tag": "first"}))
        )
        scene.add_child(
            VideoNode(metadata=SegmentMetadata(attributes={"tag": "second"}))
        )
        video = Video(name="mini", root=root)
        ctx = ReferenceContext(
            nodes=video.nodes_at_level(2), video=video, level=2
        )
        hit = parse("at_next_level(tag() = 'first')")
        miss = parse("at_next_level(tag() = 'second')")
        assert reference_value(hit, ctx, 1, {})[0] == 1.0
        assert reference_value(miss, ctx, 1, {})[0] == 0.0

    def test_no_descendants_scores_zero(self):
        video = video_fixture()  # two levels; shots have no children
        ctx = ReferenceContext(
            nodes=video.nodes_at_level(2), video=video, level=2
        )
        formula = parse("at_next_level(true)")
        assert reference_value(formula, ctx, 1, {})[0] == 0.0
