"""Tests for similarity tables: joins, projection, freeze machinery."""

import pytest

from repro.core.ops import and_lists, until_lists
from repro.core.ranges import FULL, Range, interval
from repro.core.simlist import SimilarityList
from repro.core.tables import INNER, OUTER, SimilarityTable, TableRow
from repro.core.value_tables import (
    ValueRow,
    ValueTable,
    build_value_table,
    freeze_join,
    restrict_to_intervals,
)
from repro.core.intervals import Interval
from repro.errors import HTLTypeError
from repro.htl import ast
from repro.model.metadata import SegmentMetadata, make_object


def sim(entries, maximum):
    return SimilarityList.from_entries(entries, maximum)


def table(object_vars, rows, maximum, attr_vars=()):
    built = [
        TableRow(tuple(objects), tuple(ranges), sim_list)
        for objects, ranges, sim_list in rows
    ]
    return SimilarityTable(object_vars, attr_vars, built, maximum)


class TestBasics:
    def test_closed(self):
        closed = SimilarityTable.closed(sim([((1, 3), 1.0)], 2.0))
        assert closed.is_closed()
        assert len(closed) == 1
        assert closed.closed_list().actual_at(2) == 1.0

    def test_closed_empty_list(self):
        closed = SimilarityTable.closed(SimilarityList.empty(2.0))
        # The row survives (joins must see the evaluation), the list is empty.
        assert len(closed) == 1
        assert not closed.closed_list()

    def test_closed_list_requires_no_columns(self):
        open_table = table(("x",), [(("a",), (), sim([((1, 1), 1.0)], 2.0))], 2.0)
        with pytest.raises(HTLTypeError):
            open_table.closed_list()

    def test_row_arity_checked(self):
        with pytest.raises(HTLTypeError):
            table(("x",), [((), (), sim([((1, 1), 1.0)], 2.0))], 2.0)

    def test_map_lists_keeps_structure(self):
        from repro.core.ops import next_list

        t = table(
            ("x",),
            [
                (("a",), (), sim([((2, 4), 1.0)], 2.0)),
                (("b",), (), sim([((1, 1), 1.0)], 2.0)),
            ],
            2.0,
        )
        shifted = t.map_lists(next_list)
        assert shifted.object_vars == ("x",)
        # b's single entry at 1 falls off the axis; its row stays, empty.
        assert len(shifted.rows) == 2
        assert sum(1 for row in shifted.rows if row.sim) == 1


class TestInnerJoin:
    def test_join_on_common_variable(self):
        left = table(
            ("x",),
            [
                (("a",), (), sim([((1, 2), 1.0)], 2.0)),
                (("b",), (), sim([((3, 3), 1.0)], 2.0)),
            ],
            2.0,
        )
        right = table(
            ("x",),
            [(("a",), (), sim([((2, 4), 1.5)], 3.0))],
            3.0,
        )
        joined = left.combine(right, and_lists, mode=INNER)
        assert joined.object_vars == ("x",)
        assert joined.maximum == pytest.approx(5.0)
        assert len(joined.rows) == 1
        assert joined.rows[0].objects == ("a",)
        assert joined.rows[0].sim.actual_at(2) == pytest.approx(2.5)

    def test_cross_product_when_no_common(self):
        left = table(("x",), [(("a",), (), sim([((1, 1), 1.0)], 2.0))], 2.0)
        right = table(
            ("y",),
            [
                (("c",), (), sim([((1, 1), 1.0)], 2.0)),
                (("d",), (), sim([((2, 2), 1.0)], 2.0)),
            ],
            2.0,
        )
        joined = left.combine(right, and_lists, mode=INNER)
        assert joined.object_vars == ("x", "y")
        assert len(joined.rows) == 2

    def test_shared_attr_ranges_intersected(self):
        left = table(
            (),
            [((), (interval(1, 10),), sim([((1, 1), 1.0)], 2.0))],
            2.0,
            attr_vars=("h",),
        )
        right = table(
            (),
            [((), (interval(5, 20),), sim([((1, 1), 1.0)], 2.0))],
            2.0,
            attr_vars=("h",),
        )
        joined = left.combine(right, and_lists, mode=INNER)
        assert joined.rows[0].ranges == (interval(5, 10),)

    def test_disjoint_attr_ranges_drop_row(self):
        left = table(
            (),
            [((), (interval(1, 4),), sim([((1, 1), 1.0)], 2.0))],
            2.0,
            attr_vars=("h",),
        )
        right = table(
            (),
            [((), (interval(6, 9),), sim([((1, 1), 1.0)], 2.0))],
            2.0,
            attr_vars=("h",),
        )
        joined = left.combine(right, and_lists, mode=INNER)
        assert len(joined.rows) == 0

    def test_until_operator_join(self):
        left = table((), [((), (), sim([((1, 10), 2.0)], 2.0))], 2.0)
        right = table((), [((), (), sim([((5, 6), 3.0)], 4.0))], 4.0)

        def op(a, b):
            return until_lists(a, b, 0.5)

        joined = left.combine(right, op, mode=INNER)
        assert joined.maximum == pytest.approx(4.0)
        assert joined.rows[0].sim.actual_at(1) == pytest.approx(3.0)


class TestOuterJoin:
    def test_unmatched_left_row_kept(self):
        left = table(
            ("x",),
            [
                (("a",), (), sim([((1, 2), 1.0)], 2.0)),
                (("b",), (), sim([((3, 3), 1.5)], 2.0)),
            ],
            2.0,
        )
        right = table(("x",), [(("a",), (), sim([((2, 4), 1.5)], 3.0))], 3.0)
        joined = left.combine(right, and_lists, mode=OUTER, universe=("a", "b"))
        by_object = {row.objects[0]: row.sim for row in joined.rows}
        assert by_object["b"].actual_at(3) == pytest.approx(1.5)
        assert by_object["a"].actual_at(2) == pytest.approx(2.5)

    def test_unmatched_right_row_kept(self):
        left = table(("x",), [(("a",), (), sim([((1, 2), 1.0)], 2.0))], 2.0)
        right = table(("x",), [(("c",), (), sim([((5, 5), 2.0)], 3.0))], 3.0)
        joined = left.combine(right, and_lists, mode=OUTER, universe=("a", "c"))
        by_object = {row.objects[0]: row.sim for row in joined.rows}
        assert by_object["c"].actual_at(5) == pytest.approx(2.0)

    def test_missing_side_variables_expanded_over_universe(self):
        left = table(("x",), [(("a",), (), sim([((1, 1), 1.0)], 2.0))], 2.0)
        right = table(("y",), [], 3.0)
        joined = left.combine(right, and_lists, mode=OUTER, universe=("a", "b"))
        assert joined.object_vars == ("x", "y")
        keys = {row.objects for row in joined.rows}
        assert keys == {("a", "a"), ("a", "b")}

    def test_shared_attr_remainders_emitted(self):
        left = table(
            (),
            [((), (interval(1, 10),), sim([((1, 1), 1.0)], 2.0))],
            2.0,
            attr_vars=("h",),
        )
        right = table(
            (),
            [((), (interval(4, 6),), sim([((1, 1), 1.0)], 2.0))],
            2.0,
            attr_vars=("h",),
        )
        joined = left.combine(right, and_lists, mode=OUTER)
        by_range = {row.ranges[0]: row.sim for row in joined.rows}
        assert by_range[interval(4, 6)].actual_at(1) == pytest.approx(2.0)
        assert by_range[interval(1, 3)].actual_at(1) == pytest.approx(1.0)
        assert by_range[interval(7, 10)].actual_at(1) == pytest.approx(1.0)

    def test_until_right_only_row_survives_outer(self):
        """until(∅, h) = h at the witness itself - the right-only rows
        matter for until, which is why the outer join covers both sides."""
        left = table(("x",), [], 2.0)
        right = table(("x",), [(("c",), (), sim([((5, 5), 2.0)], 3.0))], 3.0)

        def op(a, b):
            return until_lists(a, b, 0.5)

        joined = left.combine(right, op, mode=OUTER, universe=("c",))
        assert len(joined.rows) == 1
        assert joined.rows[0].sim.actual_at(5) == pytest.approx(2.0)


class TestProjectExists:
    def test_projection_max_merges(self):
        t = table(
            ("x",),
            [
                (("a",), (), sim([((1, 4), 1.0)], 2.0)),
                (("b",), (), sim([((3, 6), 1.5)], 2.0)),
            ],
            2.0,
        )
        projected = t.project_exists(["x"])
        assert projected.is_closed()
        merged = projected.closed_list()
        assert merged.actual_at(2) == pytest.approx(1.0)
        assert merged.actual_at(3) == pytest.approx(1.5)
        assert merged.actual_at(6) == pytest.approx(1.5)

    def test_partial_projection(self):
        t = table(
            ("x", "y"),
            [
                (("a", "c"), (), sim([((1, 1), 1.0)], 2.0)),
                (("b", "c"), (), sim([((1, 1), 1.5)], 2.0)),
                (("a", "d"), (), sim([((2, 2), 1.0)], 2.0)),
            ],
            2.0,
        )
        projected = t.project_exists(["x"])
        assert projected.object_vars == ("y",)
        by_object = {row.objects[0]: row.sim for row in projected.rows}
        assert by_object["c"].actual_at(1) == pytest.approx(1.5)
        assert by_object["d"].actual_at(2) == pytest.approx(1.0)

    def test_unknown_variable_rejected(self):
        t = table(("x",), [], 2.0)
        with pytest.raises(HTLTypeError):
            t.project_exists(["zz"])

    def test_overlapping_ranges_refined(self):
        t = SimilarityTable(
            ("x",),
            ("h",),
            [
                TableRow(("a",), (interval(1, 10),), sim([((1, 1), 1.0)], 2.0)),
                TableRow(("b",), (interval(5, 20),), sim([((1, 1), 1.5)], 2.0)),
            ],
            2.0,
        )
        projected = t.project_exists(["x"])
        by_range = {row.ranges[0]: row.sim for row in projected.rows}
        assert by_range[interval(1, 4)].actual_at(1) == pytest.approx(1.0)
        assert by_range[interval(5, 10)].actual_at(1) == pytest.approx(1.5)
        assert by_range[interval(11, 20)].actual_at(1) == pytest.approx(1.5)


class TestValueTables:
    def segments(self):
        return [
            SegmentMetadata(objects=[make_object("p", "plane", height=100)]),
            SegmentMetadata(objects=[make_object("p", "plane", height=100)]),
            SegmentMetadata(objects=[make_object("p", "plane", height=300)]),
            SegmentMetadata(objects=[make_object("q", "plane", height=50)]),
        ]

    def test_build_value_table(self):
        func = ast.AttrFunc("height", (ast.ObjectVar("x"),))
        value_table = build_value_table(func, self.segments())
        assert value_table.object_vars == ("x",)
        rows = {
            (row.objects, row.value): row.intervals for row in value_table.rows
        }
        assert rows[(("p",), 100)] == (Interval(1, 2),)
        assert rows[(("p",), 300)] == (Interval(3, 3),)
        assert rows[(("q",), 50)] == (Interval(4, 4),)

    def test_segment_attribute_value_table(self):
        segments = [
            SegmentMetadata(attributes={"kind": "a"}),
            SegmentMetadata(attributes={"kind": "a"}),
            SegmentMetadata(),
        ]
        func = ast.AttrFunc("kind", ())
        value_table = build_value_table(func, segments)
        assert len(value_table.rows) == 1
        assert value_table.rows[0].value == "a"
        assert value_table.rows[0].intervals == (Interval(1, 2),)

    def test_capture_of_attr_var_expression_rejected(self):
        func = ast.AttrFunc("height", (ast.AttrVar("h"),))
        with pytest.raises(HTLTypeError):
            build_value_table(func, [])

    def test_restrict_to_intervals(self):
        base = sim([((1, 10), 1.0), ((20, 30), 2.0)], 3.0)
        cut = restrict_to_intervals(base, [Interval(5, 22), Interval(28, 40)])
        assert cut.to_segment_values() == {
            **{i: 1.0 for i in range(5, 11)},
            **{i: 2.0 for i in range(20, 23)},
            **{i: 2.0 for i in range(28, 31)},
        }


class TestFreezeJoin:
    def test_join_drops_frozen_column(self):
        body = SimilarityTable(
            ("x",),
            ("h",),
            [
                TableRow(("p",), (interval(None, 99),), sim([((1, 3), 1.0)], 2.0)),
                TableRow(("p",), (interval(100, 299),), sim([((3, 3), 1.0)], 2.0)),
            ],
            2.0,
        )
        value_table = ValueTable(
            ("x",),
            [
                ValueRow(("p",), 100, (Interval(1, 2),)),
                ValueRow(("p",), 300, (Interval(3, 3),)),
            ],
        )
        joined = freeze_join(body, "h", value_table)
        assert joined.attr_vars == ()
        assert joined.object_vars == ("x",)
        # Captured value 100 (segments 1-2) matches the [100,299] row whose
        # list covers segment 3 only - no intersection; and matches the
        # (-inf,99] row not at all. Captured 300 (segment 3) matches the
        # [100,299]... no - 300 > 299. So only 100∈[100,299] joins, with
        # list {3} ∩ segments{1,2} = ∅.
        assert len(joined.rows) == 0

    def test_join_intersects_capture_intervals(self):
        body = SimilarityTable(
            ("x",),
            ("h",),
            [TableRow(("p",), (interval(None, 200),), sim([((1, 5), 1.0)], 2.0))],
            2.0,
        )
        value_table = ValueTable(
            ("x",), [ValueRow(("p",), 150, (Interval(2, 3),))]
        )
        joined = freeze_join(body, "h", value_table)
        assert len(joined.rows) == 1
        assert joined.rows[0].sim.to_segment_values() == {2: 1.0, 3: 1.0}

    def test_unconstrained_freeze_keeps_defined_segments(self):
        body = SimilarityTable(
            ("x",),
            (),
            [TableRow(("p",), (), sim([((1, 5), 1.0)], 2.0))],
            2.0,
        )
        value_table = ValueTable(
            ("x",), [ValueRow(("p",), 100, (Interval(2, 4),))]
        )
        joined = freeze_join(body, "h", value_table)
        assert joined.rows[0].sim.to_segment_values() == {2: 1.0, 3: 1.0, 4: 1.0}
