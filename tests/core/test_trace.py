"""Per-query tracing and the metrics registry (repro.core.trace).

Covers the observability layer of DESIGN.md §10 in four tiers:

* registry unit semantics — nested stages, mid-block toggles, histogram
  percentiles, atomic drain;
* concurrency — N threads hammering spans + counters + histograms while
  the registry is drained/reset, with exact conservation asserted;
* span trees — parentage (including across a thread pool via
  capture/adopt), events, counter deltas, error recording, export;
* integration — a traced parallel top-k whose per-stage span rollup
  reconciles with ``instrument.totals()``, and a chaos run whose
  fault-injected fallbacks surface as span events with correct
  parentage.
"""

import json
import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import instrument, resilience, trace
from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.testing.faults import FaultSpec, inject


@pytest.fixture(autouse=True)
def clean_registry():
    instrument.disable()
    instrument.reset()
    yield
    instrument.disable()
    instrument.reset()


def tiny_database(n_videos=4, n_segments=10, seed=7):
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(n_videos):
        segments = []
        for index in range(n_segments):
            objects = []
            if rng.random() < 0.5:
                objects.append(make_object(f"t{index}", "train"))
            if rng.random() < 0.4:
                objects.append(make_object(f"p{index}", "person"))
            segments.append(SegmentMetadata(objects=objects))
        database.add(flat_video(f"v{position}", segments))
    return database


QUERY = (
    "(exists x . present(x) and type(x) = 'train') "
    "and eventually (exists y . present(y))"
)


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------
class TestStageSemantics:
    def test_nested_same_name_counts_once(self):
        instrument.enable()
        with instrument.stage("s"):
            with instrument.stage("s"):
                with instrument.stage("s"):
                    pass
        totals = instrument.totals()
        assert totals["s"].calls == 1

    def test_nested_different_names_both_count(self):
        instrument.enable()
        with instrument.stage("outer"):
            with instrument.stage("inner"):
                pass
        totals = instrument.totals()
        assert totals["outer"].calls == 1
        assert totals["inner"].calls == 1

    def test_sequential_same_name_counts_each(self):
        instrument.enable()
        for __ in range(3):
            with instrument.stage("s"):
                pass
        assert instrument.totals()["s"].calls == 3

    def test_disable_mid_block_drops_the_inflight_block(self):
        # A block is credited only when collection is enabled at both
        # entry and exit: its timing would otherwise be torn across the
        # toggle.
        instrument.enable()
        with instrument.stage("s"):
            instrument.disable()
        assert instrument.totals().get("s") is None

    def test_enable_mid_block_takes_effect_next_entry(self):
        with instrument.stage("s"):
            instrument.enable()
        assert instrument.totals().get("s") is None
        with instrument.stage("s"):
            pass
        assert instrument.totals()["s"].calls == 1

    def test_nested_depth_survives_inner_disable_enable(self):
        instrument.enable()
        with instrument.stage("s"):
            with instrument.stage("s"):
                pass
        with instrument.stage("s"):
            pass
        assert instrument.totals()["s"].calls == 2


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        histogram = trace.Histogram()
        for value in range(1, 101):  # 1..100
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary.count == 100
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert 49.0 <= summary.p50 <= 52.0
        assert 94.0 <= summary.p95 <= 97.0
        assert 98.0 <= summary.p99 <= 100.0
        assert summary.mean == pytest.approx(50.5)

    def test_empty_summary_is_zeroed(self):
        summary = trace.Histogram().summary()
        assert summary.count == 0
        assert summary.minimum == 0.0
        assert summary.maximum == 0.0
        assert summary.p50 == 0.0
        assert summary.mean == 0.0

    def test_decimation_bounds_memory_but_keeps_exact_count(self):
        histogram = trace.Histogram()
        n = 5 * trace._HISTOGRAM_CAP
        for value in range(n):
            histogram.observe(float(value))
        assert histogram.count == n
        assert histogram.total == pytest.approx(sum(range(n)))
        assert len(histogram._values) < trace._HISTOGRAM_CAP
        # Percentiles stay spread over the whole stream, not the tail.
        assert histogram.percentile(50) == pytest.approx(n / 2, rel=0.05)

    def test_observe_requires_enabled(self):
        instrument.observe("lat", 0.5)
        assert instrument.histograms() == {}
        instrument.enable()
        instrument.observe("lat", 0.5)
        assert instrument.histograms()["lat"].count == 1


# ---------------------------------------------------------------------------
# concurrency: the reset-race regression and drain conservation
# ---------------------------------------------------------------------------
class TestConcurrency:
    def test_no_lost_counts_across_enable_reset_cycles(self):
        """The PR 1 regression: enable(reset=True)/reset() used to rebind
        the dicts without the lock, stranding concurrent updates in a
        discarded dict.  Drain snapshots-and-clears atomically, so every
        update lands in exactly one drained snapshot (or the final one):
        the sum across >= 100 cycles is conserved exactly."""
        n_threads, n_increments = 8, 4000
        start = threading.Barrier(n_threads + 1)
        done = threading.Event()

        def worker():
            start.wait()
            for __ in range(n_increments):
                instrument.count("hits")
                instrument.add("stage", 0.001)

        threads = [
            threading.Thread(target=worker) for __ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        start.wait()

        drained_counts = 0
        drained_calls = 0
        cycles = 0
        while any(thread.is_alive() for thread in threads) or cycles < 100:
            snapshot = instrument.drain()
            drained_counts += snapshot["counters"].get("hits", 0)
            stage = snapshot["stages"].get("stage")
            drained_calls += stage.calls if stage else 0
            cycles += 1
            if cycles > 100000:  # safety valve, never expected
                break
        for thread in threads:
            thread.join()
        final = instrument.drain()
        drained_counts += final["counters"].get("hits", 0)
        stage = final["stages"].get("stage")
        drained_calls += stage.calls if stage else 0
        done.set()

        assert cycles >= 100
        assert drained_counts == n_threads * n_increments
        assert drained_calls == n_threads * n_increments

    def test_enable_reset_cycles_never_corrupt_the_registry(self):
        """enable(reset=True) racing stage timers must neither raise nor
        leave the registry in a torn state."""
        stop = threading.Event()

        def worker():
            while not stop.is_set():
                instrument.count("c")
                with instrument.stage("s"):
                    pass

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for __ in range(100):
                instrument.enable(reset=True)
                instrument.reset()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        snapshot = instrument.snapshot()
        assert set(snapshot) == {"stages", "counters", "histograms"}
        for total in snapshot["stages"].values():
            assert total.calls >= 0 and total.seconds >= 0.0

    def test_threaded_spans_counters_histograms_cohere(self):
        """The TraceRecorder/registry concurrency suite: N threads each
        record spans, counters and latency samples; afterwards the
        recorder holds every root and the snapshot is coherent."""
        instrument.enable()
        n_threads, n_spans = 8, 50
        recorder = trace.TraceRecorder()
        start = threading.Barrier(n_threads)

        def worker(tid):
            start.wait()
            with trace.recording(recorder):
                for index in range(n_spans):
                    with trace.staged_span(
                        trace.TOP_K, trace.KIND_TOPK, f"w{tid}-{index}"
                    ):
                        instrument.count("visits")
                        instrument.observe("lat", 0.001)

        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(worker, range(n_threads)))

        assert len(recorder.roots) == n_threads * n_spans
        snapshot = instrument.snapshot()
        assert snapshot["counters"]["visits"] == n_threads * n_spans
        assert snapshot["stages"][trace.TOP_K].calls == n_threads * n_spans
        assert snapshot["histograms"]["lat"].count == n_threads * n_spans
        # Every span carries exactly its own counter delta.
        deltas = sum(
            node.counters.get("visits", 0) for node in recorder.roots
        )
        assert deltas == n_threads * n_spans


# ---------------------------------------------------------------------------
# span trees
# ---------------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_aggregation(self):
        with trace.recording() as recorder:
            with recorder.span(trace.KIND_QUERY, "q") as root:
                with recorder.span(trace.KIND_VIDEO, "v"):
                    with trace.staged_span(
                        trace.ATOM_SCORING, trace.KIND_ATOM_SWEEP, "a"
                    ):
                        trace.bump("rows", 3)
                    trace.event("note", "merged")
        assert recorder.roots == [root]
        kinds = [node.kind for node in root.walk()]
        assert kinds == [
            trace.KIND_QUERY, trace.KIND_VIDEO, trace.KIND_ATOM_SWEEP
        ]
        assert root.total_counters() == {"rows": 3}
        events = root.all_events()
        assert len(events) == 1
        owner, emitted = events[0]
        assert owner.kind == trace.KIND_VIDEO
        assert emitted.name == "note" and emitted.detail == "merged"
        rollup = root.stage_totals()
        assert set(rollup) == {trace.ATOM_SCORING}
        assert rollup[trace.ATOM_SCORING].calls == 1

    def test_exception_recorded_and_reraised(self):
        with trace.recording() as recorder:
            with pytest.raises(ValueError):
                with recorder.span(trace.KIND_EVALUATE, "boom"):
                    raise ValueError("nope")
        assert recorder.roots[0].attrs["error"] == "ValueError"
        assert recorder.roots[0].seconds >= 0.0

    def test_helpers_are_noops_without_recorder(self):
        assert trace.current() is None
        assert trace.current_span() is None
        assert trace.event("x") is None
        trace.bump("c")
        trace.annotate(a=1)
        with trace.span(trace.KIND_LIST_OP, "noop"):
            pass  # shared null context

    def test_orphan_events_are_kept(self):
        with trace.recording() as recorder:
            trace.event("loose", "no span open")
        assert [e.name for e in recorder.orphan_events] == ["loose"]

    def test_capture_adopt_parent_across_pool(self):
        with trace.recording() as recorder:
            with recorder.span(trace.KIND_QUERY, "q") as root:
                token = trace.capture()

                def worker(index):
                    with trace.adopt(token):
                        with trace.span(trace.KIND_VIDEO, f"v{index}"):
                            trace.annotate(worker=index)
                    return index

                with ThreadPoolExecutor(max_workers=4) as pool:
                    list(pool.map(worker, range(8)))
        assert len(root.children) == 8
        assert {child.name for child in root.children} == {
            f"v{index}" for index in range(8)
        }
        assert all(
            child.attrs["worker"] == int(child.name[1:])
            for child in root.children
        )

    def test_adopt_without_recorder_is_noop(self):
        token = trace.capture()
        assert token.recorder is None
        with trace.adopt(token):
            assert trace.current() is None

    def test_to_dict_is_json_safe_and_render_text_nests(self):
        with trace.recording() as recorder:
            with recorder.span(trace.KIND_QUERY, "q", obj=object()) as root:
                with recorder.span(trace.KIND_VIDEO, "v"):
                    trace.event("ping")
        payload = json.dumps(root.to_dict())  # must not raise
        assert "ping" in payload
        text = trace.render_text(root)
        lines = text.splitlines()
        assert lines[0].startswith("q  (query)")
        assert any(line.startswith("  v  (video)") for line in lines)
        assert any("! ping" in line for line in lines)


class TestStagedSpanBridge:
    def test_single_measurement_feeds_both_sinks(self):
        instrument.enable()
        with trace.recording() as recorder:
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "merge"
            ) as opened:
                assert opened is not None
        totals = instrument.totals()
        assert totals[trace.LIST_ALGEBRA].calls == 1
        # Exact reconciliation: the stage credit IS the span duration.
        assert totals[trace.LIST_ALGEBRA].seconds == pytest.approx(
            recorder.roots[0].seconds, abs=0.0
        )

    def test_metrics_disabled_still_produces_span(self):
        with trace.recording() as recorder:
            with trace.staged_span(
                trace.ATOM_SCORING, trace.KIND_ATOM_SWEEP, "a"
            ):
                pass
        assert len(recorder.roots) == 1
        assert instrument.totals() == {}

    def test_no_recorder_no_metrics_is_passthrough(self):
        with trace.staged_span(
            trace.ATOM_SCORING, trace.KIND_ATOM_SWEEP, "a"
        ) as opened:
            assert opened is None
        assert instrument.totals() == {}

    def test_nested_same_stage_spans_count_stage_once(self):
        instrument.enable()
        with trace.recording() as recorder:
            with trace.staged_span(
                trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "outer"
            ):
                with trace.staged_span(
                    trace.LIST_ALGEBRA, trace.KIND_LIST_OP, "inner"
                ):
                    pass
        # Two spans in the tree, one stage credit (outermost frame only).
        assert len(list(recorder.roots[0].walk())) == 2
        assert instrument.totals()[trace.LIST_ALGEBRA].calls == 1


# ---------------------------------------------------------------------------
# integration: traced retrieval
# ---------------------------------------------------------------------------
class TestTracedRetrieval:
    def test_trace_video_returns_matching_result_and_tree(self):
        database = tiny_database()
        video = next(iter(database.videos()))
        formula = parse(QUERY)
        engine = RetrievalEngine()
        plain = engine.evaluate_video(formula, video, database=database)
        traced, root = RetrievalEngine().trace_video(
            formula, video, database=database
        )
        assert traced == plain
        assert root.kind == trace.KIND_EVALUATE
        kinds = {node.kind for node in root.walk()}
        assert trace.KIND_SUBFORMULA in kinds
        assert trace.KIND_ATOM_SWEEP in kinds
        assert trace.KIND_LIST_OP in kinds

    @pytest.mark.parametrize("parallelism", [None, 4])
    def test_profiled_topk_matches_unprofiled(self, parallelism):
        database = tiny_database()
        formula = parse(QUERY)
        plain = top_k_across_videos(
            RetrievalEngine(), formula, database, k=5,
            parallelism=parallelism,
        )
        profiled = top_k_across_videos(
            RetrievalEngine(), formula, database, k=5,
            parallelism=parallelism, profile=True,
        )
        assert profiled.segments == plain.segments
        assert plain.profile is None
        root = profiled.profile
        assert root is not None and root.kind == trace.KIND_QUERY
        videos = [
            node for node in root.walk() if node.kind == trace.KIND_VIDEO
        ]
        assert {node.name for node in videos} == {
            video.name for video in database.videos()
        }
        assert all(node.attrs.get("status") == "ok" for node in videos)

    def test_span_rollup_reconciles_with_instrument_totals(self):
        """The acceptance criterion: per-stage totals from the span tree
        reconcile (within 5%; exactly, by construction) with the legacy
        instrument.totals() for the same run, under parallelism=4."""
        database = tiny_database(n_videos=6)
        formula = parse(QUERY)
        instrument.enable()
        result = top_k_across_videos(
            RetrievalEngine(), formula, database, k=5,
            parallelism=4, profile=True,
        )
        instrument.disable()
        legacy = instrument.totals()
        rollup = result.profile.stage_totals()
        for stage in (trace.ATOM_SCORING, trace.LIST_ALGEBRA, trace.TOP_K):
            assert stage in rollup, f"missing {stage} in span rollup"
            assert stage in legacy, f"missing {stage} in legacy totals"
            assert rollup[stage].calls == legacy[stage].calls
            assert rollup[stage].seconds == pytest.approx(
                legacy[stage].seconds, rel=0.05
            )

    def test_query_and_video_latency_histograms_populate(self):
        database = tiny_database()
        formula = parse(QUERY)
        instrument.enable()
        top_k_across_videos(
            RetrievalEngine(), formula, database, k=3, profile=True
        )
        instrument.disable()
        summaries = instrument.histograms()
        assert summaries[instrument.QUERY_LATENCY].count == 1
        assert summaries[instrument.VIDEO_LATENCY].count == len(
            list(database.videos())
        )

    @pytest.mark.parametrize("parallelism", [None, 2])
    def test_chaos_fallbacks_appear_as_span_events(self, parallelism):
        """Fault-injected index failures must surface as atom-fallback
        events on the atom-sweep span that absorbed them, with the span
        correctly parented under its video and query spans."""
        database = tiny_database()
        formula = parse(QUERY)
        with resilience.scope():
            with inject(
                FaultSpec(resilience.SITE_INDEX_LOOKUP), seed=3
            ):
                result = top_k_across_videos(
                    RetrievalEngine(), formula, database, k=5,
                    parallelism=parallelism, profile=True,
                )
        root = result.profile
        fallbacks = [
            (owner, emitted)
            for owner, emitted in root.all_events()
            if emitted.name == instrument.ATOM_FALLBACK
        ]
        assert fallbacks, "no atom-fallback events recorded"
        parents = {}
        for node in root.walk():
            for child in node.children:
                parents[id(child)] = node
        for owner, emitted in fallbacks:
            assert owner.kind == trace.KIND_ATOM_SWEEP
            assert owner.attrs.get("path") == "naive-fallback"
            assert "redoing with the naive oracle scorer" in emitted.detail
            kinds = set()
            node = owner
            while id(node) in parents:
                node = parents[id(node)]
                kinds.add(node.kind)
            assert trace.KIND_VIDEO in kinds
            assert trace.KIND_QUERY in kinds
        # The fallback also bumped the global counter, as before.
        assert instrument.counters().get(instrument.ATOM_FALLBACK, 0) >= len(
            fallbacks
        )
