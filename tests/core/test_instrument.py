"""Per-stage timing counters (repro.core.instrument / repro.bench.stages)."""

import pytest

from repro.bench import stages
from repro.core import instrument
from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.htl.parser import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object


@pytest.fixture(autouse=True)
def clean_timers():
    instrument.disable()
    instrument.reset()
    yield
    instrument.disable()
    instrument.reset()


def test_disabled_records_nothing():
    with instrument.stage("anything"):
        pass
    assert instrument.totals() == {}


def test_enable_collects_and_counts():
    instrument.enable()
    for __ in range(3):
        with instrument.stage("atom-scoring"):
            pass
    totals = instrument.totals()
    assert totals["atom-scoring"].calls == 3
    assert totals["atom-scoring"].seconds >= 0.0
    instrument.disable()
    with instrument.stage("atom-scoring"):
        pass
    assert instrument.totals()["atom-scoring"].calls == 3


def test_enable_resets_by_default():
    instrument.enable()
    with instrument.stage("s"):
        pass
    instrument.enable()
    assert instrument.totals() == {}
    instrument.enable(reset=False)
    with instrument.stage("s"):
        pass
    instrument.enable(reset=False)
    assert instrument.totals()["s"].calls == 1


def test_pipeline_attributes_all_three_stages():
    segments = [
        SegmentMetadata(objects=[make_object("o1", "person")]),
        SegmentMetadata(),
        SegmentMetadata(objects=[make_object("o1", "person")]),
    ]
    database = VideoDatabase()
    database.add(flat_video("v", segments))
    query = parse(
        "(exists x . present(x)) and eventually (exists x . present(x))"
    )
    stages.enable()
    results = top_k_across_videos(RetrievalEngine(), query, database, k=2)
    stages.disable()
    assert results
    totals = stages.totals()
    assert totals[stages.ATOM_SCORING].calls >= 1
    assert totals[stages.LIST_ALGEBRA].calls >= 1
    assert totals[stages.TOP_K].calls >= 1


def test_stage_report_text():
    stages.enable()
    with stages.stage("atom-scoring"):
        pass
    text = stages.stage_report_text()
    assert "atom-scoring" in text
    assert "Seconds" in text
    stages.reset()
    assert "(no stages recorded)" in stages.stage_report_text()
