"""Per-stage timing counters (repro.core.instrument / repro.bench.stages)."""

import threading

import pytest

from repro.bench import stages
from repro.core import instrument
from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.htl.parser import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object


@pytest.fixture(autouse=True)
def clean_timers():
    instrument.disable()
    instrument.reset()
    yield
    instrument.disable()
    instrument.reset()


def test_disabled_records_nothing():
    with instrument.stage("anything"):
        pass
    assert instrument.totals() == {}


def test_enable_collects_and_counts():
    instrument.enable()
    for __ in range(3):
        with instrument.stage("atom-scoring"):
            pass
    totals = instrument.totals()
    assert totals["atom-scoring"].calls == 3
    assert totals["atom-scoring"].seconds >= 0.0
    instrument.disable()
    with instrument.stage("atom-scoring"):
        pass
    assert instrument.totals()["atom-scoring"].calls == 3


def test_enable_resets_by_default():
    instrument.enable()
    with instrument.stage("s"):
        pass
    instrument.enable()
    assert instrument.totals() == {}
    instrument.enable(reset=False)
    with instrument.stage("s"):
        pass
    instrument.enable(reset=False)
    assert instrument.totals()["s"].calls == 1


def test_pipeline_attributes_all_three_stages():
    segments = [
        SegmentMetadata(objects=[make_object("o1", "person")]),
        SegmentMetadata(),
        SegmentMetadata(objects=[make_object("o1", "person")]),
    ]
    database = VideoDatabase()
    database.add(flat_video("v", segments))
    query = parse(
        "(exists x . present(x)) and eventually (exists x . present(x))"
    )
    stages.enable()
    results = top_k_across_videos(RetrievalEngine(), query, database, k=2)
    stages.disable()
    assert results
    totals = stages.totals()
    assert totals[stages.ATOM_SCORING].calls >= 1
    assert totals[stages.LIST_ALGEBRA].calls >= 1
    assert totals[stages.TOP_K].calls >= 1


def test_reset_race_loses_no_updates():
    """Regression: enable(reset=True)/reset() used to rebind the dicts
    without the lock, so a thread-pool worker mid-update wrote into a
    discarded dict.  With in-place clearing and atomic drain, every
    add/count lands in exactly one drained snapshot."""
    n_threads, n_each = 6, 2000
    barrier = threading.Barrier(n_threads + 1)

    def worker():
        barrier.wait()
        for __ in range(n_each):
            instrument.count("events")
            instrument.add("work", 0.0001)

    threads = [threading.Thread(target=worker) for __ in range(n_threads)]
    for thread in threads:
        thread.start()
    barrier.wait()
    seen_counts = seen_calls = cycles = 0
    while any(thread.is_alive() for thread in threads) or cycles < 100:
        drained = instrument.drain()
        seen_counts += drained["counters"].get("events", 0)
        stage = drained["stages"].get("work")
        seen_calls += stage.calls if stage else 0
        cycles += 1
    for thread in threads:
        thread.join()
    drained = instrument.drain()
    seen_counts += drained["counters"].get("events", 0)
    stage = drained["stages"].get("work")
    seen_calls += stage.calls if stage else 0
    assert cycles >= 100
    assert seen_counts == n_threads * n_each
    assert seen_calls == n_threads * n_each


def test_facade_exposes_registry_surface():
    instrument.enable()
    instrument.observe("lat", 0.25)
    snapshot = instrument.snapshot()
    assert snapshot["histograms"]["lat"].count == 1
    assert instrument.histograms()["lat"].p50 == pytest.approx(0.25)
    drained = instrument.drain()
    assert drained["histograms"]["lat"].count == 1
    assert instrument.histograms() == {}


def test_stage_report_text():
    stages.enable()
    with stages.stage("atom-scoring"):
        pass
    text = stages.stage_report_text()
    assert "atom-scoring" in text
    assert "Seconds" in text
    stages.reset()
    assert "(no stages recorded)" in stages.stage_report_text()
