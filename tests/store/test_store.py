"""Unit suite for the crash-safe snapshot store (DESIGN.md §9).

Covers the happy path (save → verify → load round trip), every recovery
path (corruption quarantine, snapshot fallback, index rebuild, manifest
recovery), the read-only guarantee of verify, and repair's
quarantine-everything-and-rewrite contract.  The crash-recovery sweep
under injected faults lives in ``test_store_chaos.py``.
"""

import json
import os
import random

import pytest

from repro.core import instrument
from repro.core.engine import RetrievalEngine
from repro.errors import (
    StoreCorruptionError,
    StoreError,
    StoreVersionError,
)
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import Relationship, SegmentMetadata, make_object
from repro.model.serialize import database_to_dict
from repro.store import (
    ATOMICS_ARTIFACT,
    INDEX_ARTIFACT,
    MANIFEST_NAME,
    VIDEOS_ARTIFACT,
    Store,
    default_level,
)
from repro.workloads.synthetic import random_similarity_list


def small_database(n_videos=2, n_segments=8, seed=7):
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(n_videos):
        segments = []
        for index in range(n_segments):
            objects = []
            relationships = []
            if rng.random() < 0.5:
                objects.append(
                    make_object(f"t{index}", "train", height=rng.choice([1, 2]))
                )
            if rng.random() < 0.4:
                objects.append(make_object(f"p{index}", "person"))
                relationships.append(
                    Relationship("holds_gun", (f"p{index}",), 0.5)
                )
            attributes = {"kind": "battle"} if rng.random() < 0.3 else {}
            segments.append(
                SegmentMetadata(
                    attributes=attributes,
                    objects=objects,
                    relationships=relationships,
                )
            )
        video = database.add(flat_video(f"v{position}", segments))
        database.register_atomic(
            "P1", video.name, random_similarity_list(n_segments, rng=rng)
        )
    return database


@pytest.fixture
def database():
    return small_database()


@pytest.fixture
def store(tmp_path):
    return Store(tmp_path / "store")


def damage(path, mode="truncate"):
    data = open(path, "rb").read()
    if mode == "truncate":
        damaged = data[: len(data) // 2]
    else:  # single-bit flip
        damaged = data[:10] + bytes([data[10] ^ 1]) + data[11:]
    with open(path, "wb") as handle:
        handle.write(damaged)
    return data


# ---------------------------------------------------------------------------
# happy path
# ---------------------------------------------------------------------------
class TestRoundTrip:
    def test_save_load_round_trip(self, store, database):
        reference = database_to_dict(database)
        info = store.save(database)
        assert info.snapshot_id == "snap-000001"
        assert set(info.artifacts) == {
            VIDEOS_ARTIFACT, ATOMICS_ARTIFACT, INDEX_ARTIFACT,
        }
        loaded = store.load()
        assert database_to_dict(loaded.database) == reference
        assert loaded.snapshot_id == info.snapshot_id
        assert loaded.verified and not loaded.recovered

    def test_save_bumps_counters(self, store, database):
        before = instrument.counters().get(
            instrument.STORE_SNAPSHOT_SAVED, 0
        )
        store.save(database)
        store.load()
        counters = instrument.counters()
        assert counters[instrument.STORE_SNAPSHOT_SAVED] == before + 1
        assert counters.get(instrument.STORE_SNAPSHOT_LOADED, 0) >= 1

    def test_loaded_queries_match_original(self, store, database):
        formula = parse("exists x . present(x) and type(x) = 'train'")
        engine = RetrievalEngine()
        store.save(database)
        loaded = store.load().database
        for video in database.videos():
            expected = engine.evaluate_video(formula, video)
            actual = engine.evaluate_video(formula, loaded.get(video.name))
            assert list(actual) == list(expected)

    def test_load_restores_prebuilt_index(self, store, database):
        store.save(database)
        loaded = store.load()
        assert not loaded.recovered  # indices restored, not rebuilt
        for video in loaded.database.videos():
            level = default_level(video)
            system = video.root.pictures_at_level(level)
            assert system.index.n_segments == len(
                video.root.descendants_at_level(level)
            )

    def test_unverified_load_round_trips(self, store, database):
        reference = database_to_dict(database)
        store.save(database)
        loaded = store.load(verify=False)
        assert not loaded.verified
        assert database_to_dict(loaded.database) == reference

    def test_retention_prunes_beyond_keep(self, tmp_path, database):
        store = Store(tmp_path / "store", keep=2)
        store.save(database)
        store.save(database)
        info = store.save(database)
        assert info.pruned == ("snap-000001",)
        assert sorted(store._on_disk_snapshots()) == [
            "snap-000002", "snap-000003",
        ]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(StoreError):
            Store(tmp_path, keep=0)

    def test_empty_store_raises(self, store):
        with pytest.raises(StoreError):
            store.load()
        with pytest.raises(StoreError):
            store.verify()


# ---------------------------------------------------------------------------
# corruption, quarantine, fallback
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_corrupt_artifact_falls_back_and_quarantines(
        self, store, database
    ):
        reference = database_to_dict(database)
        first = store.save(database)
        second = store.save(database)
        damaged_path = os.path.join(second.path, VIDEOS_ARTIFACT)
        original = damage(damaged_path)
        before = instrument.counters().get(
            instrument.STORE_ARTIFACT_QUARANTINED, 0
        )
        loaded = store.load()
        assert loaded.snapshot_id == first.snapshot_id
        assert database_to_dict(loaded.database) == reference
        kinds = [action.kind for action in loaded.actions]
        assert "quarantined" in kinds and "fallback" in kinds
        counters = instrument.counters()
        assert counters[instrument.STORE_ARTIFACT_QUARANTINED] == before + 1
        assert counters.get(instrument.STORE_SNAPSHOT_FALLBACK, 0) >= 1
        # The damaged bytes are preserved in quarantine, not deleted.
        moved = [
            action.quarantined_to
            for action in loaded.actions
            if action.quarantined_to
        ]
        assert len(moved) == 1 and os.path.exists(moved[0])
        assert open(moved[0], "rb").read() == original[: len(original) // 2]
        assert not os.path.exists(damaged_path)

    def test_bit_flip_detected_by_digest(self, store, database):
        first = store.save(database)
        second = store.save(database)
        damage(os.path.join(second.path, ATOMICS_ARTIFACT), mode="flip")
        loaded = store.load()
        assert loaded.snapshot_id == first.snapshot_id

    def test_all_snapshots_damaged_raises_typed(self, store, database):
        info = store.save(database)
        damage(os.path.join(info.path, VIDEOS_ARTIFACT))
        with pytest.raises(StoreCorruptionError) as caught:
            store.load()
        error = caught.value
        assert VIDEOS_ARTIFACT in error.artifact
        assert error.quarantined
        for path in error.quarantined:
            assert os.path.exists(path)

    def test_missing_artifact_skips_snapshot(self, store, database):
        first = store.save(database)
        second = store.save(database)
        os.remove(os.path.join(second.path, ATOMICS_ARTIFACT))
        loaded = store.load()
        assert loaded.snapshot_id == first.snapshot_id

    def test_corrupt_index_rebuilds_not_falls_back(self, store, database):
        reference = database_to_dict(database)
        info = store.save(database)
        damage(os.path.join(info.path, INDEX_ARTIFACT))
        before = instrument.counters().get(instrument.STORE_INDEX_REBUILT, 0)
        loaded = store.load()
        # Derived damage: same snapshot, rebuilt index, equal database.
        assert loaded.snapshot_id == info.snapshot_id
        assert database_to_dict(loaded.database) == reference
        assert instrument.counters()[instrument.STORE_INDEX_REBUILT] > before
        assert not any(
            action.kind == "fallback" for action in loaded.actions
        )

    def test_missing_manifest_recovered_by_scan(self, store, database):
        reference = database_to_dict(database)
        info = store.save(database)
        os.remove(store.manifest_path)
        before = instrument.counters().get(
            instrument.STORE_MANIFEST_RECOVERED, 0
        )
        loaded = store.load()
        assert loaded.snapshot_id == info.snapshot_id
        assert database_to_dict(loaded.database) == reference
        assert (
            instrument.counters()[instrument.STORE_MANIFEST_RECOVERED]
            == before + 1
        )

    def test_corrupt_manifest_quarantined_then_recovered(
        self, store, database
    ):
        info = store.save(database)
        with open(store.manifest_path, "w") as handle:
            handle.write("{not json")
        loaded = store.load()
        assert loaded.snapshot_id == info.snapshot_id
        assert any(
            action.artifact == MANIFEST_NAME
            and action.kind == "quarantined"
            for action in loaded.actions
        )

    def test_future_format_version_raises(self, store, database):
        store.save(database)
        manifest = json.load(open(store.manifest_path))
        manifest["format"] = 99
        with open(store.manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(StoreVersionError):
            store.load()
        # A version error is not corruption: nothing was quarantined.
        assert not os.path.isdir(store.quarantine_dir)

    def test_unverified_load_still_rejects_torn_json(self, store, database):
        first = store.save(database)
        second = store.save(database)
        damage(os.path.join(second.path, VIDEOS_ARTIFACT))
        loaded = store.load(verify=False)
        assert loaded.snapshot_id == first.snapshot_id


# ---------------------------------------------------------------------------
# verify and repair
# ---------------------------------------------------------------------------
class TestVerifyRepair:
    def test_verify_clean_store(self, store, database):
        store.save(database)
        report = store.verify()
        assert report.ok and report.manifest_ok
        assert all(status.status == "ok" for status in report.statuses)
        assert not report.unreferenced and not report.stray_files

    def test_verify_reports_damage_without_touching_it(
        self, store, database
    ):
        info = store.save(database)
        path = os.path.join(info.path, VIDEOS_ARTIFACT)
        damage(path)
        report = store.verify()
        assert not report.ok
        damaged = [s for s in report.statuses if s.damaged]
        assert any(
            s.artifact == VIDEOS_ARTIFACT and s.status == "size-mismatch"
            for s in damaged
        )
        # Read-only: the damaged file is still in place, no quarantine.
        assert os.path.exists(path)
        assert not os.path.isdir(store.quarantine_dir)

    def test_verify_derived_damage_is_not_fatal(self, store, database):
        info = store.save(database)
        damage(os.path.join(info.path, INDEX_ARTIFACT))
        report = store.verify()
        assert report.ok  # index is derived: rebuildable, not fatal
        assert any(
            s.artifact == INDEX_ARTIFACT and s.damaged and not s.fatal
            for s in report.statuses
        )

    def test_verify_reports_stray_tmp_files(self, store, database):
        info = store.save(database)
        stray = os.path.join(info.path, VIDEOS_ARTIFACT + ".tmp")
        with open(stray, "wb") as handle:
            handle.write(b"torn")
        report = store.verify()
        assert report.ok  # strays are reported, not fatal
        assert report.stray_files == [stray]

    def test_repair_quarantines_and_restores_health(self, store, database):
        first = store.save(database)
        second = store.save(database)
        damage(os.path.join(second.path, VIDEOS_ARTIFACT))
        outcome = store.repair()
        assert second.snapshot_id in outcome.dropped
        assert outcome.current == first.snapshot_id
        assert store.verify().ok
        loaded = store.load()
        assert loaded.snapshot_id == first.snapshot_id
        assert not loaded.recovered
        # The torn snapshot is preserved under quarantine/.
        quarantined = os.listdir(store.quarantine_dir)
        assert any(second.snapshot_id in name for name in quarantined)

    def test_repair_sweeps_stray_tmp_files(self, store, database):
        info = store.save(database)
        stray = os.path.join(info.path, VIDEOS_ARTIFACT + ".tmp")
        with open(stray, "wb") as handle:
            handle.write(b"torn")
        store.repair()
        assert not os.path.exists(stray)
        assert store.verify().stray_files == []

    def test_save_after_repair_continues_sequence(self, store, database):
        store.save(database)
        second = store.save(database)
        damage(os.path.join(second.path, VIDEOS_ARTIFACT))
        store.repair()
        info = store.save(database)
        # Sequence numbers never rewind, even past a dropped snapshot.
        assert info.sequence == 3
