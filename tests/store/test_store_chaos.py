"""Crash-recovery property suite for the store (DESIGN.md §9).

The central invariant, swept deterministically: with a fault injected at
*any single step* of a snapshot save — any write, any fsync — a
subsequent ``Store.load()`` returns a digest-verified database equal to
either the pre-save state or the post-save state, **never a hybrid**,
and never silently corrupt.  Read-path faults (torn reads, bit rot,
I/O errors) must likewise end in an intact fallback snapshot or a typed
:class:`~repro.errors.StoreError` naming the damage, with every
quarantined file preserved on disk.

The sweep aims one fault at the k-th visit of a site via
``FaultSpec(skip=k, max_faults=1)`` and walks k across every step of the
save, so each write/fsync of the protocol gets its own crash test.
Seeds are fixed; CI sweeps them via the CHAOS_SEED environment variable.
"""

import os
import random

import pytest

from repro.core import resilience
from repro.errors import InjectedFaultError, StoreError
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.model.serialize import database_to_dict
from repro.store import Store
from repro.testing.faults import CORRUPT, RAISE, FaultSpec, inject
from repro.workloads.synthetic import random_similarity_list

#: Default chaos seeds; override one via CHAOS_SEED for CI sweeps.
SEEDS = [11, 1997, 20260806]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

#: A save touches 4 files (3 artifacts + snapshot.json) inside the
#: snapshot plus the top manifest: 5 atomic writes, each with one write
#: and one fsync fault visit.  The sweep walks one step past the end so
#: the "no fault fired at all" case is exercised too.
WRITE_STEPS = 6


def build_database(n_segments=6, seed=3, extra_atomic=False):
    """A deterministic two-video corpus; ``extra_atomic`` is the v2 delta."""
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(2):
        segments = []
        for index in range(n_segments):
            objects = []
            if rng.random() < 0.5:
                objects.append(make_object(f"t{index}", "train"))
            segments.append(SegmentMetadata(objects=objects))
        video = database.add(flat_video(f"v{position}", segments))
        database.register_atomic(
            "P1", video.name, random_similarity_list(n_segments, rng=rng)
        )
    if extra_atomic:
        database.register_atomic(
            "P2", "v0", random_similarity_list(n_segments, rng=rng)
        )
    return database


@pytest.fixture
def versions():
    """Two distinguishable database versions and their canonical dicts."""
    v1 = build_database()
    v2 = build_database(extra_atomic=True)
    return v1, v2, database_to_dict(v1), database_to_dict(v2)


def assert_old_or_new(store, dict_v1, dict_v2):
    """The acceptance property: intact old, intact new, or typed error —
    and every quarantined file preserved on disk."""
    try:
        loaded = store.load()
    except StoreError as error:
        for path in getattr(error, "quarantined", ()):
            assert os.path.exists(path), f"quarantined file vanished: {path}"
        return None
    document = database_to_dict(loaded.database)
    assert document in (dict_v1, dict_v2), (
        "load returned a hybrid snapshot — neither the pre-save nor the "
        "post-save database"
    )
    for action in loaded.actions:
        if action.quarantined_to:
            assert os.path.exists(action.quarantined_to)
    return document


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "site", [resilience.SITE_STORE_WRITE, resilience.SITE_STORE_FSYNC]
)
def test_fault_at_every_write_step_leaves_old_or_new(
    site, seed, versions, tmp_path
):
    """Sweep a single fault over every write/fsync step of a save."""
    v1, v2, dict_v1, dict_v2 = versions
    for step in range(WRITE_STEPS):
        store = Store(tmp_path / f"step-{step}")
        store.save(v1)
        spec = FaultSpec(site, mode=RAISE, max_faults=1, skip=step)
        faulted = False
        with inject(spec, seed=seed) as chaos:
            try:
                store.save(v2)
            except InjectedFaultError:
                faulted = True
            faulted_visits = chaos.visits.get(site, 0)
        if step < faulted_visits:
            assert faulted, f"step {step} never fired at {site}"
        document = assert_old_or_new(store, dict_v1, dict_v2)
        # v1 was fully committed before the fault, so load must succeed.
        assert document is not None
        if not faulted:
            assert document == dict_v2  # clean save past the sweep window
        # After the interrupted save, a clean retry must land on v2.
        store.save(v2)
        assert database_to_dict(store.load().database) == dict_v2


@pytest.mark.parametrize("seed", SEEDS)
def test_read_fault_raises_typed_or_falls_back(seed, versions, tmp_path):
    """An I/O error on any single read: fallback or typed StoreError."""
    v1, v2, dict_v1, dict_v2 = versions
    for step in range(8):
        store = Store(tmp_path / f"raise-{step}")
        store.save(v1)
        store.save(v2)
        spec = FaultSpec(
            resilience.SITE_STORE_READ, mode=RAISE, max_faults=1, skip=step
        )
        with inject(spec, seed=seed):
            assert_old_or_new(store, dict_v1, dict_v2)
        # The disk was never actually damaged: a fault-free load sees v2.
        assert database_to_dict(store.load().database) == dict_v2


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupted_read_quarantines_or_falls_back(seed, versions, tmp_path):
    """Bit rot on any single read is detected, never silently returned."""
    v1, v2, dict_v1, dict_v2 = versions
    for step in range(8):
        store = Store(tmp_path / f"rot-{step}")
        store.save(v1)
        store.save(v2)
        spec = FaultSpec(
            resilience.SITE_STORE_READ, mode=CORRUPT, max_faults=1, skip=step
        )
        with inject(spec, seed=seed) as chaos:
            document = assert_old_or_new(store, dict_v1, dict_v2)
        if chaos.injected and document is not None:
            # Corruption was served and survived: the loaded database
            # still equals a real committed version (detection worked).
            assert document in (dict_v1, dict_v2)


@pytest.mark.parametrize("seed", SEEDS)
def test_repeated_write_faults_never_wedge_the_store(
    seed, versions, tmp_path
):
    """Probabilistic storm: many saves under a flaky disk, then recovery."""
    v1, v2, dict_v1, dict_v2 = versions
    store = Store(tmp_path / "storm")
    store.save(v1)
    spec = FaultSpec(
        resilience.SITE_STORE_WRITE, mode=RAISE, rate=0.3, max_faults=4
    )
    with inject(spec, seed=seed):
        for __ in range(6):
            try:
                store.save(v2)
            except InjectedFaultError:
                pass
    document = assert_old_or_new(store, dict_v1, dict_v2)
    assert document is not None
    # The storm is over; the store must accept a clean save and verify.
    store.save(v2)
    assert store.verify().ok
    assert database_to_dict(store.load().database) == dict_v2
