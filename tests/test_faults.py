"""Chaos suite: deterministic fault injection against the retrieval stack.

The central property (ISSUE/DESIGN §8): with faults injected at any
single registered site, a multi-video query returns either the exact
fault-free ranking (a fallback absorbed the fault), or a typed error, or
a ``partial=True`` result naming the failed videos — never a silently
wrong ranking.

Seeds are fixed for reproducibility; CI sweeps them via the CHAOS_SEED
environment variable.
"""

import os
import random

import pytest

from repro.core import instrument, resilience
from repro.core.engine import RetrievalEngine
from repro.core.simlist import set_invariant_checks
from repro.core.topk import top_k_across_videos
from repro.errors import (
    InjectedFaultError,
    ReproError,
    SimilarityListInvariantError,
)
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.testing.faults import (
    CORRUPT,
    DELAY,
    RAISE,
    SHORT_WRITE,
    FaultInjector,
    FaultSpec,
    corrupt_similarity_list,
    inject,
)

#: Default chaos seeds; override one via CHAOS_SEED for CI sweeps.
SEEDS = [11, 1997, 20260806]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

#: Exercises every fault site: metadata atoms (index lookups + scoring),
#: conjunction and eventually (list merges), multi-video (top-k workers).
CHAOS_QUERY = (
    "(exists x . present(x) and type(x) = 'train') "
    "and eventually (exists y . present(y))"
)


def chaos_database(n_videos=4, n_segments=12, seed=5):
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(n_videos):
        segments = []
        for index in range(n_segments):
            objects = []
            if rng.random() < 0.45:
                objects.append(make_object(f"t{index}", "train"))
            if rng.random() < 0.35:
                objects.append(make_object(f"p{index}", "person"))
            segments.append(SegmentMetadata(objects=objects))
        database.add(flat_video(f"v{position}", segments))
    return database


@pytest.fixture(scope="module")
def corpus():
    return chaos_database()


@pytest.fixture(scope="module")
def baseline(corpus):
    """The fault-free ranking plus a per-segment value oracle."""
    formula = parse(CHAOS_QUERY)
    ranking = top_k_across_videos(
        RetrievalEngine(), formula, corpus, k=6, prune=False
    )
    values = {}
    for video in corpus.videos():
        sim = RetrievalEngine().evaluate_video(
            formula, video, database=corpus
        )
        for segment_id, actual in sim.to_segment_values().items():
            values[(video.name, segment_id)] = actual
    return ranking, values


class TestInjectorMechanics:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("warp-core")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(resilience.SITE_ATOM_SCORE, mode="explode")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultSpec(resilience.SITE_ATOM_SCORE, rate=1.5)

    def test_rate_zero_never_fires(self):
        injector = FaultInjector(
            [FaultSpec(resilience.SITE_LIST_MERGE, rate=0.0)], seed=1
        )
        for __ in range(50):
            injector.trip(resilience.SITE_LIST_MERGE)
        assert injector.injected == []
        assert injector.visits[resilience.SITE_LIST_MERGE] == 50

    def test_max_faults_caps_firings(self):
        injector = FaultInjector(
            [FaultSpec(resilience.SITE_LIST_MERGE, max_faults=3)], seed=1
        )
        fired = 0
        for __ in range(10):
            try:
                injector.trip(resilience.SITE_LIST_MERGE)
            except InjectedFaultError:
                fired += 1
        assert fired == 3
        assert injector.faults_at(resilience.SITE_LIST_MERGE) == 3

    def test_sequence_recorded_on_error(self):
        injector = FaultInjector(
            [FaultSpec(resilience.SITE_ATOM_SCORE)], seed=1
        )
        injector.corrupt(resilience.SITE_ATOM_SCORE, "not a list")  # no-op
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.trip(resilience.SITE_ATOM_SCORE)
        assert excinfo.value.site == resilience.SITE_ATOM_SCORE
        assert excinfo.value.sequence == 1

    def test_same_seed_replays_identically(self):
        def run(seed):
            injector = FaultInjector(
                [FaultSpec(resilience.SITE_TOPK_WORKER, rate=0.4)], seed=seed
            )
            outcomes = []
            for __ in range(30):
                try:
                    injector.trip(resilience.SITE_TOPK_WORKER)
                    outcomes.append("ok")
                except InjectedFaultError:
                    outcomes.append("fault")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)  # and the seed actually matters

    def test_inject_installs_and_restores_hook(self):
        assert resilience._fault_hook is None
        with inject(FaultSpec(resilience.SITE_LIST_MERGE)) as injector:
            assert resilience._fault_hook is injector
            with inject(FaultSpec(resilience.SITE_ATOM_SCORE)) as nested:
                assert resilience._fault_hook is nested
            assert resilience._fault_hook is injector
        assert resilience._fault_hook is None

    def test_injection_counted(self, corpus):
        instrument.reset()
        injector = FaultInjector(
            [FaultSpec(resilience.SITE_LIST_MERGE, max_faults=1)]
        )
        with pytest.raises(InjectedFaultError):
            injector.trip(resilience.SITE_LIST_MERGE)
        assert instrument.counters()[instrument.FAULT_INJECTED] == 1

    def test_negative_skip_rejected(self):
        with pytest.raises(ValueError, match="skip"):
            FaultSpec(resilience.SITE_STORE_WRITE, skip=-1)

    def test_skip_makes_first_visits_immune(self):
        # skip=3: visits 1..3 pass clean, visit 4 is the first to fire.
        injector = FaultInjector(
            [
                FaultSpec(
                    resilience.SITE_STORE_WRITE, skip=3, max_faults=1
                )
            ],
            seed=1,
        )
        for __ in range(3):
            injector.trip(resilience.SITE_STORE_WRITE)  # must not raise
        with pytest.raises(InjectedFaultError) as excinfo:
            injector.trip(resilience.SITE_STORE_WRITE)
        assert excinfo.value.sequence == 4
        injector.trip(resilience.SITE_STORE_WRITE)  # max_faults=1 spent

    def test_skip_beyond_visit_count_never_fires(self):
        injector = FaultInjector(
            [FaultSpec(resilience.SITE_STORE_WRITE, skip=100)], seed=1
        )
        for __ in range(10):
            injector.trip(resilience.SITE_STORE_WRITE)
        assert injector.injected == []


class TestCorruptor:
    @pytest.mark.parametrize("seed", range(12))
    def test_corrupted_lists_always_fail_validation(self, seed):
        from repro.core.simlist import SimilarityList

        rng = random.Random(seed)
        previous = set_invariant_checks(False)
        try:
            for sim in (
                SimilarityList.from_entries(
                    [((1, 3), 2.0), ((5, 5), 6.0)], 8.0
                ),
                SimilarityList.from_entries([((2, 2), 1.0)], 1.0),
                SimilarityList.empty(4.0),
            ):
                bad = corrupt_similarity_list(sim, rng)
                with pytest.raises(SimilarityListInvariantError):
                    bad.validate()
        finally:
            set_invariant_checks(previous)

    @pytest.mark.parametrize("seed", range(12))
    def test_corrupted_bytes_always_differ(self, seed):
        from repro.testing.faults import corrupt_bytes

        rng = random.Random(seed)
        for data in (b"", b"\x00", b'{"format": 1}', bytes(range(256))):
            assert corrupt_bytes(data, rng) != data

    def test_injector_corrupts_bytes_at_read_site(self):
        injector = FaultInjector(
            [
                FaultSpec(
                    resilience.SITE_STORE_READ, mode=CORRUPT, max_faults=1
                )
            ],
            seed=9,
        )
        clean = b'{"videos": []}'
        damaged = injector.corrupt(resilience.SITE_STORE_READ, clean)
        assert isinstance(damaged, bytes) and damaged != clean
        # The cap is spent: later reads pass through untouched.
        assert injector.corrupt(resilience.SITE_STORE_READ, clean) == clean


class TestShortWrite:
    """The torn-write mode: a strict prefix, deterministically drawn."""

    @pytest.mark.parametrize("seed", range(8))
    def test_prefix_is_strict_and_deterministic(self, seed):
        data = bytes(range(64))

        def draw():
            injector = FaultInjector(
                [
                    FaultSpec(
                        resilience.SITE_WAL_APPEND,
                        mode=SHORT_WRITE,
                        max_faults=1,
                    )
                ],
                seed=seed,
            )
            return injector.shorten(resilience.SITE_WAL_APPEND, data)

        cut = draw()
        assert cut is not None and len(cut) < len(data)
        assert data.startswith(cut)
        assert cut == draw()  # same seed, same tear

    def test_cap_and_mode_filtering(self):
        data = b"framed record bytes"
        injector = FaultInjector(
            [
                FaultSpec(
                    resilience.SITE_WAL_APPEND,
                    mode=SHORT_WRITE,
                    max_faults=1,
                )
            ],
            seed=3,
        )
        # A raise/delay visit never consumes a short-write spec.
        injector.trip(resilience.SITE_WAL_APPEND)
        assert injector.shorten(resilience.SITE_WAL_APPEND, data) is not None
        # Cap spent: subsequent writes go through whole.
        assert injector.shorten(resilience.SITE_WAL_APPEND, data) is None
        # Empty payloads cannot be torn.
        assert injector.shorten(resilience.SITE_WAL_APPEND, b"") is None

    def test_production_hook_returns_none_without_injector(self):
        assert (
            resilience.fault_short_write(resilience.SITE_WAL_APPEND, b"abc")
            is None
        )


class TestChaosProperty:
    """The acceptance property, swept over sites × modes × seeds."""

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", [RAISE, CORRUPT])
    @pytest.mark.parametrize("site", resilience.FAULT_SITES)
    def test_never_a_silently_wrong_ranking(
        self, site, mode, seed, corpus, baseline
    ):
        expected, values = baseline
        formula = parse(CHAOS_QUERY)
        spec = FaultSpec(site, mode=mode, rate=0.6, max_faults=5)
        with inject(spec, seed=seed) as chaos:
            try:
                result = top_k_across_videos(
                    RetrievalEngine(), formula, corpus, k=6,
                    prune=False, lenient=True,
                )
            except ReproError:
                return  # a typed error is an acceptable outcome
        if result.partial:
            # Best-effort: the failures are named, and every ranked
            # segment still carries its exact fault-free value.
            assert result.failed_videos
            for outcome in result.outcomes:
                if outcome.degraded:
                    assert outcome.error is not None
            for segment in result:
                assert values[
                    (segment.video, segment.segment_id)
                ] == pytest.approx(segment.actual)
        else:
            # Fallbacks absorbed every fault (or none fired): the ranking
            # must be exactly the fault-free one.
            assert result == expected, (
                f"silently wrong ranking with {len(chaos.injected)} "
                f"faults at {site!r} ({mode})"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("site", resilience.FAULT_SITES)
    def test_strict_mode_is_exact_or_typed_error(
        self, site, seed, corpus, baseline
    ):
        expected, __ = baseline
        formula = parse(CHAOS_QUERY)
        spec = FaultSpec(site, rate=0.6, max_faults=5)
        with inject(spec, seed=seed):
            try:
                result = top_k_across_videos(
                    RetrievalEngine(), formula, corpus, k=6, prune=False,
                    policy=resilience.ResiliencePolicy(
                        atom_fallback=False, engine_fallback=False
                    ),
                )
            except ReproError:
                return
            except Exception as error:  # pragma: no cover - the assertion
                pytest.fail(f"untyped error escaped: {error!r}")
        assert result == expected

    @pytest.mark.parametrize("seed", SEEDS)
    def test_parallel_chaos_is_safe_too(self, seed, corpus, baseline):
        expected, values = baseline
        formula = parse(CHAOS_QUERY)
        spec = FaultSpec(resilience.SITE_TOPK_WORKER, rate=0.5, max_faults=3)
        with inject(spec, seed=seed):
            result = top_k_across_videos(
                RetrievalEngine(), formula, corpus, k=6,
                prune=False, parallelism=3,
                policy=resilience.ResiliencePolicy(
                    mode=resilience.LENIENT,
                    atom_fallback=False,
                    engine_fallback=False,
                ),
            )
        if result.partial:
            assert result.failed_videos
            for segment in result:
                assert values[
                    (segment.video, segment.segment_id)
                ] == pytest.approx(segment.actual)
        else:
            assert result == expected


class TestCorruptionBoundary:
    def test_gate_off_corruption_caught_at_topk_boundary(self, corpus):
        # With the construction-time invariant gate off (the production
        # default), a corrupted worker list must still be caught by the
        # trust-boundary validate() before it reaches the shared heap.
        formula = parse(CHAOS_QUERY)
        previous = set_invariant_checks(False)
        try:
            with inject(
                FaultSpec(
                    resilience.SITE_TOPK_WORKER, mode=CORRUPT, max_faults=1
                ),
                seed=2,
            ):
                result = top_k_across_videos(
                    RetrievalEngine(), formula, corpus, k=6,
                    prune=False, lenient=True,
                )
        finally:
            set_invariant_checks(previous)
        assert result.partial
        assert len(result.failed_videos) == 1
        failed = result.outcome_for(result.failed_videos[0])
        assert isinstance(failed.error, SimilarityListInvariantError)


class TestRecoveryPaths:
    def test_index_faults_recover_through_naive_atoms(self, corpus):
        instrument.reset()
        formula = parse(CHAOS_QUERY)
        video = next(iter(corpus.videos()))
        fault_free = RetrievalEngine().evaluate_video(
            formula, video, database=corpus
        )
        with resilience.scope():
            with inject(FaultSpec(resilience.SITE_INDEX_LOOKUP), seed=3):
                recovered = RetrievalEngine().evaluate_video(
                    formula, video, database=corpus
                )
        assert recovered == fault_free
        assert instrument.counters().get(instrument.ATOM_FALLBACK, 0) > 0

    def test_delay_faults_blow_the_deadline(self, corpus):
        formula = parse(CHAOS_QUERY)
        with inject(
            FaultSpec(
                resilience.SITE_ATOM_SCORE, mode=DELAY, delay_ms=30,
                max_faults=4,
            ),
            seed=4,
        ):
            result = top_k_across_videos(
                RetrievalEngine(), formula, corpus, k=6,
                budget=resilience.QueryBudget(deadline_ms=5),
                lenient=True,
            )
        assert result.partial
        assert result.failed_videos  # at least one video timed out
