"""Tests for the benchmark harness and the paper-style reporting."""

import pytest

from repro.bench.harness import (
    compare_systems,
    run_direct,
    run_sql,
    time_call,
)
from repro.bench.reporting import (
    format_table,
    perf_table_text,
    similarity_table_text,
)
from repro.core.simlist import SimilarityList
from repro.htl import parse
from repro.workloads.casablanca import man_woman_list, moving_train_list
from repro.workloads.synthetic import perf_workload


class TestHarness:
    def test_time_call_returns_result(self):
        sim = SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        measurement = time_call(lambda: sim, repeat=2)
        assert measurement.result is sim
        assert measurement.seconds >= 0.0

    def test_run_direct(self):
        lists = {
            "Man-Woman": man_woman_list(),
            "Moving-Train": moving_train_list(),
        }
        formula = parse(
            "atomic('Man-Woman') and eventually atomic('Moving-Train')"
        )
        measurement = run_direct(formula, lists)
        assert measurement.result.actual_at(1) == pytest.approx(12.382)

    def test_run_sql_matches_direct(self):
        lists = {
            "Man-Woman": man_woman_list(),
            "Moving-Train": moving_train_list(),
        }
        formula = parse(
            "atomic('Man-Woman') and eventually atomic('Moving-Train')"
        )
        direct = run_direct(formula, lists)
        sql = run_sql(formula, lists, n_segments=50)
        assert direct.result == sql.result

    def test_compare_systems(self):
        workload = perf_workload(500)
        row = compare_systems("$P1 until $P2", workload.lists, 500)
        assert row.results_equal
        assert row.size == 500
        assert row.speedup > 0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(("A", "Blong"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_similarity_table_layout(self):
        text = similarity_table_text(man_woman_list(), "Table 2. Man-Woman")
        assert text.splitlines()[0] == "Table 2. Man-Woman"
        assert "Start-id" in text
        assert "2.595" in text

    def test_ranked_ordering(self):
        text = similarity_table_text(man_woman_list(), ranked=True)
        assert text.index("6.26") < text.index("2.595")

    def test_trailing_zeros_trimmed(self):
        sim = SimilarityList.from_entries([((1, 1), 2.5)], 5.0)
        text = similarity_table_text(sim)
        assert "2.5" in text
        assert "2.500" not in text

    def test_perf_table(self):
        text = perf_table_text(
            "Table 5", [(10_000, 0.0015, 0.031), (50_000, 0.0075, 0.19)]
        )
        assert text.splitlines()[0] == "Table 5"
        assert "0.0015" in text
        assert "SQL-based" in text
