"""Shared fixtures for the serving suite.

The corpus is the shard suite's graded corpus (different per-video
similarity ceilings), small enough that a single query services in a
few milliseconds — SLA deadlines in these tests are generous multiples
of that, so the suites are timing-robust on slow CI machines.
"""

import pytest

from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.htl import parse
from repro.serve import EnginePool, RetrievalServer, SLAClass

from tests.shard.conftest import graded_corpus

FORMULA_TEXT = "$P1 and eventually $P2"
K = 6


def serve_classes(**overrides):
    """Generous deadlines (seconds, not milliseconds) so outcomes are
    decided by the scenario under test, never by scheduler jitter."""
    classes = {
        "interactive": SLAClass(
            "interactive", deadline_ms=10_000.0, queue_limit=32, priority=2
        ),
        "standard": SLAClass(
            "standard", deadline_ms=20_000.0, queue_limit=64, priority=1
        ),
        "batch": SLAClass(
            "batch", deadline_ms=30_000.0, queue_limit=128, priority=0
        ),
    }
    classes.update(overrides)
    return classes


@pytest.fixture
def corpus():
    return graded_corpus(n_videos=6, n_segments=16)


@pytest.fixture
def reference(corpus):
    """The unsharded, unpruned ranking every served result must match."""
    return top_k_across_videos(
        RetrievalEngine(), parse(FORMULA_TEXT), corpus, K, prune=False
    )


@pytest.fixture
def pool(corpus):
    return EnginePool.from_database(corpus, 2)


@pytest.fixture
def server(pool):
    server = RetrievalServer(pool, classes=serve_classes()).start()
    yield server
    server.close()


def request_for(text=FORMULA_TEXT, k=K, **kwargs):
    from repro.serve import QueryRequest

    return QueryRequest(parse(text), k, **kwargs)
