"""QueryBudget edge cases at the serving boundaries (DESIGN.md §14).

Covers the corners where the SLA-derived budget meets the pool:
admission with zero/negative remaining, step ceilings sliced across a
sharded pool, and budgets exhausting while the server is draining.
"""

import pytest

from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.errors import BudgetExceededError
from repro.htl import parse
from repro.serve import (
    EnginePool,
    RetrievalServer,
    SLAClass,
)
from repro.serve.request import STATUS_COMPLETED, STATUS_TIMED_OUT
from repro.shard import ShardedCorpus, slice_budget

from tests.serve.conftest import (
    FORMULA_TEXT,
    K,
    request_for,
    serve_classes,
)
from tests.shard.conftest import graded_corpus


@pytest.fixture
def corpus():
    return graded_corpus(n_videos=6, n_segments=16)


class TestAdmissionEdge:
    def test_whole_deadline_burned_in_queue_never_dispatches(self, corpus):
        """A fake clock jumps past the deadline between submit and
        dispatch: the worker resolves timed-out without touching an
        engine (attempts stays 0)."""
        now = [0.0]
        pool = EnginePool.from_database(corpus, 1)
        server = RetrievalServer(
            pool, classes=serve_classes(), clock=lambda: now[0]
        )
        server._started = True  # no threads: we drive dispatch by hand
        server.submit(request_for(sla="interactive"))
        now[0] = 11.0  # past the 10s interactive deadline
        ticket = server._queue.take(0.1)
        server._serve_one(pool.workers[0], ticket)
        result = ticket.result(0.0)
        assert result.status == STATUS_TIMED_OUT
        assert result.attempts == 0
        assert isinstance(result.error, BudgetExceededError)
        assert result.error.site == "serve-admit"
        assert server.stats().conserved

    def test_exactly_at_deadline_is_timed_out(self, corpus):
        now = [0.0]
        pool = EnginePool.from_database(corpus, 1)
        server = RetrievalServer(
            pool, classes=serve_classes(), clock=lambda: now[0]
        )
        server._started = True
        server.submit(request_for(sla="interactive"))
        now[0] = 10.0  # queued exactly the whole deadline
        ticket = server._queue.take(0.1)
        server._serve_one(pool.workers[0], ticket)
        assert ticket.result(0.0).status == STATUS_TIMED_OUT

    def test_queue_wait_shrinks_the_execution_budget(self, corpus):
        """The budget a worker runs under is deadline − queue wait, not
        the full deadline."""
        classes = serve_classes()
        sla = classes["interactive"]
        budget = sla.budget(queued_ms=9_000.0)
        remaining = budget.remaining_ms()
        assert remaining is not None
        assert remaining <= 1_000.0


class TestStepSlicing:
    def test_step_ceiling_slices_across_the_sharded_pool(self, corpus):
        """An SLA step ceiling flows submit → budget → scatter, where
        slice_budget divides it across shards (remainder to the
        earliest)."""
        sla = SLAClass(
            "batch", deadline_ms=30_000.0, max_steps=10, priority=0
        )
        budget = sla.budget(queued_ms=0.0)
        slices = slice_budget(budget, 3)
        assert [s.max_steps for s in slices] == [4, 3, 3]
        assert all(s.remaining_ms() > 0 for s in slices)

    def test_tiny_step_budget_times_out_strict_degrades_lenient(
        self, corpus
    ):
        """A 2-step batch budget over 3 shards (min one step each)
        cannot finish scoring.  Strict: the typed budget error resolves
        the request timed-out, no partial ranking leaks.  Lenient: an
        explicitly partial ranking with timed-out video outcomes."""
        classes = serve_classes(
            batch=SLAClass(
                "batch", deadline_ms=30_000.0, max_steps=2, priority=0
            )
        )
        pool = EnginePool.from_corpus(
            ShardedCorpus.from_database(corpus, 3), 1
        )
        with RetrievalServer(pool, classes=classes) as server:
            strict = server.query(
                FORMULA_TEXT, K, sla="batch", lenient=False
            )
            lenient = server.query(FORMULA_TEXT, K, sla="batch")
        assert strict.status == STATUS_TIMED_OUT
        assert isinstance(strict.error, BudgetExceededError)
        assert strict.topk is None  # nothing partial leaks out
        assert lenient.status == STATUS_COMPLETED
        assert lenient.degraded
        assert lenient.topk.partial

    def test_generous_step_budget_completes_exactly(self, corpus):
        reference = top_k_across_videos(
            RetrievalEngine(), parse(FORMULA_TEXT), corpus, K, prune=False
        )
        classes = serve_classes(
            batch=SLAClass(
                "batch",
                deadline_ms=30_000.0,
                max_steps=1_000_000,
                priority=0,
            )
        )
        pool = EnginePool.from_corpus(
            ShardedCorpus.from_database(corpus, 3), 1
        )
        with RetrievalServer(pool, classes=classes) as server:
            result = server.query(FORMULA_TEXT, K, sla="batch")
        assert result.status == STATUS_COMPLETED
        assert list(result.topk) == list(reference)


class TestExhaustionMidDrain:
    def test_deadlines_expiring_during_drain_are_swept(self, corpus):
        """Tickets whose deadline expires while the server drains end
        timed-out — the drain sweep and the expiry race, but every
        ticket is terminal and the ledger balances."""
        classes = serve_classes(
            batch=SLAClass("batch", deadline_ms=1.0, priority=0)
        )
        pool = EnginePool.from_database(corpus, 1)
        # initial_service_ms=0: the backlog estimator must not reject
        # these 1ms-deadline requests before the drain race under test.
        server = RetrievalServer(
            pool, classes=classes, initial_service_ms=0.0
        )
        server._started = True  # no workers: everything expires queued
        tickets = [
            server.submit(request_for(sla="batch")) for __ in range(4)
        ]
        stats = server.close(drain_timeout_ms=30.0)
        for ticket in tickets:
            result = ticket.result(0.0)
            assert result.status == STATUS_TIMED_OUT
            assert isinstance(result.error, BudgetExceededError)
        assert stats.timed_out == 4
        assert stats.conserved

    def test_inflight_budget_overrun_during_drain_is_timed_out(
        self, corpus
    ):
        """A running request whose step budget fires mid-drain resolves
        timed-out (not dropped, not completed-with-garbage)."""
        classes = serve_classes(
            batch=SLAClass(
                "batch", deadline_ms=30_000.0, max_steps=1, priority=0
            )
        )
        pool = EnginePool.from_database(corpus, 1)
        server = RetrievalServer(pool, classes=classes).start(warm=False)
        ticket = server.submit(request_for(sla="batch", lenient=False))
        stats = server.close()  # drain waits for the in-flight overrun
        result = ticket.result(0.0)
        assert result.status == STATUS_TIMED_OUT
        assert isinstance(result.error, BudgetExceededError)
        assert stats.conserved
