"""SLA classes and the deadline-minus-queue-wait budget derivation."""

import pytest

from repro.core.resilience import QueryBudget
from repro.errors import BudgetExceededError, ServeError
from repro.serve import SLAClass, default_classes, scaled, validate_classes


class TestSLAClass:
    def test_budget_is_deadline_minus_queue_wait(self):
        sla = SLAClass("interactive", deadline_ms=500.0)
        budget = sla.budget(queued_ms=200.0)
        assert isinstance(budget, QueryBudget)
        remaining = budget.remaining_ms()
        assert 0.0 < remaining <= 300.0

    def test_budget_carries_the_step_ceiling(self):
        sla = SLAClass("batch", deadline_ms=10_000.0, max_steps=1234)
        assert sla.budget(queued_ms=0.0).max_steps == 1234

    def test_exhausted_deadline_raises_at_admission(self):
        sla = SLAClass("interactive", deadline_ms=500.0)
        with pytest.raises(BudgetExceededError) as caught:
            sla.budget(queued_ms=500.0)
        assert caught.value.site == "serve-admit"

    def test_negative_remaining_raises_at_admission(self):
        sla = SLAClass("interactive", deadline_ms=500.0)
        with pytest.raises(BudgetExceededError):
            sla.budget(queued_ms=750.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_ms": 0.0},
            {"deadline_ms": -10.0},
            {"deadline_ms": 100.0, "max_steps": 0},
            {"deadline_ms": 100.0, "queue_limit": 0},
        ],
    )
    def test_rejects_nonsense_knobs(self, kwargs):
        with pytest.raises(ServeError):
            SLAClass("bad", **kwargs)


class TestDefaultClasses:
    def test_ladder_shape(self):
        classes = default_classes()
        assert set(classes) == {"interactive", "standard", "batch"}
        assert (
            classes["interactive"].deadline_ms
            < classes["standard"].deadline_ms
            < classes["batch"].deadline_ms
        )
        assert (
            classes["interactive"].priority
            > classes["standard"].priority
            > classes["batch"].priority
        )

    def test_scale_multiplies_deadlines_only(self):
        base = default_classes()
        wide = default_classes(scale=3.0)
        for name in base:
            assert wide[name].deadline_ms == base[name].deadline_ms * 3.0
            assert wide[name].priority == base[name].priority
            assert wide[name].queue_limit == base[name].queue_limit

    def test_scaled_preserves_identity_knobs(self):
        sla = SLAClass(
            "x", deadline_ms=100.0, max_steps=7, queue_limit=9, priority=4
        )
        wider = scaled(sla, 2.5)
        assert wider.deadline_ms == 250.0
        assert (wider.name, wider.max_steps, wider.queue_limit, wider.priority) == (
            "x",
            7,
            9,
            4,
        )


class TestValidateClasses:
    def test_accepts_a_consistent_ladder(self):
        classes = default_classes()
        assert validate_classes(classes) is classes

    def test_rejects_key_name_mismatch(self):
        with pytest.raises(ServeError):
            validate_classes(
                {"fast": SLAClass("slow", deadline_ms=100.0)}
            )

    def test_rejects_duplicate_priorities(self):
        with pytest.raises(ServeError):
            validate_classes(
                {
                    "a": SLAClass("a", deadline_ms=100.0, priority=1),
                    "b": SLAClass("b", deadline_ms=200.0, priority=1),
                }
            )

    def test_rejects_an_empty_ladder(self):
        with pytest.raises(ServeError):
            validate_classes({})
