"""Seeded chaos over the serving fault sites (DESIGN.md §14).

The two properties that must survive any injected fault schedule:

* **Conservation** — every admitted request terminates in exactly one
  of ``completed`` / ``timed-out`` / ``shed``; the ledger balances.
* **No silent corruption** — a ``completed`` result is either the exact
  fault-free ranking or explicitly degraded (``partial`` + error);
  never a silently wrong or duplicated ranking.

``CHAOS_SEED`` (CI matrix) varies the injection schedule; every run
asserts the same properties.
"""

import os

import pytest

from repro.core import resilience
from repro.core.engine import RetrievalEngine
from repro.core.topk import top_k_across_videos
from repro.errors import InjectedFaultError, ServeRejected
from repro.htl import parse
from repro.serve import EnginePool, RetrievalServer
from repro.serve.request import (
    STATUS_COMPLETED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
    TERMINAL_STATUSES,
)
from repro.testing.faults import FaultSpec, inject

from tests.serve.conftest import (
    FORMULA_TEXT,
    K,
    request_for,
    serve_classes,
)
from tests.shard.conftest import graded_corpus

SEED = int(os.environ.get("CHAOS_SEED", "1997"))


@pytest.fixture
def corpus():
    return graded_corpus(n_videos=6, n_segments=16)


@pytest.fixture
def reference(corpus):
    return top_k_across_videos(
        RetrievalEngine(), parse(FORMULA_TEXT), corpus, K, prune=False
    )


def assert_no_silent_corruption(result, reference):
    """A completed ranking is exact or *visibly* degraded — and never
    contains a duplicated segment."""
    assert result.status in TERMINAL_STATUSES
    if result.status != STATUS_COMPLETED:
        return
    keys = [(s.video, s.segment_id) for s in result.topk]
    assert len(keys) == len(set(keys)), "duplicated segment in ranking"
    if result.degraded:
        assert result.topk.partial or result.error is not None
    else:
        assert list(result.topk) == list(reference)


def run_storm(server, n_requests, slas=("interactive", "standard", "batch")):
    """Submit a burst, tolerate typed rejections, wait out every ticket."""
    tickets = []
    rejections = 0
    admit_faults = 0
    for position in range(n_requests):
        try:
            tickets.append(
                server.submit(request_for(sla=slas[position % len(slas)]))
            )
        except ServeRejected as rejection:
            assert rejection.reason
            assert rejection.retry_after_ms >= 0.0
            rejections += 1
        except InjectedFaultError:
            admit_faults += 1
    results = [ticket.result(60.0) for ticket in tickets]
    return tickets, results, rejections, admit_faults


class TestAdmitFaults:
    def test_admission_faults_never_lose_requests(self, corpus, reference):
        pool = EnginePool.from_database(corpus, 2)
        server = RetrievalServer(pool, classes=serve_classes()).start(
            warm=False
        )
        spec = FaultSpec(
            site=resilience.SITE_SERVE_ADMIT, rate=0.5, max_faults=6
        )
        try:
            with inject(spec, seed=SEED) as chaos:
                __, results, rejections, admit_faults = run_storm(server, 12)
        finally:
            stats = server.close()
        assert admit_faults == chaos.faults_at(resilience.SITE_SERVE_ADMIT)
        # Submitted splits exactly into admitted + rejected + faulted.
        assert stats.submitted == (
            stats.admitted + rejections + admit_faults
        )
        assert stats.conserved
        for result in results:
            assert_no_silent_corruption(result, reference)


class TestWorkerFaults:
    def test_worker_faults_retry_or_degrade_never_corrupt(
        self, corpus, reference
    ):
        pool = EnginePool.from_database(corpus, 2)
        server = RetrievalServer(
            pool, classes=serve_classes(), max_attempts=2
        ).start(warm=False)
        spec = FaultSpec(
            site=resilience.SITE_SERVE_WORKER, rate=0.5, max_faults=8
        )
        try:
            with inject(spec, seed=SEED) as chaos:
                __, results, *_ = run_storm(server, 12)
        finally:
            stats = server.close()
        assert len(results) == 12
        assert stats.conserved
        assert stats.completed + stats.timed_out + stats.shed == 12
        for result in results:
            assert_no_silent_corruption(result, reference)
        if chaos.faults_at(resilience.SITE_SERVE_WORKER) > 0:
            # Every injected fault surfaced as a retry or a visible
            # degradation, never silently.
            assert stats.requeued + stats.degraded > 0


class TestDrainFaults:
    def test_drain_fault_cannot_leak_tickets(self, corpus, reference):
        pool = EnginePool.from_database(corpus, 2)
        server = RetrievalServer(pool, classes=serve_classes()).start(
            warm=False
        )
        tickets = [server.submit(request_for()) for __ in range(6)]
        spec = FaultSpec(site=resilience.SITE_SERVE_DRAIN, max_faults=1)
        with inject(spec, seed=SEED) as chaos:
            stats = server.close()
        assert chaos.faults_at(resilience.SITE_SERVE_DRAIN) == 1
        assert stats.drain_faults == 1
        assert stats.conserved
        for ticket in tickets:
            result = ticket.result(0.0)  # terminal by conservation
            assert_no_silent_corruption(result, reference)


class TestFullStorm:
    def test_all_sites_at_once_conserve_and_never_corrupt(
        self, corpus, reference
    ):
        pool = EnginePool.from_database(corpus, 3)
        server = RetrievalServer(
            pool, classes=serve_classes(), max_attempts=2
        ).start(warm=False)
        specs = (
            FaultSpec(
                site=resilience.SITE_SERVE_ADMIT, rate=0.3, max_faults=4
            ),
            FaultSpec(
                site=resilience.SITE_SERVE_WORKER, rate=0.3, max_faults=6
            ),
            FaultSpec(site=resilience.SITE_SERVE_DRAIN, max_faults=1),
        )
        with inject(*specs, seed=SEED):
            try:
                tickets, results, rejections, admit_faults = run_storm(
                    server, 18
                )
            finally:
                stats = server.close()
        assert stats.submitted == 18
        assert stats.submitted == (
            stats.admitted + rejections + admit_faults
        )
        assert stats.conserved
        by_status = {
            STATUS_COMPLETED: 0,
            STATUS_TIMED_OUT: 0,
            STATUS_SHED: 0,
        }
        for result in results:
            by_status[result.status] += 1
            assert_no_silent_corruption(result, reference)
        assert by_status[STATUS_COMPLETED] == stats.completed
        assert by_status[STATUS_TIMED_OUT] == stats.timed_out
        assert by_status[STATUS_SHED] == stats.shed
