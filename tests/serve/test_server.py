"""The threaded server end to end: lifecycle, ledger, degradation."""

import threading

import pytest

from repro.core import resilience
from repro.errors import ServeError, ServeRejected
from repro.serve import (
    EnginePool,
    QueryRequest,
    RetrievalServer,
    ServeResult,
    Ticket,
)
from repro.serve.request import (
    STATUS_COMPLETED,
    STATUS_SHED,
    STATUS_TIMED_OUT,
)
from repro.shard import ShardedCorpus
from repro.testing.faults import FaultSpec, inject

from tests.serve.conftest import (
    FORMULA_TEXT,
    K,
    request_for,
    serve_classes,
)


class TestLifecycle:
    def test_submit_before_start_refused(self, pool):
        server = RetrievalServer(pool, classes=serve_classes())
        with pytest.raises(ServeError):
            server.submit(request_for())

    def test_double_start_refused(self, server):
        with pytest.raises(ServeError):
            server.start()

    def test_unknown_sla_refused(self, server):
        with pytest.raises(ServeError) as caught:
            server.submit(request_for(sla="platinum"))
        assert "platinum" in str(caught.value)

    def test_submit_after_close_rejected_closing(self, server):
        server.close()
        with pytest.raises(ServeRejected) as caught:
            server.submit(request_for())
        assert caught.value.reason == "closing"

    def test_close_is_idempotent(self, server):
        first = server.close()
        second = server.close()
        assert first.admitted == second.admitted

    def test_context_manager_drains(self, pool):
        with RetrievalServer(pool, classes=serve_classes()) as server:
            ticket = server.submit(request_for())
            result = ticket.result(30.0)
        assert result.status == STATUS_COMPLETED
        assert server.stats().conserved


class TestResults:
    def test_ranking_matches_the_direct_query(self, server, reference):
        result = server.query(FORMULA_TEXT, K, sla="interactive")
        assert result.status == STATUS_COMPLETED
        assert not result.degraded
        assert list(result.topk) == list(reference)
        assert result.raise_for_status() is result.topk

    def test_sharded_pool_matches_the_direct_query(self, corpus, reference):
        pool = EnginePool.from_corpus(
            ShardedCorpus.from_database(corpus, 3), 2
        )
        with RetrievalServer(pool, classes=serve_classes()) as server:
            result = server.query(FORMULA_TEXT, K)
        assert result.status == STATUS_COMPLETED
        assert list(result.topk) == list(reference)

    def test_timing_decomposition(self, server):
        result = server.query(FORMULA_TEXT, K)
        assert result.queue_ms >= 0.0
        assert result.service_ms > 0.0
        assert result.total_ms >= result.service_ms
        assert result.worker in {w.name for w in server.pool.workers}
        assert result.attempts == 1

    def test_per_request_profile_span(self, server):
        result = server.query(FORMULA_TEXT, K, profile=True)
        span = result.topk.profile
        assert span is not None
        assert span.kind == "serve"
        assert span.attrs["sla"] == "standard"
        # The query's own span tree nests under the serve span.
        kinds = {child.kind for child in span.children}
        assert "query" in kinds

    def test_payload_shape(self, server):
        payload = server.query(FORMULA_TEXT, K).to_payload()
        assert payload["status"] == "completed"
        assert payload["sla"] == "standard"
        assert {"queue_ms", "service_ms", "total_ms", "attempts"} <= set(
            payload
        )
        assert payload["result"]["segments"]

    def test_many_concurrent_clients_all_served(self, server, reference):
        results = []
        errors = []

        def client():
            try:
                results.append(server.query(FORMULA_TEXT, K))
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=client) for __ in range(12)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors
        assert len(results) == 12
        for result in results:
            assert result.status == STATUS_COMPLETED
            assert list(result.topk) == list(reference)
        stats = server.stats()
        assert stats.admitted == 12
        assert stats.conserved


class TestDegradation:
    def test_persistent_worker_fault_degrades_not_raises(
        self, pool, corpus
    ):
        server = RetrievalServer(
            pool, classes=serve_classes(), max_attempts=2
        ).start(warm=False)
        spec = FaultSpec(site=resilience.SITE_SERVE_WORKER)
        try:
            with inject(spec):
                result = server.query(FORMULA_TEXT, K)
        finally:
            stats = server.close()
        assert result.status == STATUS_COMPLETED
        assert result.degraded
        assert result.error is not None
        assert result.topk.partial
        # The degradation floor names every video as failed.
        assert sorted(o.video for o in result.topk.outcomes) == sorted(
            corpus.names()
        )
        assert result.attempts == 2
        assert stats.degraded == 1
        assert stats.conserved

    def test_transient_worker_fault_retries_to_success(
        self, pool, reference
    ):
        server = RetrievalServer(
            pool, classes=serve_classes(), max_attempts=3
        ).start(warm=False)
        spec = FaultSpec(site=resilience.SITE_SERVE_WORKER, max_faults=1)
        try:
            with inject(spec):
                result = server.query(FORMULA_TEXT, K)
        finally:
            stats = server.close()
        assert result.status == STATUS_COMPLETED
        assert not result.degraded
        assert list(result.topk) == list(reference)
        assert result.attempts == 2
        assert stats.requeued == 1
        assert stats.conserved

    def test_all_breakers_open_degrades_without_livelock(self, pool):
        server = RetrievalServer(pool, classes=serve_classes()).start(
            warm=False
        )
        for worker in pool.workers:
            for __ in range(worker.breaker.failure_threshold):
                worker.breaker.record_failure()
        assert not pool.healthy_workers()
        try:
            result = server.query(FORMULA_TEXT, K)
        finally:
            stats = server.close()
        assert result.status == STATUS_COMPLETED
        assert result.degraded
        assert stats.conserved
        assert stats.healthy_workers == 0


class TestDrain:
    def test_drain_sweeps_queued_work_timed_out(self, pool):
        # No worker threads at all: start() is skipped, so submitted
        # work stays queued and close() must sweep every ticket.
        server = RetrievalServer(pool, classes=serve_classes())
        server._started = True  # bypass start: no threads, no warmup
        tickets = [server.submit(request_for()) for __ in range(5)]
        stats = server.close(drain_timeout_ms=50.0)
        for ticket in tickets:
            result = ticket.result(0.0)
            assert result.status == STATUS_TIMED_OUT
        assert stats.timed_out == 5
        assert stats.conserved

    def test_stats_payload_shape(self, server):
        server.query(FORMULA_TEXT, K)
        payload = server.close().to_payload()
        assert payload["conserved"] is True
        assert payload["admitted"] == 1
        assert payload["completed"] == 1
        assert payload["queue_depths"] == {
            "interactive": 0,
            "standard": 0,
            "batch": 0,
        }
        assert payload["latency_ms"]["standard"]["count"] == 1
        assert payload["n_workers"] == 2


class TestTicket:
    def test_first_resolution_wins(self):
        ticket = Ticket(request_for(), 1, 0.0)
        won = ServeResult(1, "standard", STATUS_COMPLETED)
        lost = ServeResult(1, "standard", STATUS_TIMED_OUT)
        assert ticket.resolve(won)
        assert not ticket.resolve(lost)
        assert ticket.result(0.0) is won

    def test_transient_status_rejected(self):
        ticket = Ticket(request_for(), 1, 0.0)
        with pytest.raises(ServeError):
            ticket.resolve(ServeResult(1, "standard", "running"))

    def test_shed_result_raises_serve_rejected(self):
        result = ServeResult(
            1, "batch", STATUS_SHED, retry_after_ms=42.0
        )
        with pytest.raises(ServeRejected) as caught:
            result.raise_for_status()
        assert caught.value.retry_after_ms == 42.0
        assert caught.value.reason == "shed"

    def test_racing_resolvers_exactly_one_winner(self):
        ticket = Ticket(request_for(), 1, 0.0)
        wins = []
        barrier = threading.Barrier(8)

        def racer(n):
            barrier.wait()
            if ticket.resolve(ServeResult(1, "standard", STATUS_COMPLETED)):
                wins.append(n)

        threads = [
            threading.Thread(target=racer, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert len(wins) == 1
