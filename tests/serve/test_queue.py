"""The bounded priority queue: admission, shedding, dispatch order."""

import pytest

from repro.errors import ServeRejected
from repro.serve import RequestQueue, Ticket
from repro.serve.request import STATUS_SHED

from tests.serve.conftest import request_for, serve_classes


def make_queue(capacity=100, estimator=lambda ahead: 0.0, shed=None):
    classes = serve_classes()
    return (
        RequestQueue(
            classes,
            capacity,
            estimator=estimator,
            on_shed=(
                shed
                if shed is not None
                else lambda ticket, hint: None
            ),
        ),
        classes,
    )


_NEXT_ID = iter(range(1, 10_000))


def ticket(sla, submitted_at=0.0):
    return Ticket(request_for(sla=sla), next(_NEXT_ID), submitted_at)


class TestDispatchOrder:
    def test_strict_priority_interactive_first(self):
        queue, __ = make_queue()
        batch = ticket("batch")
        standard = ticket("standard")
        interactive = ticket("interactive")
        for t in (batch, standard, interactive):
            queue.offer(t, running=0)
        assert queue.take(0.1) is interactive
        assert queue.take(0.1) is standard
        assert queue.take(0.1) is batch

    def test_fifo_within_a_class(self):
        queue, __ = make_queue()
        first, second = ticket("standard"), ticket("standard")
        queue.offer(first, running=0)
        queue.offer(second, running=0)
        assert queue.take(0.1) is first
        assert queue.take(0.1) is second

    def test_take_times_out_empty(self):
        queue, __ = make_queue()
        assert queue.take(0.01) is None

    def test_requeue_goes_to_the_front(self):
        queue, __ = make_queue()
        first, second = ticket("standard"), ticket("standard")
        queue.offer(first, running=0)
        queue.offer(second, running=0)
        taken = queue.take(0.1)
        queue.requeue(taken)
        assert queue.take(0.1) is first


class TestAdmission:
    def test_class_queue_limit_rejects_with_hint(self):
        queue, classes = make_queue(estimator=lambda ahead: 7.0 * ahead)
        limit = classes["interactive"].queue_limit
        for __ in range(limit):
            queue.offer(ticket("interactive"), running=0)
        with pytest.raises(ServeRejected) as caught:
            queue.offer(ticket("interactive"), running=0)
        assert caught.value.reason == "queue-full"
        assert caught.value.retry_after_ms == 7.0 * limit
        assert caught.value.sla == "interactive"

    def test_backlog_estimate_rejects_doomed_requests(self):
        # Estimator says every request ahead costs 6s; the interactive
        # deadline is 10s, so two ahead (12s) is already hopeless.
        queue, __ = make_queue(estimator=lambda ahead: 6_000.0 * ahead)
        queue.offer(ticket("interactive"), running=0)
        with pytest.raises(ServeRejected) as caught:
            queue.offer(ticket("interactive"), running=1)
        assert caught.value.reason == "backlog"
        assert caught.value.retry_after_ms > 0

    def test_backlog_counts_only_equal_or_higher_priority(self):
        # A wall of queued batch work must not starve interactive
        # admission: batch is *behind* interactive in dispatch order.
        queue, __ = make_queue(estimator=lambda ahead: 6_000.0 * ahead)
        for __ in range(5):
            queue.offer(ticket("batch"), running=0)
        queue.offer(ticket("interactive"), running=0)  # must admit

    def test_closed_queue_rejects_closing(self):
        queue, __ = make_queue()
        queue.close()
        with pytest.raises(ServeRejected) as caught:
            queue.offer(ticket("standard"), running=0)
        assert caught.value.reason == "closing"


class TestShedding:
    def test_capacity_evicts_oldest_lowest_priority(self):
        shed = []
        queue, __ = make_queue(
            capacity=3, shed=lambda t, hint: shed.append(t)
        )
        old_batch = ticket("batch")
        queue.offer(old_batch, running=0)
        queue.offer(ticket("batch"), running=0)
        queue.offer(ticket("standard"), running=0)
        # At capacity: an interactive arrival sheds the oldest batch.
        queue.offer(ticket("interactive"), running=0)
        assert shed == [old_batch]
        assert queue.depth("batch") == 1

    def test_batch_shed_before_standard(self):
        shed = []
        queue, __ = make_queue(
            capacity=2, shed=lambda t, hint: shed.append(t)
        )
        standard = ticket("standard")
        batch = ticket("batch")
        queue.offer(standard, running=0)
        queue.offer(batch, running=0)
        queue.offer(ticket("interactive"), running=0)
        assert shed == [batch]
        assert queue.depth("standard") == 1

    def test_never_sheds_to_make_room_for_equal_priority(self):
        shed = []
        queue, __ = make_queue(
            capacity=2, shed=lambda t, hint: shed.append(t)
        )
        queue.offer(ticket("batch"), running=0)
        queue.offer(ticket("batch"), running=0)
        with pytest.raises(ServeRejected) as caught:
            queue.offer(ticket("batch"), running=0)
        assert caught.value.reason == "queue-full"
        assert shed == []

    def test_interactive_never_shed(self):
        shed = []
        queue, __ = make_queue(
            capacity=2, shed=lambda t, hint: shed.append(t)
        )
        queue.offer(ticket("interactive"), running=0)
        queue.offer(ticket("interactive"), running=0)
        with pytest.raises(ServeRejected):
            queue.offer(ticket("interactive"), running=0)
        assert shed == []


class TestDrain:
    def test_drain_remaining_empties_every_class(self):
        queue, __ = make_queue()
        tickets = [ticket("batch"), ticket("standard"), ticket("interactive")]
        for t in tickets:
            queue.offer(t, running=0)
        leftovers = queue.drain_remaining()
        assert sorted(t.request_id for t in leftovers) == sorted(
            t.request_id for t in tickets
        )
        assert queue.depth() == 0

    def test_depths_gauge(self):
        queue, __ = make_queue()
        queue.offer(ticket("batch"), running=0)
        queue.offer(ticket("batch"), running=0)
        queue.offer(ticket("interactive"), running=0)
        assert queue.depths() == {
            "interactive": 1,
            "standard": 0,
            "batch": 2,
        }
