"""Tests for the video analyzer substrate: features, cut detection,
annotation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyzer import (
    AnnotationRule,
    CutDetectorConfig,
    Frame,
    ShotSpec,
    VideoAnalyzer,
    boundary_accuracy,
    detect_cuts,
    detect_stream,
    histogram_difference,
    synthesize_stream,
)
from repro.analyzer.features import N_BINS
from repro.core import instrument, resilience
from repro.errors import ReproError, WorkloadError
from repro.model.metadata import Relationship, make_object
from repro.testing.faults import RAISE, FaultSpec, inject


class TestFeatures:
    def test_histograms_normalised(self):
        stream = synthesize_stream([ShotSpec(5)], seed=1)
        for frame in stream.frames:
            assert sum(frame.histogram) == pytest.approx(1.0)
            assert len(frame.histogram) == N_BINS

    def test_boundaries_recorded(self):
        stream = synthesize_stream(
            [ShotSpec(4, "a"), ShotSpec(6, "b")], seed=1
        )
        assert stream.boundaries == [0, 4]
        assert stream.labels == ["a", "b"]
        assert len(stream) == 10

    def test_within_shot_differences_small(self):
        stream = synthesize_stream([ShotSpec(10)], seed=2, noise=0.005)
        diffs = [
            histogram_difference(a, b)
            for a, b in zip(stream.frames, stream.frames[1:])
        ]
        assert max(diffs) < 0.2

    def test_cross_shot_difference_large(self):
        stream = synthesize_stream([ShotSpec(5), ShotSpec(5)], seed=3)
        boundary_diff = histogram_difference(
            stream.frames[4], stream.frames[5]
        )
        assert boundary_diff > 0.4

    def test_empty_plan_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_stream([])

    def test_zero_length_shot_rejected(self):
        with pytest.raises(WorkloadError):
            synthesize_stream([ShotSpec(0)])

    def test_bad_histogram_size_rejected(self):
        with pytest.raises(WorkloadError):
            Frame((0.5, 0.5))

    def test_negative_histogram_entries_rejected(self):
        histogram = [0.0] * N_BINS
        histogram[3] = -0.25
        with pytest.raises(WorkloadError, match="non-negative"):
            Frame(tuple(histogram))

    def test_non_finite_histogram_entries_rejected(self):
        for poison in (float("nan"), float("inf"), -float("inf")):
            histogram = [1.0 / N_BINS] * N_BINS
            histogram[0] = poison
            with pytest.raises(WorkloadError, match="finite"):
                Frame(tuple(histogram))

    def test_non_numeric_histogram_entries_rejected(self):
        histogram = [1.0 / N_BINS] * N_BINS
        histogram[0] = True  # bool is not a histogram mass
        with pytest.raises(WorkloadError, match="must be a number"):
            Frame(tuple(histogram))

    def test_zero_total_frames_rejected_at_comparison(self):
        blank = Frame((0.0,) * N_BINS)  # a blank frame is representable…
        lit = Frame((1.0 / N_BINS,) * N_BINS)
        with pytest.raises(WorkloadError, match="zero-total"):
            histogram_difference(blank, lit)  # …but never comparable
        with pytest.raises(WorkloadError, match="zero-total"):
            histogram_difference(lit, blank)


class TestCutDetection:
    def test_single_shot_no_cuts(self):
        stream = synthesize_stream([ShotSpec(20)], seed=4)
        shots = detect_stream(stream)
        assert len(shots) == 1
        assert (shots[0].first, shots[0].last) == (0, 19)

    def test_clean_cuts_found(self):
        stream = synthesize_stream(
            [ShotSpec(15, "a"), ShotSpec(10, "b"), ShotSpec(25, "c")], seed=5
        )
        shots = detect_stream(stream)
        recall, precision = boundary_accuracy(shots, stream.boundaries)
        assert recall == 1.0
        assert precision == 1.0

    def test_shots_partition_the_stream(self):
        stream = synthesize_stream(
            [ShotSpec(8), ShotSpec(9), ShotSpec(7)], seed=6
        )
        shots = detect_stream(stream)
        covered = []
        for shot in shots:
            covered.extend(range(shot.first, shot.last + 1))
        assert covered == list(range(len(stream)))

    def test_min_shot_length_respected(self):
        stream = synthesize_stream(
            [ShotSpec(5), ShotSpec(5)], seed=7
        )
        config = CutDetectorConfig(min_shot_length=8)
        shots = detect_cuts(stream.frames, config)
        assert all(len(shot) >= 1 for shot in shots)
        assert len(shots) == 1  # cut suppressed by the length constraint

    def test_empty_input(self):
        assert detect_cuts([]) == []

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            CutDetectorConfig(hard_threshold=0.0)
        with pytest.raises(WorkloadError):
            CutDetectorConfig(window=0)
        with pytest.raises(WorkloadError):
            CutDetectorConfig(min_shot_length=0)

    @given(
        st.lists(
            st.integers(6, 20).map(lambda n: ShotSpec(n)),
            min_size=1,
            max_size=6,
        ),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_detectable_boundaries_found_on_clean_streams(self, shots, seed):
        """Every boundary whose histogram jump clears the hard threshold
        must be detected.  (Two random shot signatures can occasionally be
        near-identical; such boundaries are inherently invisible to
        histogram differencing, so they are excluded from the claim.)"""
        stream = synthesize_stream(shots, seed=seed, noise=0.004)
        detected = detect_stream(stream)
        detected_starts = {shot.first for shot in detected}
        threshold = CutDetectorConfig().hard_threshold
        for boundary in stream.boundaries[1:]:
            jump = histogram_difference(
                stream.frames[boundary - 1], stream.frames[boundary]
            )
            if jump >= threshold:
                assert boundary in detected_starts, (
                    f"missed detectable boundary at {boundary} (jump {jump:.2f})"
                )


class TestAnnotation:
    def rules(self):
        return {
            "train": AnnotationRule(
                objects=[make_object("t1", "train")],
                relationships=[Relationship("moving", ("t1",))],
                attributes={"scenery": "rails"},
            )
        }

    def test_annotate_builds_two_level_video(self):
        stream = synthesize_stream(
            [ShotSpec(10, "talk"), ShotSpec(10, "train")], seed=8
        )
        analyzer = VideoAnalyzer(rules=self.rules())
        video = analyzer.annotate(stream, "clip", {"type": "news"})
        assert video.n_levels == 2
        shots = video.nodes_at_level(2)
        assert len(shots) == 2
        assert video.root.metadata.segment_attribute("type").value == "news"

    def test_rule_metadata_attached(self):
        stream = synthesize_stream(
            [ShotSpec(10, "talk"), ShotSpec(10, "train")], seed=9
        )
        analyzer = VideoAnalyzer(rules=self.rules())
        video = analyzer.annotate(stream, "clip")
        train_shot = video.nodes_at_level(2)[1].metadata
        assert train_shot.has_object("t1")
        assert train_shot.segment_attribute("scenery").value == "rails"
        assert train_shot.segment_attribute("label").value == "train"
        talk_shot = video.nodes_at_level(2)[0].metadata
        assert not talk_shot.has_object("t1")

    def test_frame_bookkeeping(self):
        stream = synthesize_stream([ShotSpec(12, "talk")], seed=10)
        analyzer = VideoAnalyzer()
        video = analyzer.annotate(stream, "clip")
        shot = video.nodes_at_level(2)[0].metadata
        assert shot.segment_attribute("first_frame").value == 0
        assert shot.segment_attribute("last_frame").value == 11
        assert shot.segment_attribute("n_frames").value == 12

    def test_annotated_video_is_queryable(self):
        from repro.core.engine import RetrievalEngine
        from repro.htl import parse

        stream = synthesize_stream(
            [ShotSpec(10, "talk"), ShotSpec(10, "train"), ShotSpec(8, "talk")],
            seed=11,
        )
        analyzer = VideoAnalyzer(rules=self.rules())
        video = analyzer.annotate(stream, "clip")
        engine = RetrievalEngine()
        result = engine.evaluate_video(
            parse("eventually exists t . moving(t)"), video
        )
        assert result.actual_at(1) == pytest.approx(1.0)
        assert result.actual_at(2) == pytest.approx(1.0)
        assert result.actual_at(3) == 0.0


class TestSignatureAttachment:
    def test_every_shot_carries_its_mean_histogram(self):
        from repro.pictures.signature import average_histograms

        stream = synthesize_stream(
            [ShotSpec(10, "a"), ShotSpec(12, "b")], seed=21
        )
        video = VideoAnalyzer().annotate(stream, "clip")
        shots = video.nodes_at_level(2)
        assert len(shots) == 2
        for node in shots:
            metadata = node.metadata
            first = metadata.segment_attribute("first_frame").value
            last = metadata.segment_attribute("last_frame").value
            expected = average_histograms(
                [f.histogram for f in stream.frames[first : last + 1]]
            )
            assert metadata.signature == expected

    def test_annotated_video_answers_looks_like(self):
        from repro.core.engine import RetrievalEngine
        from repro.htl import parse
        from repro.pictures.signature import resolve_clips

        stream = synthesize_stream(
            [ShotSpec(10, "a"), ShotSpec(10, "b")], seed=22
        )
        video = VideoAnalyzer().annotate(stream, "clip")
        shots = [node.metadata for node in video.nodes_at_level(2)]
        formula = resolve_clips(
            parse("looks_like('first', 0.99)"),
            {"first": [shots[0].signature]},
        )
        result = RetrievalEngine().evaluate_video(formula, video)
        assert result.actual_at(1) == 1.0  # the example itself
        assert result.actual_at(2) == 0.0  # an unrelated shot


class TestSignatureBuildChaos:
    """The ``signature-build`` fault site: a broken feature extractor
    degrades shots to annotation-only metadata, never aborts analysis."""

    def stream(self):
        return synthesize_stream(
            [ShotSpec(10, "talk"), ShotSpec(10, "train")], seed=23
        )

    def rules(self):
        return {
            "train": AnnotationRule(objects=[make_object("t1", "train")])
        }

    def test_direct_caller_sees_the_typed_error(self):
        analyzer = VideoAnalyzer()
        stream = self.stream()
        shot = analyzer.segment(stream)[0]
        spec = FaultSpec(resilience.SITE_SIGNATURE_BUILD, mode=RAISE)
        with inject(spec):
            with pytest.raises(ReproError):
                analyzer.signature_of(stream, shot)

    def test_annotation_survives_with_named_degradation(self):
        analyzer = VideoAnalyzer(rules=self.rules())
        stream = self.stream()
        fault_free = analyzer.annotate(stream, "clip")
        instrument.reset()
        spec = FaultSpec(resilience.SITE_SIGNATURE_BUILD, mode=RAISE)
        with inject(spec):
            degraded = analyzer.annotate(stream, "clip")
        shots = [node.metadata for node in degraded.nodes_at_level(2)]
        # Every shot was produced, signature-less, and the degradation
        # is named: one counter bump per degraded shot.
        assert len(shots) == len(fault_free.nodes_at_level(2)) == 2
        assert all(shot.signature is None for shot in shots)
        assert (
            instrument.counters()[instrument.SIGNATURE_DEGRADED] == 2
        )

    def test_annotation_retrieval_unaffected_by_degradation(self):
        from repro.core.engine import RetrievalEngine
        from repro.htl import parse
        from repro.pictures.signature import resolve_clips

        analyzer = VideoAnalyzer(rules=self.rules())
        stream = self.stream()
        fault_free = analyzer.annotate(stream, "clip")
        spec = FaultSpec(resilience.SITE_SIGNATURE_BUILD, mode=RAISE)
        with inject(spec):
            degraded = analyzer.annotate(stream, "clip")
        engine = RetrievalEngine()
        annotation_query = parse("eventually exists t . present(t)")
        # Annotation-only retrieval: exactly the fault-free ranking.
        assert engine.evaluate_video(
            annotation_query, degraded
        ) == engine.evaluate_video(annotation_query, fault_free)
        # Content retrieval degrades soundly: signature-less segments
        # score 0 — an empty ranking, never a wrong one.
        clip = [
            node.metadata.signature for node in fault_free.nodes_at_level(2)
        ]
        content_query = resolve_clips(
            parse("looks_like('q', 0.5)"), {"q": clip}
        )
        empty = engine.evaluate_video(content_query, degraded)
        assert all(
            empty.actual_at(position) == 0.0
            for position in (1, 2)
        )
        full = engine.evaluate_video(content_query, fault_free)
        assert full.actual_at(1) == 1.0
