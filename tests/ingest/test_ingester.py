"""Ingester behavior: incremental maintenance ≡ rebuild, cache warmth,
commit listeners, serving-pool refresh."""

import random

import pytest

from repro.core.cache import EvaluationCache
from repro.core.engine import RetrievalEngine
from repro.errors import IngestError
from repro.htl import parse
from repro.ingest import Ingester, initialise
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.model.serialize import database_to_dict
from repro.serve import EnginePool
from repro.workloads.synthetic import random_similarity_list


def make_segments(n, seed=0):
    rng = random.Random(seed)
    segments = []
    for index in range(n):
        objects = [make_object(f"o{index % 3}", "train")]
        if rng.random() < 0.5:
            objects.append(make_object("p1", "person", height=100))
        segments.append(SegmentMetadata(objects=objects))
    return segments


def seed_database():
    rng = random.Random(5)
    database = VideoDatabase()
    database.add(flat_video("seed0", make_segments(6, seed=1)))
    database.register_atomic(
        "P1", "seed0", random_similarity_list(6, rng=rng)
    )
    return database


def test_incremental_append_equals_rebuild_from_scratch(tmp_path):
    """The tentpole identity: appending segments through the ingester
    produces the same documents, the same picture index, and the same
    rankings as building the video whole."""
    first = make_segments(5, seed=2)
    second = make_segments(3, seed=3)

    ingester = initialise(tmp_path, seed_database())
    ingester.add_video("live0", first)
    ingester.append_segments("live0", second)
    ingester.commit()
    live = ingester.database.get("live0")

    oracle_db = seed_database()
    oracle_db.add(
        flat_video("live0", make_segments(5, seed=2) + make_segments(3, seed=3))
    )
    oracle = oracle_db.get("live0")

    assert database_to_dict(ingester.database) == database_to_dict(oracle_db)
    live_index = live.root.pictures_at_level(2).index
    oracle_index = oracle.root.pictures_at_level(2).index
    assert live_index.to_dict() == oracle_index.to_dict()

    formula = parse("exists x . present(x) and type(x) = 'person'")
    assert RetrievalEngine().evaluate_video(
        formula, live, database=ingester.database
    ) == RetrievalEngine().evaluate_video(formula, oracle, database=oracle_db)
    ingester.close()


def test_append_keeps_other_videos_cache_warm(tmp_path):
    ingester = initialise(tmp_path, seed_database())
    ingester.add_video("live0", make_segments(4))
    ingester.commit()
    cache = EvaluationCache()
    engine = RetrievalEngine(cache=cache)
    formula = parse("eventually $P1")
    seed_video = ingester.database.get("seed0")
    engine.evaluate_video(formula, seed_video, database=ingester.database)
    # Streaming into live0 must not cost seed0 its memoized results.
    ingester.append_segments("live0", make_segments(2, seed=9))
    ingester.commit()
    engine.evaluate_video(formula, seed_video, database=ingester.database)
    assert cache.stats().invalidations == 0
    assert cache.stats().list_hits == 1
    ingester.close()


def test_append_invalidates_only_the_touched_video(tmp_path):
    rng = random.Random(13)
    ingester = initialise(tmp_path, seed_database())
    ingester.add_video("live0", make_segments(4))
    ingester.add_annotations(
        "live0", "P1", random_similarity_list(4, rng=rng)
    )
    ingester.commit()
    cache = EvaluationCache()
    engine = RetrievalEngine(cache=cache)
    formula = parse("eventually $P1")
    live = ingester.database.get("live0")
    stale = engine.evaluate_video(formula, live, database=ingester.database)
    ingester.add_annotations(
        "live0", "P1", random_similarity_list(4, rng=rng)
    )
    ingester.commit()
    fresh = engine.evaluate_video(formula, live, database=ingester.database)
    assert cache.stats().invalidations >= 1
    assert fresh == RetrievalEngine().evaluate_video(
        formula, live, database=ingester.database
    )
    ingester.close()


def test_commit_listeners_receive_the_batch(tmp_path):
    batches = []
    ingester = initialise(tmp_path, seed_database())
    ingester.add_listener(batches.append)
    ingester.add_video("live0", make_segments(2))
    ingester.add_video("live1", make_segments(2))
    ingester.commit()
    ingester.append_segments("live0", make_segments(1, seed=4))
    ingester.commit()
    ingester.commit()  # empty commit: no callback payload
    assert batches == [("live0", "live1"), ("live0",)]
    ingester.close()


def test_auto_commit_batches_by_record_count(tmp_path):
    ingester = initialise(tmp_path, seed_database(), fsync=False)
    ingester.auto_commit = 2
    ingester.add_video("live0", make_segments(1))
    assert ingester.pending == 1
    ingester.append_segments("live0", make_segments(1, seed=7))
    assert ingester.pending == 0  # batch boundary hit: fsynced
    ingester.close()
    with pytest.raises(IngestError):
        Ingester(tmp_path, auto_commit=0)


def test_pool_refresh_as_commit_listener(tmp_path):
    ingester = initialise(tmp_path, seed_database())
    pool = EnginePool.from_database(ingester.database, 2)
    pool.warm()
    ingester.add_listener(pool.refresh)
    ingester.add_video("live0", make_segments(3))
    ingester.commit()
    live = ingester.database.get("live0")
    # refresh built the new video's serving-level index eagerly...
    assert live.root._pictures is not None
    system = live.root.pictures_at_level(2)
    assert len(system.segments) == 3
    # ...and an append keeps extending the same warm system.
    ingester.append_segments("live0", make_segments(2, seed=8))
    ingester.commit()
    assert len(live.root.pictures_at_level(2).segments) == 5
    # Refreshing a named subset only touches that subset.
    assert pool.refresh(("live0",)) == 1
    assert pool.refresh() == len(ingester.database)
    ingester.close()


def test_validation_failures_never_reach_the_log(tmp_path):
    ingester = initialise(tmp_path, seed_database())
    before = ingester.last_sequence
    with pytest.raises(IngestError):
        ingester.add_video("seed0", [])  # duplicate name
    with pytest.raises(IngestError):
        ingester.append_segments("ghost", make_segments(1))
    with pytest.raises(IngestError):
        ingester.append_segments("seed0", [])
    assert ingester.last_sequence == before
    assert ingester.pending == 0
    ingester.close()
    # The log replays clean: nothing poisonous was persisted.
    reopened = Ingester(tmp_path)
    assert reopened.recovered.replayed == 0
    reopened.close()


def test_closed_ingester_refuses_mutations(tmp_path):
    ingester = initialise(tmp_path, seed_database())
    ingester.close()
    with pytest.raises(IngestError, match="closed"):
        ingester.add_video("live0", [])
