"""Recovery unit tests: tails, corruption, watermarks, delta chains.

The chaos sweep (test_ingest_chaos.py) proves the invariant under
arbitrary crash points; these tests pin the individual mechanisms —
quarantine-never-delete, watermark skipping, orphan tolerance — with
hand-placed damage.
"""

import json
import os
import random

import pytest

from repro.core import resilience
from repro.errors import (
    IngestError,
    InjectedFaultError,
    WALCorruptionError,
)
from repro.ingest import (
    Compactor,
    IngestLayout,
    Ingester,
    initialise,
    read_manifest,
    recover,
)
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.model.serialize import database_to_dict
from repro.testing.faults import CORRUPT, RAISE, FaultSpec, inject
from repro.workloads.synthetic import random_similarity_list


def seed_database(n_segments=4, seed=3):
    rng = random.Random(seed)
    database = VideoDatabase()
    segments = [
        SegmentMetadata(objects=[make_object(f"o{i}", "train")])
        for i in range(n_segments)
    ]
    video = database.add(flat_video("seed0", segments))
    database.register_atomic(
        "P1", video.name, random_similarity_list(n_segments, rng=rng)
    )
    return database


def recovered_dict(root, **kwargs):
    state = recover(root, **kwargs)
    state.wal.close()
    return database_to_dict(state.database), state


def crash(ingester):
    """Abandon an ingester as a crash would: drop the handle, commit
    nothing (``close()`` would flush-and-commit, which a crash never
    does)."""
    ingester._wal.close()
    ingester._closed = True


def test_recovery_is_idempotent_after_torn_tail(tmp_path):
    ingester = initialise(tmp_path, seed_database())
    ingester.add_video("live0", [SegmentMetadata()])
    ingester.commit()
    # Appended, never committed: a torn tail by definition.
    ingester.append_segments("live0", [SegmentMetadata()])
    crash(ingester)

    first, state = recovered_dict(tmp_path)
    assert state.replayed == 1 and state.dirty == ("live0",)
    assert len(state.quarantined) == 1
    assert os.path.exists(state.quarantined[0])
    assert len(state.database.get("live0").nodes_at_level(2)) == 1

    second, again = recovered_dict(tmp_path)
    assert second == first
    assert again.quarantined == ()  # nothing left to truncate


def test_corruption_inside_committed_prefix_is_typed_and_quarantined(
    tmp_path,
):
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata(), SegmentMetadata()])
        ingester.commit()
    layout = IngestLayout(tmp_path)
    with open(layout.wal_log_path, "r+b") as handle:
        data = handle.read()
        position = len(data) // 2
        handle.seek(position)
        handle.write(bytes([data[position] ^ 0x40]))
    with pytest.raises(WALCorruptionError) as caught:
        recover(tmp_path)
    assert caught.value.quarantined
    for path in caught.value.quarantined:
        assert os.path.exists(path)
    # Never deleted: the damaged log is still there, byte for byte.
    assert os.path.getsize(layout.wal_log_path) == len(data)


def test_replay_skips_records_below_the_delta_watermark(tmp_path):
    """Crash between manifest commit and WAL reset: replay must not
    double-apply the folded records."""
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        ingester.append_segments("live0", [SegmentMetadata()])
        ingester.commit()
        # A checkpoint whose WAL reset never happened: call the
        # compactor directly, leaving the log full.
        compactor = Compactor(ingester.layout)
        info = compactor.checkpoint(
            ingester.database,
            dirty=ingester.dirty,
            wal_through=ingester._wal.last_committed_sequence,
        )
        assert info is not None and info.wal_through == 2

    document, state = recovered_dict(tmp_path)
    assert state.skipped == 2 and state.replayed == 0
    assert state.deltas == (info.delta,)
    assert state.dirty == ()
    assert len(state.database.get("live0").nodes_at_level(2)) == 2

    # And the next real checkpoint path (Ingester open) converges too.
    with Ingester(tmp_path) as ingester:
        assert database_to_dict(ingester.database) == document


def test_orphan_delta_files_are_ignored(tmp_path):
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        ingester.checkpoint()
    layout = IngestLayout(tmp_path)
    orphan = os.path.join(layout.deltas_dir, "delta-000099.json")
    with open(orphan, "w", encoding="utf-8") as handle:
        handle.write("{not even json")
    document, state = recovered_dict(tmp_path)
    assert state.deltas == ("delta-000001.json",)
    assert Compactor(layout).orphans() == ["delta-000099.json"]
    # Orphans must not disturb numbering monotonicity either.
    with Ingester(tmp_path) as ingester:
        ingester.append_segments("live0", [SegmentMetadata()])
        info = ingester.checkpoint()
    assert info.delta == "delta-000100.json"


def test_damaged_delta_is_quarantined_never_deleted(tmp_path):
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        info = ingester.checkpoint()
    layout = IngestLayout(tmp_path)
    delta_path = os.path.join(layout.deltas_dir, info.delta)
    with open(delta_path, "r+b") as handle:
        handle.seek(10)
        handle.write(b"\xff")
    with pytest.raises(IngestError, match="digest"):
        recover(tmp_path)
    assert os.path.exists(delta_path)  # original intact
    quarantined = os.listdir(layout.quarantine_dir)
    assert any(info.delta in name for name in quarantined)
    # Unverified load still refuses junk structurally, but a digest-only
    # flip inside a valid JSON string may pass: only assert the verified
    # path here.


def test_manifest_naming_a_missing_delta_is_typed(tmp_path):
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        info = ingester.checkpoint()
    layout = IngestLayout(tmp_path)
    os.rename(
        os.path.join(layout.deltas_dir, info.delta),
        os.path.join(layout.deltas_dir, "stolen.bin"),
    )
    with pytest.raises(IngestError, match="unreadable"):
        recover(tmp_path)


def test_unparseable_manifest_is_typed(tmp_path):
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        ingester.checkpoint()
    layout = IngestLayout(tmp_path)
    with open(layout.deltas_manifest_path, "w", encoding="utf-8") as handle:
        handle.write("]]junk")
    with pytest.raises(IngestError, match="unreadable"):
        read_manifest(layout)


def test_crash_during_replay_converges_on_rerun(tmp_path):
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        ingester.append_segments("live0", [SegmentMetadata()])
        ingester.commit()
    with inject(
        FaultSpec(resilience.SITE_WAL_REPLAY, mode=RAISE, max_faults=1, skip=2)
    ):
        with pytest.raises(InjectedFaultError):
            recover(tmp_path)
    document, state = recovered_dict(tmp_path)
    assert state.replayed == 2
    assert len(state.database.get("live0").nodes_at_level(2)) == 2


@pytest.mark.parametrize("seed", [11, 1997, 20260806])
def test_rotted_committed_bytes_surface_as_corruption(tmp_path, seed):
    with initialise(tmp_path / str(seed), seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        ingester.commit()
    with inject(
        FaultSpec(resilience.SITE_WAL_REPLAY, mode=CORRUPT, max_faults=1),
        seed=seed,
    ):
        with pytest.raises(WALCorruptionError) as caught:
            recover(tmp_path / str(seed))
    for path in caught.value.quarantined:
        assert os.path.exists(path)


def test_initialise_refuses_an_existing_directory(tmp_path):
    with initialise(tmp_path, seed_database()):
        pass
    with pytest.raises(IngestError, match="already holds"):
        initialise(tmp_path, seed_database())


def test_commit_marker_junk_is_typed(tmp_path):
    with initialise(tmp_path, seed_database()) as ingester:
        ingester.add_video("live0", [SegmentMetadata()])
        ingester.commit()
    layout = IngestLayout(tmp_path)
    with open(layout.wal_commit_path, "w", encoding="utf-8") as handle:
        json.dump({"format": 1}, handle)  # missing required fields
    with pytest.raises(IngestError, match="unreadable"):
        recover(tmp_path)
