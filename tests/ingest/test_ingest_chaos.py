"""Crash-recovery sweep for streaming ingestion (DESIGN.md §15).

The invariant, swept deterministically: with a single fault injected at
*any* boundary of the ingest protocol — any WAL append (including a
genuinely torn short write), any commit fsync, any marker/delta/manifest
write, the compaction commit point — a subsequent :func:`recover`
reconstructs **exactly the committed prefix**: the database documents
equal a rebuild-from-scratch oracle that applied only the operations
whose commit succeeded, and query rankings match that oracle exactly.

The sweep aims one fault at the k-th visit of a site via
``FaultSpec(skip=k, max_faults=1)`` and walks k until a run completes
with no fault fired, so every visit of every site gets its own crash
test.  RAISE faults are seed-independent (rate 1.0); SHORT_WRITE draws
its torn-prefix length from the seed, which CI sweeps via CHAOS_SEED.
"""

import os
import random

import pytest

from repro.core import resilience
from repro.core.engine import RetrievalEngine
from repro.errors import IngestError, ReproError
from repro.htl import parse
from repro.ingest import initialise, ops, recover
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.model.serialize import database_to_dict
from repro.testing.faults import RAISE, SHORT_WRITE, FaultSpec, inject
from repro.workloads.synthetic import random_similarity_list

#: Default chaos seeds; override one via CHAOS_SEED for CI sweeps.
SEEDS = [11, 1997, 20260806]
if os.environ.get("CHAOS_SEED"):
    SEEDS = [int(os.environ["CHAOS_SEED"])]

#: Sweep guard: no site in the scenario is visited anywhere near this
#: often; hitting it means the "no fault fired" exit never happened.
MAX_STEPS = 48

QUERIES = [("P1", "eventually $P1"), ("P2", "$P2")]


def make_segments(n, seed):
    rng = random.Random(seed)
    segments = []
    for index in range(n):
        objects = [make_object(f"o{index % 2}", "train")]
        if rng.random() < 0.5:
            objects.append(make_object("p", "person"))
        segments.append(SegmentMetadata(objects=objects))
    return segments


def seed_database():
    rng = random.Random(3)
    database = VideoDatabase()
    database.add(flat_video("seed0", make_segments(4, seed=1)))
    database.register_atomic(
        "P1", "seed0", random_similarity_list(4, rng=rng)
    )
    return database


def scripted_ops():
    """The scenario: two videos, appends, annotations — deterministic."""
    rng = random.Random(97)
    return [
        ops.AddVideo(name="s0", segments=tuple(make_segments(3, seed=2))),
        ops.AppendSegments(video="s0", segments=tuple(make_segments(2, 4))),
        ops.AddAnnotations(
            video="s0", predicate="P2", sim=random_similarity_list(5, rng=rng)
        ),
        ops.AppendSegments(video="s0", segments=tuple(make_segments(1, 5))),
        ops.AddVideo(name="s1", segments=tuple(make_segments(2, seed=6))),
        ops.AddAnnotations(
            video="s1", predicate="P2", sim=random_similarity_list(2, rng=rng)
        ),
    ]


#: The script interleaves ops with durability and compaction boundaries.
#: Each "commit" advances the oracle's committed prefix; checkpoints are
#: pure representation changes (state must be identical across them).
SCRIPT = [
    ("op", 0),
    ("op", 1),
    ("commit",),
    ("op", 2),
    ("commit",),
    ("checkpoint", False),
    ("op", 3),
    ("op", 4),
    ("commit",),
    ("checkpoint", True),
    ("op", 5),
    ("commit",),
]


def oracle_database(n_committed_ops):
    """Rebuild from scratch: the seed corpus plus the committed prefix."""
    database = seed_database()
    for op in scripted_ops()[:n_committed_ops]:
        ops.apply(op, database)
    return database


def run_script(root):
    """Drive the scenario until it finishes or a fault 'crashes' it.

    The ingest directory must already be initialised (the base-snapshot
    save shares the store's fault sites, and its crash-safety is the
    store suite's property, not this one's).  Returns
    ``(committed, faulted)`` — the count of ops whose commit succeeded,
    and whether an injected fault fired.
    """
    from repro.ingest import Ingester

    script_ops = scripted_ops()
    ingester = Ingester(root)
    applied = 0
    committed = 0
    try:
        for step in SCRIPT:
            if step[0] == "op":
                ingester.submit(script_ops[step[1]])
                applied += 1
            elif step[0] == "commit":
                ingester.commit()
                committed = applied
            else:
                # Ops were committed by the preceding commit step, so a
                # checkpoint crash never moves the committed prefix.
                ingester.checkpoint(full=step[1])
        return committed, False
    except ReproError:
        return committed, True
    finally:
        ingester._wal.close()


def assert_recovers_exactly_the_committed_prefix(root, committed):
    state = recover(root)
    try:
        oracle = oracle_database(committed)
        assert database_to_dict(state.database) == database_to_dict(
            oracle
        ), f"recovered state diverges from the {committed}-op oracle"
        # Ranking identity, byte for byte, on every video both hold.
        for atom, text in QUERIES:
            formula = parse(text)
            for video in oracle.videos():
                if oracle.atomic_list(atom, video.name) is None:
                    continue
                got = RetrievalEngine().evaluate_video(
                    formula,
                    state.database.get(video.name),
                    database=state.database,
                )
                expected = RetrievalEngine().evaluate_video(
                    formula, video, database=oracle
                )
                assert got == expected, (
                    f"query {text!r} on {video.name!r} ranks differently "
                    "after recovery"
                )
        for path in state.quarantined:
            assert os.path.exists(path), f"quarantined bytes vanished: {path}"
    finally:
        state.wal.close()


CRASH_SITES = [
    (resilience.SITE_WAL_APPEND, RAISE),
    (resilience.SITE_WAL_APPEND, SHORT_WRITE),
    (resilience.SITE_WAL_FSYNC, RAISE),
    (resilience.SITE_COMPACT_COMMIT, RAISE),
    # The marker/delta/manifest writes all route through the store's
    # atomic-write protocol; faulting it crashes commit and checkpoint
    # at their inner write steps.
    (resilience.SITE_STORE_WRITE, RAISE),
    (resilience.SITE_STORE_FSYNC, RAISE),
]


def _sweep(tmp_path, site, mode, seed):
    completed_clean = False
    for step in range(MAX_STEPS):
        root = tmp_path / f"step-{step}"
        initialise(root, seed_database()).close()
        spec = FaultSpec(site, mode=mode, max_faults=1, skip=step)
        with inject(spec, seed=seed):
            committed, faulted = run_script(root)
        assert_recovers_exactly_the_committed_prefix(root, committed)
        if not faulted:
            # The fault window walked past the last visit: the clean
            # run must have committed every op.
            assert committed == len(scripted_ops())
            completed_clean = True
            break
    assert completed_clean, (
        f"sweep at {site} never ran fault-free within {MAX_STEPS} steps"
    )


@pytest.mark.parametrize("site,mode", CRASH_SITES[:1] + CRASH_SITES[2:])
def test_crash_at_every_boundary_recovers_committed_prefix(
    tmp_path, site, mode
):
    """RAISE faults are deterministic: one seed covers the sweep."""
    _sweep(tmp_path, site, mode, seed=SEEDS[0])


@pytest.mark.parametrize("seed", SEEDS)
def test_torn_short_writes_recover_committed_prefix(tmp_path, seed):
    """SHORT_WRITE leaves real truncated records; the torn length is
    seed-drawn, so this sweep runs per seed."""
    _sweep(tmp_path, resilience.SITE_WAL_APPEND, SHORT_WRITE, seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_double_crash_then_recovery_converges(tmp_path, seed):
    """Crash the script, then crash recovery itself mid-replay; the next
    recovery still reconstructs the committed prefix exactly."""
    initialise(tmp_path, seed_database()).close()
    spec = FaultSpec(
        resilience.SITE_WAL_FSYNC, mode=RAISE, max_faults=1, skip=1
    )
    with inject(spec, seed=seed):
        committed, faulted = run_script(tmp_path)
    assert faulted
    replay_crash = FaultSpec(
        resilience.SITE_WAL_REPLAY, mode=RAISE, max_faults=1, skip=1
    )
    with inject(replay_crash, seed=seed):
        try:
            state = recover(tmp_path)
            state.wal.close()
        except ReproError:
            pass
    assert_recovers_exactly_the_committed_prefix(tmp_path, committed)


def test_clean_run_equals_full_oracle(tmp_path):
    initialise(tmp_path, seed_database()).close()
    committed, faulted = run_script(tmp_path)
    assert not faulted and committed == len(scripted_ops())
    assert_recovers_exactly_the_committed_prefix(tmp_path, committed)


def test_ingester_is_poisoned_after_crash_until_recovery(tmp_path):
    """After a mid-append fault the live ingester refuses further work;
    reopening (= recovery) restores service at the committed prefix."""
    from repro.ingest import Ingester

    ingester = initialise(tmp_path, seed_database())
    ingester.add_video("s0", make_segments(2, seed=2))
    ingester.commit()
    spec = FaultSpec(
        resilience.SITE_WAL_APPEND, mode=RAISE, max_faults=1
    )
    with inject(spec, seed=SEEDS[0]):
        with pytest.raises(ReproError):
            ingester.append_segments("s0", make_segments(1, seed=3))
    with pytest.raises(IngestError, match="recovered"):
        ingester.append_segments("s0", make_segments(1, seed=3))
    ingester._wal.close()
    reopened = Ingester(tmp_path)
    assert len(reopened.database.get("s0").nodes_at_level(2)) == 2
    reopened.append_segments("s0", make_segments(1, seed=3))
    reopened.close()
