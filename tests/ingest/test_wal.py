"""WAL unit + property tests: framing, commit point, poisoning.

The property pair is the satellite spec's: encode/decode is an exact
round trip for *arbitrary* operations, and any single-byte change
anywhere in a frame is caught by the magic/length/CRC gauntlet — never
decoded into a different record.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import resilience
from repro.core.simlist import SimilarityList
from repro.errors import (
    IngestError,
    InjectedFaultError,
    WALCorruptionError,
)
from repro.ingest import decode_op, encode_op
from repro.ingest.ops import AddAnnotations, AddVideo, AppendSegments
from repro.ingest.wal import (
    HEADER_SIZE,
    WriteAheadLog,
    decode_record,
    encode_record,
)
from repro.testing.faults import RAISE, FaultSpec, inject

from tests.integration.strategies import segment_metadata


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def similarity_lists(draw):
    maximum = draw(st.sampled_from([1.0, 10.0, 100.0]))
    n = draw(st.integers(0, 4))
    entries = []
    cursor = 1
    for __ in range(n):
        begin = cursor + draw(st.integers(0, 2))
        end = begin + draw(st.integers(0, 2))
        entries.append(
            ((begin, end), draw(st.floats(0.0, maximum, width=16)))
        )
        cursor = end + 1
    return SimilarityList.from_entries(entries, maximum)


@st.composite
def ingest_ops(draw):
    kind = draw(st.sampled_from(["add", "append", "annotate"]))
    name = draw(st.sampled_from(["v0", "news-1", "clip_2"]))
    if kind == "add":
        segments = tuple(
            draw(segment_metadata()) for __ in range(draw(st.integers(0, 3)))
        )
        return AddVideo(
            name=name,
            segments=segments,
            child_level_name=draw(st.sampled_from(["shot", "scene"])),
        )
    if kind == "append":
        segments = tuple(
            draw(segment_metadata()) for __ in range(draw(st.integers(1, 3)))
        )
        return AppendSegments(video=name, segments=segments)
    return AddAnnotations(
        video=name,
        predicate=draw(st.sampled_from(["P1", "Battle"])),
        sim=draw(similarity_lists()),
        level=draw(st.integers(1, 3)),
    )


# ---------------------------------------------------------------------------
# framing properties
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(op=ingest_ops(), sequence=st.integers(1, 2**31))
def test_record_round_trip_is_identity(op, sequence):
    """encode → decode reproduces the sequence and the exact op."""
    frame = encode_record(sequence, op)
    decoded_sequence, document = decode_record(frame)
    assert decoded_sequence == sequence
    assert document == encode_op(op)
    # Decoding then re-encoding is a fixed point: nothing is lost or
    # renormalised (SegmentMetadata defines no __eq__, so the document
    # is the canonical identity).
    assert encode_op(decode_op(document)) == document
    assert type(decode_op(document)) is type(op)


@settings(max_examples=60, deadline=None)
@given(
    op=ingest_ops(),
    position=st.integers(0, 10_000),
    flip=st.integers(1, 255),
)
def test_any_single_byte_flip_is_caught(op, position, flip):
    """A one-byte change anywhere in the frame never decodes silently."""
    frame = encode_record(7, op)
    position %= len(frame)
    damaged = (
        frame[:position]
        + bytes([frame[position] ^ flip])
        + frame[position + 1 :]
    )
    assert damaged != frame
    with pytest.raises(WALCorruptionError):
        decode_record(damaged)


def test_truncated_frame_is_caught():
    frame = encode_record(1, AddVideo(name="v"))
    for cut in (0, 1, HEADER_SIZE - 1, HEADER_SIZE, len(frame) - 1):
        with pytest.raises(WALCorruptionError):
            decode_record(frame[:cut])


# ---------------------------------------------------------------------------
# the log itself
# ---------------------------------------------------------------------------
def test_append_is_visible_only_after_commit(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(AddVideo(name="a"))
        assert wal.uncommitted_records == 1
        assert list(wal.committed()) == []
        wal.commit()
        assert wal.uncommitted_records == 0
        records = list(wal.committed())
    assert [sequence for sequence, __ in records] == [1]
    assert decode_op(records[0][1]) == AddVideo(name="a")


def test_sequences_survive_reopen_and_reset(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(AddVideo(name="a"))
        wal.append(AddVideo(name="b"))
        wal.commit()
    with WriteAheadLog(tmp_path) as wal:
        assert wal.next_sequence == 3
        assert wal.committed_records == 2
        wal.reset()
        assert wal.committed_records == 0
        # Sequences are global: a reset must never recycle them.
        assert wal.next_sequence == 3
        assert wal.append(AddVideo(name="c")) == 3


def test_reset_refuses_uncommitted_records(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(AddVideo(name="a"))
        with pytest.raises(IngestError, match="uncommitted"):
            wal.reset()


def test_uncommitted_tail_is_not_replayed_after_reopen(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(AddVideo(name="a"))
        wal.commit()
        wal.append(AddVideo(name="b"))  # never committed
    wal = WriteAheadLog(tmp_path)
    assert [s for s, __ in wal.committed()] == [1]
    assert os.path.getsize(wal.layout.wal_log_path) > wal.committed_offset
    path = wal.truncate_tail()
    assert path is not None and os.path.exists(path)
    assert os.path.getsize(wal.layout.wal_log_path) == wal.committed_offset
    assert wal.truncate_tail() is None  # idempotent
    wal.close()


def test_failed_append_poisons_the_log(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(AddVideo(name="a"))
        wal.commit()
        with inject(
            FaultSpec(resilience.SITE_WAL_APPEND, mode=RAISE, max_faults=1)
        ):
            with pytest.raises(InjectedFaultError):
                wal.append(AddVideo(name="b"))
        with pytest.raises(IngestError, match="recovered"):
            wal.append(AddVideo(name="c"))
        with pytest.raises(IngestError, match="recovered"):
            wal.commit()


def test_failed_fsync_poisons_and_keeps_old_commit_point(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(AddVideo(name="a"))
        wal.commit()
        committed = wal.committed_offset
        wal.append(AddVideo(name="b"))
        with inject(
            FaultSpec(resilience.SITE_WAL_FSYNC, mode=RAISE, max_faults=1)
        ):
            with pytest.raises(InjectedFaultError):
                wal.commit()
    reopened = WriteAheadLog(tmp_path)
    assert reopened.committed_offset == committed
    assert [s for s, __ in reopened.committed()] == [1]
    reopened.close()


def test_marker_past_log_end_is_corruption(tmp_path):
    with WriteAheadLog(tmp_path) as wal:
        wal.append(AddVideo(name="a"))
        wal.commit()
    with open(tmp_path / "wal.log", "r+b") as handle:
        handle.truncate(4)  # committed bytes vanish
    wal = WriteAheadLog(tmp_path)
    with pytest.raises(WALCorruptionError, match="committed"):
        wal.truncate_tail()
    with pytest.raises(WALCorruptionError):
        list(wal.committed())
    wal.close()
