"""The shard-load retry policy: backoff schedule, bounds, breaker.

All timing is injected (``rng``/``sleep`` on :class:`Shard`), so these
tests replay the exact backoff schedule without touching the clock.
"""

import pytest

from repro.core import instrument, resilience
from repro.errors import InjectedFaultError, ShardError
from repro.model.database import VideoDatabase
from repro.shard import DEFAULT_RETRY, RetryPolicy, Shard
from repro.testing.faults import FaultSpec, inject


def flaky_loader(failures):
    """A loader that raises ``failures`` times, then succeeds."""
    state = {"left": failures, "loads": 0}

    def load():
        if state["left"] > 0:
            state["left"] -= 1
            raise OSError("flaky disk read")
        state["loads"] += 1
        return VideoDatabase()

    return state, load


def make_shard(loader, retry, sleeps=None, rng=lambda: 0.0):
    return Shard(
        "shard-000",
        ("v0",),
        loader,
        retry=retry,
        rng=rng,
        sleep=(sleeps.append if sleeps is not None else lambda s: None),
    )


class TestRetryPolicy:
    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = RetryPolicy(
            attempts=6,
            base_delay_ms=10.0,
            max_delay_ms=50.0,
            multiplier=2.0,
            jitter=0.0,
        )
        delays = [policy.backoff_s(n) * 1000.0 for n in range(1, 6)]
        assert delays == [10.0, 20.0, 40.0, 50.0, 50.0]

    def test_jitter_spreads_below_the_raw_delay(self):
        policy = RetryPolicy(base_delay_ms=10.0, jitter=0.5)
        low = policy.backoff_s(1, rng=lambda: 0.0) * 1000.0
        high = policy.backoff_s(1, rng=lambda: 0.999) * 1000.0
        assert low == pytest.approx(5.0)
        assert 5.0 < high < 10.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay_ms": 0.0},
            {"max_delay_ms": -1.0},
            {"multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_nonsense_knobs(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestShardRetry:
    def test_transient_failure_recovers_within_budget(self):
        state, load = flaky_loader(failures=2)
        sleeps = []
        shard = make_shard(load, RetryPolicy(attempts=3), sleeps)
        before = instrument.counters().get(instrument.SHARD_LOAD_RETRIED, 0)
        database = shard.database()
        assert isinstance(database, VideoDatabase)
        assert state["loads"] == 1
        assert len(sleeps) == 2  # one backoff per recovered failure
        assert sleeps[0] < sleeps[1]  # exponential growth, jitter pinned
        after = instrument.counters().get(instrument.SHARD_LOAD_RETRIED, 0)
        assert after - before == 2
        assert shard.breaker.state == resilience.CLOSED

    def test_attempts_bound_is_hard(self):
        state, load = flaky_loader(failures=10)
        sleeps = []
        shard = make_shard(load, RetryPolicy(attempts=2), sleeps)
        with pytest.raises(OSError):
            shard.database()
        assert state["loads"] == 0
        assert len(sleeps) == 1  # attempts=2 → exactly one backoff

    def test_attempts_one_is_the_old_no_retry_behaviour(self):
        _, load = flaky_loader(failures=1)
        sleeps = []
        shard = make_shard(load, RetryPolicy(attempts=1), sleeps)
        with pytest.raises(OSError):
            shard.database()
        assert sleeps == []

    def test_open_breaker_fails_fast_without_retrying(self):
        state, load = flaky_loader(failures=100)
        shard = make_shard(load, RetryPolicy(attempts=2))
        # Two queries' worth of failures trip the threshold-3 breaker.
        for _ in range(2):
            with pytest.raises(OSError):
                shard.database()
        assert shard.breaker.state == resilience.OPEN
        calls_before = 100 - state["left"]
        with pytest.raises(ShardError) as caught:
            shard.database()
        assert "breaker" in str(caught.value)
        assert 100 - state["left"] == calls_before  # loader never touched

    def test_breaker_halfopen_probe_readmits_a_recovered_shard(self):
        state, load = flaky_loader(failures=3)
        shard = make_shard(load, RetryPolicy(attempts=2))
        for _ in range(2):
            with pytest.raises(OSError):
                shard.database()
        assert shard.breaker.state == resilience.OPEN
        # Burn the cooldown with fail-fast refusals, then the half-open
        # probe admits one trial, which succeeds and closes the breaker.
        for _ in range(shard.breaker.cooldown - 1):
            with pytest.raises(ShardError):
                shard.database()
        database = shard.database()
        assert isinstance(database, VideoDatabase)
        assert state["loads"] == 1
        assert shard.breaker.state == resilience.CLOSED

    def test_injected_faults_retry_like_real_ones(self):
        _, load = flaky_loader(failures=0)
        sleeps = []
        shard = make_shard(load, RetryPolicy(attempts=3), sleeps)
        spec = FaultSpec(site=resilience.SITE_SHARD_LOAD, max_faults=2)
        with inject(spec) as chaos:
            shard.database()
        assert chaos.faults_at(resilience.SITE_SHARD_LOAD) == 2
        assert len(sleeps) == 2

    def test_default_policy_is_bounded_and_jittered(self):
        assert DEFAULT_RETRY.attempts >= 2
        assert DEFAULT_RETRY.jitter > 0.0
        assert DEFAULT_RETRY.max_delay_ms <= 100.0
