"""Scatter-gather top-k: identity, budgets, tracing, bound exchange."""

import pytest

from repro.core import instrument, resilience, trace
from repro.core.engine import RetrievalEngine
from repro.core.topk import (
    OUTCOME_OK,
    OUTCOME_PRUNED,
    OUTCOME_TIMED_OUT,
    top_k_across_videos,
)
from repro.errors import BudgetExceededError
from repro.htl import parse
from repro.shard import ShardedCorpus, slice_budget

from tests.shard.conftest import graded_corpus

FORMULAS = ["$P1 and $P2", "$P1 until $P2", "$P1 and eventually $P2"]


def unsharded(corpus, text, k):
    return top_k_across_videos(
        RetrievalEngine(), parse(text), corpus, k, prune=False
    )


class TestRankingIdentity:
    @pytest.mark.parametrize("text", FORMULAS)
    @pytest.mark.parametrize("n_shards", [1, 2, 4, 9])
    def test_identical_to_serial_unsharded(self, corpus, text, n_shards):
        expected = unsharded(corpus, text, 10)
        sharded = ShardedCorpus.from_database(corpus, n_shards)
        got = sharded.top_k(RetrievalEngine(), parse(text), 10)
        assert got == expected

    @pytest.mark.parametrize("parallelism", [None, 2, 8])
    @pytest.mark.parametrize("bound_exchange", [True, False])
    def test_parallel_and_exchange_flags(
        self, corpus, parallelism, bound_exchange
    ):
        expected = unsharded(corpus, "$P1 and $P2", 7)
        sharded = ShardedCorpus.from_database(corpus, 3)
        got = sharded.top_k(
            RetrievalEngine(),
            parse("$P1 and $P2"),
            7,
            parallelism=parallelism,
            bound_exchange=bound_exchange,
        )
        assert got == expected

    def test_more_shards_than_videos(self):
        corpus = graded_corpus(n_videos=3)
        expected = unsharded(corpus, "$P1", 5)
        sharded = ShardedCorpus.from_database(corpus, 8)
        assert sharded.top_k(RetrievalEngine(), parse("$P1"), 5) == expected

    def test_k_zero(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3)
        result = sharded.top_k(RetrievalEngine(), parse("$P1"), 0)
        assert result == []
        assert not result.outcomes

    def test_k_larger_than_corpus(self, corpus):
        expected = unsharded(corpus, "$P1", 100_000)
        sharded = ShardedCorpus.from_database(corpus, 4)
        got = sharded.top_k(RetrievalEngine(), parse("$P1"), 100_000)
        assert got == expected


class TestBoundExchangePruning:
    def test_exchange_prunes_more_than_local_heaps(self, corpus):
        engine = RetrievalEngine()
        formula = parse("$P1 and $P2")
        sharded = ShardedCorpus.from_database(corpus, 4)
        naive = sharded.top_k(
            engine, formula, 3, parallelism=None, bound_exchange=False
        )
        exchanged = sharded.top_k(
            engine, formula, 3, parallelism=None, bound_exchange=True
        )
        assert naive == exchanged

        def evaluated(result):
            return sum(
                1 for o in result.outcomes if o.status == OUTCOME_OK
            )

        assert evaluated(exchanged) < evaluated(naive)
        # Pruning is never a degradation.
        assert not exchanged.partial
        assert all(
            o.status in (OUTCOME_OK, OUTCOME_PRUNED)
            for o in exchanged.outcomes
        )

    def test_prune_false_disables_the_exchange(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3)
        result = sharded.top_k(
            RetrievalEngine(), parse("$P1 and $P2"), 5, prune=False
        )
        assert all(o.status == OUTCOME_OK for o in result.outcomes)


class TestBudgetSlicing:
    def test_no_budget_means_no_slices(self):
        assert slice_budget(None, 3) == [None, None, None]

    def test_steps_divided_with_remainder_to_early_shards(self):
        parent = resilience.QueryBudget(max_steps=10)
        slices = slice_budget(parent, 3)
        assert [piece.max_steps for piece in slices] == [4, 3, 3]

    def test_minimum_one_step_each(self):
        parent = resilience.QueryBudget(max_steps=2)
        slices = slice_budget(parent, 4)
        assert all(piece.max_steps >= 1 for piece in slices)

    def test_deadline_is_shared_wall_clock(self):
        parent = resilience.QueryBudget(deadline_ms=60_000)
        slices = slice_budget(parent, 2)
        for piece in slices:
            assert piece.deadline_ms is not None
            assert piece.deadline_ms <= 60_000

    def test_expired_parent_raises_before_scatter(self):
        import time

        parent = resilience.QueryBudget(deadline_ms=0.5)
        time.sleep(0.01)
        with pytest.raises(BudgetExceededError):
            slice_budget(parent, 2)

    def test_strict_budget_overrun_propagates(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3)
        with pytest.raises(BudgetExceededError):
            sharded.top_k(
                RetrievalEngine(),
                parse("$P1 and $P2"),
                5,
                budget=resilience.QueryBudget(max_steps=3),
            )

    def test_lenient_budget_overrun_degrades(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3)
        result = sharded.top_k(
            RetrievalEngine(),
            parse("$P1 and $P2"),
            5,
            budget=resilience.QueryBudget(max_steps=3),
            lenient=True,
        )
        assert result.partial
        assert any(
            o.status == OUTCOME_TIMED_OUT for o in result.outcomes
        )

    def test_generous_budget_changes_nothing(self, corpus):
        expected = unsharded(corpus, "$P1 and $P2", 6)
        sharded = ShardedCorpus.from_database(corpus, 3)
        got = sharded.top_k(
            RetrievalEngine(),
            parse("$P1 and $P2"),
            6,
            budget=resilience.QueryBudget(
                deadline_ms=120_000, max_steps=1_000_000
            ),
        )
        assert got == expected


class TestObservability:
    def test_profile_has_query_shard_video_spans(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3)
        result = sharded.top_k(
            RetrievalEngine(), parse("$P1"), 4, profile=True
        )
        root = result.profile
        assert root is not None
        assert root.kind == trace.KIND_QUERY
        shard_spans = [
            node for node in root.children
            if node.kind == trace.KIND_SHARD
        ]
        assert [node.name for node in shard_spans] == [
            shard.shard_id for shard in sharded.shards
        ]
        assert any(
            child.kind == trace.KIND_VIDEO
            for node in shard_spans
            for child in node.children
        )
        # No nested per-shard query spans — the query span is the root.
        assert not any(
            node.kind == trace.KIND_QUERY for node in list(root.walk())[1:]
        )

    def test_parallel_spans_keep_parentage(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 4)
        result = sharded.top_k(
            RetrievalEngine(), parse("$P1"), 4, parallelism=4, profile=True
        )
        shard_spans = [
            node for node in result.profile.children
            if node.kind == trace.KIND_SHARD
        ]
        assert len(shard_spans) == 4

    def test_shard_loaded_counter(self, corpus):
        was_enabled = instrument.is_enabled()
        instrument.enable()
        try:
            sharded = ShardedCorpus.from_database(corpus, 3)
            sharded.top_k(RetrievalEngine(), parse("$P1"), 2)
            counters = instrument.counters()
        finally:
            if not was_enabled:
                instrument.disable()
        assert counters.get(instrument.SHARD_LOADED) == 3

    def test_database_load_is_memoized(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 2)
        shard = sharded.shards[0]
        assert shard.database() is shard.database()
