"""Partitioning and the on-disk shard layout (SHARDS.json)."""

import json
import os

import pytest

from repro.errors import ShardError
from repro.model.database import VideoDatabase
from repro.shard import Shard, ShardedCorpus
from repro.store import (
    SHARD_FORMAT_VERSION,
    SHARDS_MANIFEST,
    load_layout,
    partition_names,
    save_sharded,
    split_database,
)
from repro.store.sharding import shard_id

from tests.shard.conftest import graded_corpus


class TestPartitionNames:
    def test_round_robin_is_deterministic_and_balanced(self):
        names = [f"v{i}" for i in range(10)]
        groups = partition_names(names, 3)
        assert groups == [
            ["v0", "v3", "v6", "v9"],
            ["v1", "v4", "v7"],
            ["v2", "v5", "v8"],
        ]
        sizes = [len(group) for group in groups]
        assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_names_leaves_empty_groups(self):
        groups = partition_names(["a", "b"], 4)
        assert groups == [["a"], ["b"], [], []]

    def test_single_shard_owns_everything(self):
        names = ["a", "b", "c"]
        assert partition_names(names, 1) == [names]

    def test_bad_count_rejected(self):
        with pytest.raises(ShardError):
            partition_names(["a"], 0)


class TestSplitDatabase:
    def test_videos_and_atomics_travel_together(self, corpus):
        parts = split_database(corpus, 3)
        assert sorted(
            name for part in parts for name in part.names()
        ) == sorted(corpus.names())
        for part in parts:
            for name in part.names():
                assert part.get(name) is corpus.get(name)
                for predicate in corpus.atomic_names():
                    assert part.atomic_list(
                        predicate, name, 2
                    ) is corpus.atomic_list(predicate, name, 2)

    def test_partition_is_disjoint(self, corpus):
        parts = split_database(corpus, 4)
        seen = set()
        for part in parts:
            owned = set(part.names())
            assert not owned & seen
            seen |= owned


class TestLayoutRoundTrip:
    def test_save_then_load(self, corpus, tmp_path):
        saved = save_sharded(corpus, tmp_path, 3)
        loaded = load_layout(tmp_path)
        assert loaded.n_shards == 3
        assert loaded.scheme == saved.scheme
        assert [spec.shard_id for spec in loaded.shards] == [
            shard_id(i) for i in range(3)
        ]
        assert sorted(loaded.video_names) == sorted(corpus.names())
        # Every shard directory is a complete store with a snapshot.
        for spec in loaded.shards:
            store = loaded.store(spec)
            assert sorted(store.load().database.names()) == sorted(
                spec.videos
            )

    def test_spec_for(self, corpus, tmp_path):
        layout = save_sharded(corpus, tmp_path, 2)
        for spec in layout.shards:
            for name in spec.videos:
                assert layout.spec_for(name) is spec
        with pytest.raises(ShardError):
            layout.spec_for("no-such-video")

    def test_resplit_same_count_adds_snapshots(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 2)
        layout = save_sharded(corpus, tmp_path, 2)
        assert layout.n_shards == 2

    def test_resplit_different_count_refused(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 2)
        with pytest.raises(ShardError, match="already has 2 shard"):
            save_sharded(corpus, tmp_path, 3)


def _tamper(root, mutate):
    path = os.path.join(root, SHARDS_MANIFEST)
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    mutate(document)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)


class TestLayoutValidation:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(ShardError, match="no shard layout"):
            load_layout(tmp_path)

    def test_junk_manifest(self, tmp_path):
        (tmp_path / SHARDS_MANIFEST).write_bytes(b"{truncated")
        with pytest.raises(ShardError, match="unreadable"):
            load_layout(tmp_path)

    def test_non_object_manifest(self, tmp_path):
        (tmp_path / SHARDS_MANIFEST).write_text("[1, 2]")
        with pytest.raises(ShardError, match="JSON object"):
            load_layout(tmp_path)

    def test_wrong_format_version(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 2)

        def bump(document):
            document["format"] = SHARD_FORMAT_VERSION + 1

        _tamper(tmp_path, bump)
        with pytest.raises(ShardError, match="format"):
            load_layout(tmp_path)

    def test_empty_shard_list(self, tmp_path):
        (tmp_path / SHARDS_MANIFEST).write_text(
            json.dumps({"format": SHARD_FORMAT_VERSION, "shards": []})
        )
        with pytest.raises(ShardError, match="lists no shards"):
            load_layout(tmp_path)

    def test_duplicate_shard_id(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 2)

        def duplicate(document):
            document["shards"][1]["id"] = document["shards"][0]["id"]

        _tamper(tmp_path, duplicate)
        with pytest.raises(ShardError, match="duplicate shard id"):
            load_layout(tmp_path)

    def test_overlapping_ownership(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 2)

        def overlap(document):
            stolen = document["shards"][0]["videos"][0]
            document["shards"][1]["videos"].append(stolen)

        _tamper(tmp_path, overlap)
        with pytest.raises(ShardError, match="owned by both"):
            load_layout(tmp_path)

    def test_escaping_path_rejected(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 2)

        def escape(document):
            document["shards"][0]["path"] = "../outside"

        _tamper(tmp_path, escape)
        with pytest.raises(ShardError, match="escapes"):
            load_layout(tmp_path)

    def test_malformed_entry(self, tmp_path):
        (tmp_path / SHARDS_MANIFEST).write_text(
            json.dumps(
                {"format": SHARD_FORMAT_VERSION, "shards": [{"id": "x"}]}
            )
        )
        with pytest.raises(ShardError, match="malformed shard entry"):
            load_layout(tmp_path)


class TestShardedCorpusConstruction:
    def test_needs_a_shard(self):
        with pytest.raises(ShardError, match="at least one shard"):
            ShardedCorpus([])

    def test_duplicate_ids_rejected(self):
        loader = VideoDatabase
        with pytest.raises(ShardError, match="duplicate shard id"):
            ShardedCorpus(
                [Shard("s0", ["a"], loader), Shard("s0", ["b"], loader)]
            )

    def test_overlapping_videos_rejected(self):
        loader = VideoDatabase
        with pytest.raises(ShardError, match="owned by both"):
            ShardedCorpus(
                [Shard("s0", ["a"], loader), Shard("s1", ["a"], loader)]
            )

    def test_from_database_covers_the_corpus(self):
        corpus = graded_corpus(n_videos=5)
        sharded = ShardedCorpus.from_database(corpus, 2)
        assert sharded.n_shards == 2
        assert len(sharded) == 2
        assert sorted(sharded.video_names) == sorted(corpus.names())

    def test_from_directory_is_lazy(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 3)
        sharded = ShardedCorpus.from_directory(tmp_path)
        # No store has been touched yet — only the layout manifest.
        assert all(shard._database is None for shard in sharded.shards)
        assert sorted(sharded.video_names) == sorted(corpus.names())

    def test_ownership_mismatch_surfaces_on_load(self, corpus, tmp_path):
        save_sharded(corpus, tmp_path, 2)

        def rename(document):
            document["shards"][0]["videos"][0] = "phantom"

        _tamper(tmp_path, rename)
        sharded = ShardedCorpus.from_directory(tmp_path)
        with pytest.raises(ShardError, match="assigns"):
            sharded.shards[0].database()
