"""Shared corpus builders for the shard suite."""

import random

import pytest

from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata
from repro.workloads.synthetic import random_similarity_list


def graded_corpus(n_videos=9, n_segments=40, seed=1997, density=0.1):
    """Videos with *different* similarity ceilings so pruning has teeth."""
    rng = random.Random(seed)
    database = VideoDatabase()
    for position in range(n_videos):
        video = flat_video(
            f"vid{position:02d}",
            [SegmentMetadata() for __ in range(n_segments)],
        )
        database.add(video)
        for name in ("P1", "P2"):
            database.register_atomic(
                name,
                video.name,
                random_similarity_list(
                    n_segments,
                    satisfy_fraction=density,
                    maximum=2.0 + 1.5 * position,
                    rng=rng,
                ),
            )
    return database


@pytest.fixture
def corpus():
    return graded_corpus()
