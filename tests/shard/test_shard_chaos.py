"""Shard fault tolerance: dead shards, corrupt stores, recovery.

The headline property (ISSUE 6): in lenient mode a corrupt or dead
shard yields a ranking *identical to querying the surviving shards
alone* — degraded coverage, never a silently wrong order — while strict
mode refuses with a typed :class:`~repro.errors.ShardError` chaining the
underlying failure.
"""

import shutil

import pytest

from repro.core import resilience
from repro.core.engine import RetrievalEngine
from repro.core.topk import OUTCOME_FAILED, top_k_across_videos
from repro.errors import InjectedFaultError, ShardError
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.shard import RetryPolicy, ShardedCorpus
from repro.store import save_sharded
from repro.testing.faults import FaultSpec, inject

from tests.shard.conftest import graded_corpus

FORMULA_TEXT = "$P1 and eventually $P2"

# Two fast tries: enough to heal a transient fault, few enough that a
# persistently dead shard stays below the breaker threshold (3), so a
# later healthy query is not refused by an open breaker.
FAST_RETRY = RetryPolicy(attempts=2, base_delay_ms=0.2, max_delay_ms=0.5)
# The pre-retry behaviour, for tests about *unrecovered* shard death.
NO_RETRY = RetryPolicy(attempts=1)


def survivors_only(corpus, dead_names):
    """The unsharded ranking over every video not owned by the dead shard."""
    surviving = VideoDatabase()
    for name in corpus.names():
        if name in dead_names:
            continue
        surviving.add(corpus.get(name))
        for predicate in corpus.atomic_names():
            sim = corpus.atomic_list(predicate, name, 2)
            if sim is not None:
                surviving.register_atomic(predicate, name, sim)
    return top_k_across_videos(
        RetrievalEngine(), parse(FORMULA_TEXT), surviving, 8, prune=False
    )


class TestShardLoadFaults:
    def test_lenient_matches_surviving_shards_alone(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3, retry=FAST_RETRY)
        dead = sharded.shards[0].videos
        # Persistent death: enough faults to exhaust shard-000's whole
        # retry budget (transient faults now heal, see below).
        spec = FaultSpec(
            site=resilience.SITE_SHARD_LOAD, max_faults=FAST_RETRY.attempts
        )
        with inject(spec) as chaos:
            result = sharded.top_k(
                RetrievalEngine(),
                parse(FORMULA_TEXT),
                8,
                parallelism=None,
                lenient=True,
            )
        assert chaos.faults_at(resilience.SITE_SHARD_LOAD) == (
            FAST_RETRY.attempts
        )
        assert result.partial
        failed = [
            o.video for o in result.outcomes if o.status == OUTCOME_FAILED
        ]
        assert sorted(failed) == sorted(dead)
        for outcome in result.outcomes:
            if outcome.status == OUTCOME_FAILED:
                assert isinstance(outcome.error, ShardError)
                assert outcome.error.shard == "shard-000"
        # The ranking is exactly the surviving shards' ranking.
        assert list(result) == list(survivors_only(corpus, set(dead)))

    def test_strict_raises_with_cause(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3, retry=FAST_RETRY)
        spec = FaultSpec(
            site=resilience.SITE_SHARD_LOAD, max_faults=FAST_RETRY.attempts
        )
        with inject(spec):
            with pytest.raises(ShardError) as caught:
                sharded.top_k(
                    RetrievalEngine(),
                    parse(FORMULA_TEXT),
                    8,
                    parallelism=None,
                )
        assert caught.value.shard == "shard-000"
        assert isinstance(caught.value.__cause__, InjectedFaultError)

    def test_transient_fault_heals_inside_the_query(self, corpus):
        """A single flaky read no longer marks the shard failed: the
        retry policy absorbs it and the ranking is full and exact."""
        expected = top_k_across_videos(
            RetrievalEngine(), parse(FORMULA_TEXT), corpus, 8, prune=False
        )
        sharded = ShardedCorpus.from_database(corpus, 3, retry=FAST_RETRY)
        spec = FaultSpec(site=resilience.SITE_SHARD_LOAD, max_faults=1)
        with inject(spec) as chaos:
            healed = sharded.top_k(
                RetrievalEngine(),
                parse(FORMULA_TEXT),
                8,
                parallelism=None,
                lenient=True,
            )
        assert chaos.faults_at(resilience.SITE_SHARD_LOAD) == 1
        assert not healed.partial
        assert healed == expected

    def test_recovers_once_the_fault_clears(self, corpus):
        expected = top_k_across_videos(
            RetrievalEngine(), parse(FORMULA_TEXT), corpus, 8, prune=False
        )
        sharded = ShardedCorpus.from_database(corpus, 3, retry=FAST_RETRY)
        spec = FaultSpec(
            site=resilience.SITE_SHARD_LOAD, max_faults=FAST_RETRY.attempts
        )
        with inject(spec):
            degraded = sharded.top_k(
                RetrievalEngine(),
                parse(FORMULA_TEXT),
                8,
                parallelism=None,
                lenient=True,
            )
        assert degraded.partial
        # Load failures are not memoized: the same corpus answers in
        # full on the next query.
        healthy = sharded.top_k(RetrievalEngine(), parse(FORMULA_TEXT), 8)
        assert healthy == expected
        assert not healthy.partial

    def test_every_shard_dead_yields_empty_partial(self, corpus):
        sharded = ShardedCorpus.from_database(corpus, 3)
        spec = FaultSpec(site=resilience.SITE_SHARD_LOAD)
        with inject(spec):
            result = sharded.top_k(
                RetrievalEngine(),
                parse(FORMULA_TEXT),
                8,
                parallelism=None,
                lenient=True,
            )
        assert list(result) == []
        assert result.partial
        assert sorted(
            o.video for o in result.outcomes
        ) == sorted(corpus.names())

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_parallel_chaos_never_a_wrong_ranking(self, corpus, seed):
        """Racy visit order: assert order-independent properties only."""
        full = top_k_across_videos(
            RetrievalEngine(), parse(FORMULA_TEXT), corpus, 8, prune=False
        )
        sharded = ShardedCorpus.from_database(corpus, 4, retry=NO_RETRY)
        spec = FaultSpec(
            site=resilience.SITE_SHARD_LOAD, rate=0.5, max_faults=2
        )
        with inject(spec, seed=seed) as chaos:
            result = sharded.top_k(
                RetrievalEngine(),
                parse(FORMULA_TEXT),
                8,
                parallelism=4,
                lenient=True,
            )
        dead = {
            o.video for o in result.outcomes if o.status == OUTCOME_FAILED
        }
        if not dead:
            assert result == full
        else:
            assert result.partial
            assert chaos.faults_at(resilience.SITE_SHARD_LOAD) >= 1
            # Whatever survived ranks exactly as the survivors alone.
            assert list(result) == list(survivors_only(corpus, dead))


class TestOnDiskCorruption:
    def test_destroyed_shard_store_degrades_lenient(self, tmp_path):
        corpus = graded_corpus(n_videos=6)
        layout = save_sharded(corpus, tmp_path, 3)
        victim = layout.shards[1]
        shutil.rmtree(layout.store_path(victim))

        sharded = ShardedCorpus.from_directory(tmp_path)
        result = sharded.top_k(
            RetrievalEngine(), parse(FORMULA_TEXT), 8, lenient=True
        )
        assert result.partial
        failed = [
            o.video for o in result.outcomes if o.status == OUTCOME_FAILED
        ]
        assert sorted(failed) == sorted(victim.videos)
        assert list(result) == list(
            survivors_only(corpus, set(victim.videos))
        )

    def test_destroyed_shard_store_raises_strict(self, tmp_path):
        corpus = graded_corpus(n_videos=6)
        layout = save_sharded(corpus, tmp_path, 3)
        shutil.rmtree(layout.store_path(layout.shards[1]))

        sharded = ShardedCorpus.from_directory(tmp_path)
        with pytest.raises(ShardError) as caught:
            sharded.top_k(RetrievalEngine(), parse(FORMULA_TEXT), 8)
        assert caught.value.shard == "shard-001"

    def test_corrupt_snapshots_fall_through_store_recovery(self, tmp_path):
        """Damage that the shard's own store can absorb stays invisible."""
        corpus = graded_corpus(n_videos=6)
        expected = top_k_across_videos(
            RetrievalEngine(), parse(FORMULA_TEXT), corpus, 8, prune=False
        )
        layout = save_sharded(corpus, tmp_path, 2)
        # Two snapshots per shard; damage the newest of shard 0 so the
        # store falls back to the older intact one.
        save_sharded(corpus, tmp_path, 2)
        snapshots_dir = tmp_path / layout.shards[0].path / "snapshots"
        newest = sorted(p.name for p in snapshots_dir.iterdir())[-1]
        for artifact in (snapshots_dir / newest).iterdir():
            artifact.write_bytes(b"garbage")

        sharded = ShardedCorpus.from_directory(tmp_path)
        result = sharded.top_k(RetrievalEngine(), parse(FORMULA_TEXT), 8)
        assert result == expected
        assert not result.partial
