"""Suite-wide test configuration.

Similarity-list invariant checking is off by default on the production
hot path (see :data:`repro.core.simlist.CHECK_INVARIANTS`); the tests run
with it on so every list any algorithm constructs is validated.
"""

from repro.core import simlist

simlist.CHECK_INVARIANTS = True
