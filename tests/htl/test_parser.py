"""Tests for the HTL parser, including the paper's example formulas."""

import pytest

from repro.errors import HTLSyntaxError
from repro.htl import ast, parse, parse_term


class TestAtoms:
    def test_true(self):
        assert parse("true") == ast.Truth()

    def test_present(self):
        assert parse("present(x)") == ast.Present(ast.ObjectVar("x"))

    def test_segment_attribute_comparison(self):
        formula = parse("type() = 'western'")
        assert formula == ast.Compare(
            "=", ast.AttrFunc("type", ()), ast.Const("western")
        )

    def test_object_attribute_comparison(self):
        formula = parse("height(x) > 300")
        assert formula == ast.Compare(
            ">",
            ast.AttrFunc("height", (ast.ObjectVar("x"),)),
            ast.Const(300),
        )

    def test_relationship(self):
        formula = parse("fires_at(x, y)")
        assert formula == ast.Rel(
            "fires_at", (ast.ObjectVar("x"), ast.ObjectVar("y"))
        )

    def test_relationship_with_constant(self):
        formula = parse("holds(x, 'gun')")
        assert formula == ast.Rel(
            "holds", (ast.ObjectVar("x"), ast.Const("gun"))
        )

    def test_atomic_ref_call_form(self):
        assert parse("atomic('Moving-Train')") == ast.AtomicRef("Moving-Train")

    def test_atomic_ref_dollar_form(self):
        assert parse("$P1") == ast.AtomicRef("P1")

    def test_weight(self):
        formula = parse("weight(2.5, present(x))")
        assert formula == ast.Weighted(2.5, ast.Present(ast.ObjectVar("x")))

    def test_bare_identifier_alone_is_error(self):
        with pytest.raises(HTLSyntaxError):
            parse("x")


class TestConnectives:
    def test_and_left_associative(self):
        formula = parse("true and true and true")
        assert formula == ast.And(ast.And(ast.Truth(), ast.Truth()), ast.Truth())

    def test_or_binds_looser_than_and(self):
        formula = parse("true or true and true")
        assert formula == ast.Or(ast.Truth(), ast.And(ast.Truth(), ast.Truth()))

    def test_until_right_associative(self):
        a, b, c = (ast.AtomicRef(name) for name in "abc")
        assert parse("$a until $b until $c") == ast.Until(a, ast.Until(b, c))

    def test_until_binds_tighter_than_and(self):
        a, b, c = (ast.AtomicRef(name) for name in "abc")
        assert parse("$a until $b and $c") == ast.And(ast.Until(a, b), c)

    def test_unary_operators_chain(self):
        formula = parse("not next eventually true")
        assert formula == ast.Not(ast.Next(ast.Eventually(ast.Truth())))

    def test_always(self):
        assert parse("always true") == ast.Always(ast.Truth())

    def test_parentheses(self):
        a, b, c = (ast.AtomicRef(name) for name in "abc")
        assert parse("$a and ($b or $c)") == ast.And(a, ast.Or(b, c))


class TestBinders:
    def test_exists_single(self):
        formula = parse("exists x . present(x)")
        assert formula == ast.Exists(("x",), ast.Present(ast.ObjectVar("x")))

    def test_exists_multiple(self):
        formula = parse("exists x, y . present(x) and present(y)")
        assert isinstance(formula, ast.Exists)
        assert formula.vars == ("x", "y")

    def test_exists_scope_extends_right(self):
        formula = parse("exists x . present(x) and true")
        assert isinstance(formula, ast.Exists)
        assert isinstance(formula.sub, ast.And)

    def test_freeze(self):
        formula = parse("[h := height(x)] eventually height(x) > h")
        assert isinstance(formula, ast.Freeze)
        assert formula.var == "h"
        assert formula.func == ast.AttrFunc("height", (ast.ObjectVar("x"),))
        inner = formula.sub
        assert isinstance(inner, ast.Eventually)
        compare = inner.sub
        assert compare.right == ast.AttrVar("h")

    def test_freeze_requires_attr_func(self):
        with pytest.raises(HTLSyntaxError):
            parse("[h := 5] true")

    def test_attr_var_sigil(self):
        formula = parse("height(x) > @h")
        assert formula.right == ast.AttrVar("h")

    def test_attr_var_unbound_after_scope(self):
        # h is an attribute variable inside the freeze, an object variable
        # (bare unbound identifier) outside it.
        formula = parse("([h := f(x)] present(h_obj)) and g(h) = 1")
        compare = formula.right
        assert compare.left == ast.AttrFunc("g", (ast.ObjectVar("h"),))


class TestLevelOperators:
    def test_at_next_level(self):
        assert parse("at_next_level(true)") == ast.AtNextLevel(ast.Truth())

    def test_at_level(self):
        assert parse("at_level(3, true)") == ast.AtLevel(3, ast.Truth())

    def test_named_levels(self):
        assert parse("at_frame_level(true)") == ast.AtNamedLevel(
            "frame", ast.Truth()
        )
        assert parse("at_scene_level(true)") == ast.AtNamedLevel(
            "scene", ast.Truth()
        )
        assert parse("at_sub_plot_level(true)") == ast.AtNamedLevel(
            "sub_plot", ast.Truth()
        )

    def test_at_level_requires_integer(self):
        with pytest.raises(HTLSyntaxError):
            parse("at_level('scene', true)")


class TestErrors:
    def test_trailing_input(self):
        with pytest.raises(HTLSyntaxError):
            parse("true true")

    def test_missing_closing_paren(self):
        with pytest.raises(HTLSyntaxError):
            parse("(true")

    def test_empty_input(self):
        with pytest.raises(HTLSyntaxError):
            parse("")

    def test_error_carries_position(self):
        with pytest.raises(HTLSyntaxError) as excinfo:
            parse("true and\nand")
        assert excinfo.value.line == 2


class TestTerms:
    def test_parse_term_constants(self):
        assert parse_term("42") == ast.Const(42)
        assert parse_term("'hi'") == ast.Const("hi")

    def test_parse_term_nested_function(self):
        term = parse_term("height(owner(x))")
        assert term == ast.AttrFunc(
            "height", (ast.AttrFunc("owner", (ast.ObjectVar("x"),)),)
        )


class TestPaperExamples:
    """The formulas (A), (B), (C) of paper §2.4 parse into the right shape."""

    def test_formula_a(self):
        formula = parse("$M1 and next ($M2 until $M3)")
        assert formula == ast.And(
            ast.AtomicRef("M1"),
            ast.Next(ast.Until(ast.AtomicRef("M2"), ast.AtomicRef("M3"))),
        )

    def test_formula_b(self):
        text = """
        exists x, y .
          (present(x) and present(y)
           and name(x) = 'John Wayne' and type(y) = 'bandit'
           and holds_gun(x) and holds_gun(y))
          and eventually (present(x) and present(y) and fires_at(x, y)
            and eventually (present(y) and on_floor(y)))
        """
        formula = parse(text)
        assert isinstance(formula, ast.Exists)
        assert formula.vars == ("x", "y")
        assert isinstance(formula.sub, ast.And)

    def test_formula_c(self):
        text = """
        exists z . (present(z) and type(z) = 'airplane')
          and [h := height(z)] eventually (present(z) and height(z) > h)
        """
        formula = parse(text)
        assert isinstance(formula, ast.Exists)
        body = formula.sub
        assert isinstance(body, ast.And)
        assert isinstance(body.right, ast.Freeze)

    def test_western_movie_query(self):
        formula = parse(
            "type() = 'western' and at_frame_level(exists x . present(x))"
        )
        assert isinstance(formula, ast.And)
        assert isinstance(formula.right, ast.AtNamedLevel)
