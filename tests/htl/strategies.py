"""Hypothesis strategies for random HTL formulas and terms.

Shared by the pretty-printer round-trip tests, the classification tests
and the engine-vs-oracle integration tests.  Identifiers are drawn from
pools disjoint from HTL keywords, and variable kinds use disjoint name
pools so printing is always possible (see the documented limitations in
:mod:`repro.htl.pretty`).
"""

from hypothesis import strategies as st

from repro.htl import ast

OBJECT_VARS = ["x", "y", "z", "w"]
ATTR_VARS = ["h", "k", "m_var"]
ATTR_FUNCS = ["height", "speed", "color", "kind"]
REL_NAMES = ["fires_at", "holds", "near"]
ATOMIC_NAMES = ["P1", "P2", "Moving-Train"]
LEVEL_NAMES = ["scene", "shot", "frame"]
STRINGS = ["gun", "bandit", "airplane", "western", "John Wayne"]

object_vars = st.sampled_from(OBJECT_VARS).map(ast.ObjectVar)
attr_vars = st.sampled_from(ATTR_VARS).map(ast.AttrVar)
constants = st.one_of(
    st.integers(-50, 50).map(ast.Const),
    st.sampled_from(STRINGS).map(ast.Const),
)


@st.composite
def attr_funcs(draw, max_args=1):
    name = draw(st.sampled_from(ATTR_FUNCS))
    n_args = draw(st.integers(0, max_args))
    args = tuple(draw(object_vars) for __ in range(n_args))
    return ast.AttrFunc(name, args)


terms = st.one_of(object_vars, attr_vars, constants, attr_funcs())


@st.composite
def comparisons(draw):
    op = draw(st.sampled_from(ast.COMPARISON_OPS))
    left = draw(terms)
    right = draw(terms)
    return ast.Compare(op, left, right)


@st.composite
def relationships(draw):
    name = draw(st.sampled_from(REL_NAMES))
    n_args = draw(st.integers(1, 2))
    args = tuple(
        draw(st.one_of(object_vars, constants)) for __ in range(n_args)
    )
    return ast.Rel(name, args)


atomic_formulas = st.one_of(
    st.just(ast.Truth()),
    object_vars.map(ast.Present),
    comparisons(),
    relationships(),
    st.sampled_from(ATOMIC_NAMES).map(ast.AtomicRef),
)


def formulas(max_depth=4):
    """Random HTL formulas covering every AST node kind."""
    return st.recursive(
        atomic_formulas,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: ast.And(*pair)),
            st.tuples(children, children).map(lambda pair: ast.Or(*pair)),
            st.tuples(children, children).map(lambda pair: ast.Until(*pair)),
            children.map(ast.Not),
            children.map(ast.Next),
            children.map(ast.Eventually),
            children.map(ast.Always),
            st.tuples(
                st.lists(
                    st.sampled_from(OBJECT_VARS),
                    min_size=1,
                    max_size=2,
                    unique=True,
                ),
                children,
            ).map(lambda pair: ast.Exists(tuple(pair[0]), pair[1])),
            st.tuples(
                st.sampled_from(ATTR_VARS), attr_funcs(), children
            ).map(lambda triple: ast.Freeze(*triple)),
            children.map(ast.AtNextLevel),
            st.tuples(st.integers(1, 5), children).map(
                lambda pair: ast.AtLevel(*pair)
            ),
            st.tuples(st.sampled_from(LEVEL_NAMES), children).map(
                lambda pair: ast.AtNamedLevel(*pair)
            ),
            st.tuples(
                st.floats(0.5, 4.0, allow_nan=False).map(
                    lambda value: round(value, 2)
                ),
                atomic_formulas,
            ).map(lambda pair: ast.Weighted(*pair)),
        ),
        max_leaves=max_depth * 2,
    )


@st.composite
def non_temporal_formulas(draw, allow_attr_vars=False):
    """Random non-temporal formulas (atoms for the picture system)."""
    term_pool = (
        terms
        if allow_attr_vars
        else st.one_of(object_vars, constants, attr_funcs())
    )

    def compare():
        return st.tuples(
            st.sampled_from(ast.COMPARISON_OPS), term_pool, term_pool
        ).map(lambda triple: ast.Compare(*triple))

    base = st.one_of(
        st.just(ast.Truth()),
        object_vars.map(ast.Present),
        compare(),
        relationships(),
    )
    formula = st.recursive(
        base,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda pair: ast.And(*pair)),
            st.tuples(children, children).map(lambda pair: ast.Or(*pair)),
            children.map(ast.Not),
            st.tuples(
                st.lists(
                    st.sampled_from(OBJECT_VARS),
                    min_size=1,
                    max_size=1,
                    unique=True,
                ),
                children,
            ).map(lambda pair: ast.Exists(tuple(pair[0]), pair[1])),
        ),
        max_leaves=5,
    )
    return draw(formula)
