"""Pretty-printer tests: golden strings and the parse∘pretty round trip."""

import pytest
from hypothesis import given, settings

from repro.errors import HTLTypeError
from repro.htl import ast, parse, pretty, pretty_term

from tests.htl.strategies import formulas


class TestGolden:
    def test_atom(self):
        assert pretty(parse("present(x)")) == "present(x)"

    def test_comparison(self):
        assert pretty(parse("height(x) > 300")) == "height(x) > 300"

    def test_segment_attribute_keeps_parens(self):
        assert pretty(parse("type() = 'western'")) == "type() = 'western'"

    def test_string_escaping(self):
        formula = ast.Compare(
            "=", ast.AttrFunc("name", ()), ast.Const("it's")
        )
        assert pretty(formula) == "name() = 'it''s'"

    def test_and_or_precedence(self):
        assert (
            pretty(parse("$a and ($b or $c)"))
            == "atomic('a') and (atomic('b') or atomic('c'))"
        )

    def test_until_needs_parens_on_left_nesting(self):
        formula = ast.Until(
            ast.Until(ast.AtomicRef("a"), ast.AtomicRef("b")),
            ast.AtomicRef("c"),
        )
        text = pretty(formula)
        assert text.startswith("(")
        assert parse(text) == formula

    def test_exists_in_binary_context_parenthesised(self):
        formula = ast.And(
            ast.Exists(("x",), ast.Present(ast.ObjectVar("x"))),
            ast.Truth(),
        )
        text = pretty(formula)
        assert parse(text) == formula

    def test_freeze(self):
        formula = parse("[h := height(x)] eventually height(x) > h")
        assert parse(pretty(formula)) == formula

    def test_named_level(self):
        assert pretty(parse("at_frame_level(true)")) == "at_frame_level(true)"

    def test_keyword_identifier_rejected(self):
        formula = ast.Present(ast.ObjectVar("until"))
        with pytest.raises(HTLTypeError):
            pretty(formula)

    def test_named_level_next_rejected(self):
        with pytest.raises(HTLTypeError):
            pretty(ast.AtNamedLevel("next", ast.Truth()))

    def test_exponent_float_rejected(self):
        with pytest.raises(HTLTypeError):
            pretty(ast.Compare("=", ast.Const(1e-30), ast.Const(1)))

    def test_free_attr_var_uses_sigil(self):
        formula = ast.Compare(
            ">", ast.AttrFunc("height", ()), ast.AttrVar("h")
        )
        assert pretty(formula) == "height() > @h"

    def test_term_rendering(self):
        assert pretty_term(ast.AttrFunc("f", (ast.ObjectVar("x"),))) == "f(x)"


class TestRoundTrip:
    @given(formulas())
    @settings(max_examples=300, deadline=None)
    def test_parse_pretty_round_trip(self, formula):
        assert parse(pretty(formula)) == formula

    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_pretty_is_stable(self, formula):
        once = pretty(formula)
        assert pretty(parse(once)) == once
