"""Tests for the named-predicate registry."""

import pytest

from repro.core.engine import RetrievalEngine
from repro.errors import HTLTypeError
from repro.htl import ast, parse
from repro.htl.macros import PredicateRegistry
from repro.workloads.casablanca import (
    MAN_WOMAN_QUERY_TEXT,
    MOVING_TRAIN_QUERY_TEXT,
    casablanca_video,
    expected_query1,
    query1,
)


class TestDefinition:
    def test_define_from_text(self):
        registry = PredicateRegistry()
        formula = registry.define("Train", "exists t . type(t) = 'train'")
        assert isinstance(formula, ast.Exists)
        assert "Train" in registry
        assert registry.lookup("Train") == formula

    def test_temporal_definition_rejected(self):
        registry = PredicateRegistry()
        with pytest.raises(HTLTypeError):
            registry.define("Bad", "eventually true")

    def test_open_definition_rejected(self):
        registry = PredicateRegistry()
        with pytest.raises(HTLTypeError):
            registry.define("Bad", "present(x)")

    def test_recursive_definition_rejected(self):
        registry = PredicateRegistry()
        with pytest.raises(HTLTypeError):
            registry.define("Bad", "atomic('Other')")

    def test_duplicate_rejected(self):
        registry = PredicateRegistry()
        registry.define("P", "true")
        with pytest.raises(HTLTypeError):
            registry.define("P", "true")

    def test_names_sorted(self):
        registry = PredicateRegistry()
        registry.define("Zeta", "true")
        registry.define("Alpha", "true")
        assert list(registry.names()) == ["Alpha", "Zeta"]


class TestExpansion:
    def test_expand_replaces_known_names(self):
        registry = PredicateRegistry()
        definition = registry.define("P", "kind() = 'a'")
        expanded = registry.expand(parse("eventually atomic('P')"))
        assert expanded == ast.Eventually(definition)

    def test_unknown_names_untouched(self):
        registry = PredicateRegistry()
        formula = parse("atomic('Q') until atomic('Q')")
        assert registry.expand(formula) == formula

    def test_expansion_reaches_every_position(self):
        registry = PredicateRegistry()
        definition = registry.define("P", "true")
        formula = parse(
            "exists x . (atomic('P') until next atomic('P')) "
            "and at_frame_level(atomic('P') or not atomic('P'))"
        )
        expanded = registry.expand(formula)
        remaining = [
            node
            for node in expanded.walk()
            if isinstance(node, ast.AtomicRef)
        ]
        assert remaining == []


class TestEndToEnd:
    def test_casablanca_query1_via_macros(self):
        """Defining the two §4.1 predicates as metadata queries and
        expanding Query 1 reproduces Table 4 with no registered lists."""
        registry = PredicateRegistry()
        registry.define("Moving-Train", MOVING_TRAIN_QUERY_TEXT)
        registry.define("Man-Woman", MAN_WOMAN_QUERY_TEXT)
        expanded = registry.expand(query1())
        engine = RetrievalEngine()
        result = engine.evaluate_video(expanded, casablanca_video())
        assert result == expected_query1()
