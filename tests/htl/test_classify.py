"""Tests for formula classification (paper §2.5 / §3 class hierarchy)."""

import pytest
from hypothesis import given, settings

from repro.errors import HTLTypeError
from repro.htl import ast, parse
from repro.htl.classify import (
    FormulaClass,
    atomic_subformulas,
    has_level_operator,
    has_temporal_operator,
    is_non_temporal,
    paper_class,
    require_class,
    skeleton_class,
)

from tests.htl.strategies import formulas


class TestNonTemporal:
    def test_plain_atom(self):
        assert is_non_temporal(parse("present(x)"))

    def test_conjunction_of_atoms(self):
        assert is_non_temporal(parse("present(x) and holds(x, 'gun')"))

    def test_temporal_operator_breaks_it(self):
        assert not is_non_temporal(parse("eventually present(x)"))

    def test_level_operator_breaks_it(self):
        """Paper §2.2: non-temporal means no temporal AND no level modal
        operators."""
        assert not is_non_temporal(parse("at_frame_level(present(x))"))

    def test_exists_inside_stays_non_temporal(self):
        assert is_non_temporal(parse("exists x . present(x)"))


class TestAtomicSubformulas:
    def test_whole_formula_when_non_temporal(self):
        formula = parse("present(x) and holds(x, 'gun')")
        assert atomic_subformulas(formula) == [formula]

    def test_maximal_pieces(self):
        formula = parse("$M1 and next ($M2 until $M3)")
        atoms = atomic_subformulas(formula)
        assert atoms == [
            ast.AtomicRef("M1"),
            ast.AtomicRef("M2"),
            ast.AtomicRef("M3"),
        ]

    def test_conjunction_below_temporal_is_one_atom(self):
        formula = parse("eventually (present(x) and present(y))")
        atoms = atomic_subformulas(formula)
        assert len(atoms) == 1
        assert isinstance(atoms[0], ast.And)


QUERY_1 = "atomic('Man-Woman') and eventually atomic('Moving-Train')"

FORMULA_A = "$M1 and next ($M2 until $M3)"

FORMULA_B = """
exists x, y .
  (present(x) and present(y) and name(x) = 'John Wayne'
   and type(y) = 'bandit' and holds_gun(x) and holds_gun(y))
  and eventually (fires_at(x, y) and eventually on_floor(y))
"""

FORMULA_C = """
exists z . (present(z) and type(z) = 'airplane')
  and [h := height(z)] eventually (present(z) and height(z) > h)
"""

WESTERN = "type() = 'western' and at_frame_level(" + FORMULA_B + ")"


class TestPaperClasses:
    def test_query_1_is_type1(self):
        assert paper_class(parse(QUERY_1)) == FormulaClass.TYPE1

    def test_formula_a_is_type1(self):
        """Paper: 'The formulas (A) and (B) ... are type (1) and type (2)
        formulas respectively.'"""
        assert paper_class(parse(FORMULA_A)) == FormulaClass.TYPE1

    def test_formula_b_is_type2(self):
        assert paper_class(parse(FORMULA_B)) == FormulaClass.TYPE2

    def test_formula_c_is_conjunctive(self):
        """Paper: '(C) is neither a type (1) nor a type (2) formula.'"""
        assert paper_class(parse(FORMULA_C)) == FormulaClass.CONJUNCTIVE

    def test_western_example_is_extended_conjunctive(self):
        assert paper_class(parse(WESTERN)) == FormulaClass.EXTENDED_CONJUNCTIVE

    def test_non_temporal_exists_is_type1(self):
        assert paper_class(parse("exists x . present(x)")) == FormulaClass.TYPE1

    def test_negation_outside_atoms_is_general_in_paper_view(self):
        formula = parse("exists x . not present(x)")
        assert paper_class(formula) == FormulaClass.GENERAL
        assert skeleton_class(formula) == FormulaClass.TYPE1

    def test_disjunction_is_general_in_paper_view(self):
        formula = parse("exists x, y . present(x) or present(y)")
        assert paper_class(formula) == FormulaClass.GENERAL
        assert skeleton_class(formula) == FormulaClass.TYPE1

    def test_free_variable_is_general(self):
        assert paper_class(parse("present(x)")) == FormulaClass.GENERAL
        assert skeleton_class(parse("present(x)")) == FormulaClass.GENERAL

    def test_non_prefix_temporal_exists_is_general(self):
        formula = parse("eventually exists x . eventually present(x)")
        assert paper_class(formula) == FormulaClass.GENERAL
        assert skeleton_class(formula) == FormulaClass.GENERAL

    def test_exists_at_level_body_start_allowed(self):
        formula = parse(
            "at_frame_level(exists x . eventually present(x))"
        )
        assert paper_class(formula) == FormulaClass.EXTENDED_CONJUNCTIVE

    def test_negated_temporal_is_general_everywhere(self):
        formula = parse("not eventually present(x)")
        assert skeleton_class(parse("exists x . true and true")) <= (
            FormulaClass.GENERAL
        )
        assert paper_class(ast.Exists(("x",), formula.sub)) != FormulaClass.TYPE1
        closed = ast.Exists(("x",), formula)
        assert paper_class(closed) == FormulaClass.GENERAL
        assert skeleton_class(closed) == FormulaClass.GENERAL

    def test_always_is_paper_general_but_skeleton_type1(self):
        formula = parse("always atomic('P1')")
        assert paper_class(formula) == FormulaClass.GENERAL
        assert skeleton_class(formula) == FormulaClass.TYPE1


class TestHierarchyProperties:
    def test_includes(self):
        assert FormulaClass.TYPE2.includes(FormulaClass.TYPE1)
        assert not FormulaClass.TYPE1.includes(FormulaClass.TYPE2)
        assert FormulaClass.GENERAL.includes(FormulaClass.CONJUNCTIVE)

    @given(formulas())
    @settings(max_examples=200, deadline=None)
    def test_paper_class_at_least_skeleton_class(self, formula):
        """The paper view constrains atoms too, so it never assigns a
        smaller class than the skeleton view."""
        assert paper_class(formula) >= skeleton_class(formula)

    @given(formulas())
    @settings(max_examples=200, deadline=None)
    def test_conjunction_never_shrinks_the_class(self, formula):
        """Conjoining `true` can only generalise (a prefix ∃ stops being a
        prefix, per the paper's literal definition), never specialise."""
        conjoined = ast.And(formula, ast.Truth())
        assert skeleton_class(conjoined) >= skeleton_class(formula)

    def test_conjunction_keeps_type1(self):
        formula = parse(FORMULA_A)
        assert skeleton_class(ast.And(formula, ast.Truth())) == (
            FormulaClass.TYPE1
        )

    @given(formulas())
    @settings(max_examples=100, deadline=None)
    def test_eventually_preserves_or_generalises(self, formula):
        wrapped = ast.Eventually(formula)
        assert skeleton_class(wrapped) >= min(
            skeleton_class(formula), FormulaClass.TYPE1
        )


class TestHelpers:
    def test_has_temporal_operator(self):
        assert has_temporal_operator(parse("next true"))
        assert not has_temporal_operator(parse("present(x)"))

    def test_has_level_operator(self):
        assert has_level_operator(parse("at_level(3, true)"))
        assert not has_level_operator(parse("next true"))

    def test_require_class_passes(self):
        formula = parse(QUERY_1)
        assert require_class(formula, FormulaClass.TYPE1) == FormulaClass.TYPE1

    def test_require_class_raises(self):
        formula = parse(FORMULA_C)
        with pytest.raises(HTLTypeError):
            require_class(formula, FormulaClass.TYPE2)

    def test_require_class_paper_view(self):
        formula = parse("not present(x) and exists x . present(x)")
        with pytest.raises(HTLTypeError):
            require_class(formula, FormulaClass.EXTENDED_CONJUNCTIVE, view="paper")
