"""Tests for free/bound variable analysis."""

from hypothesis import given, settings

from repro.htl import ast, parse
from repro.htl.variables import (
    free_attr_vars,
    free_object_vars,
    is_closed,
    term_attr_vars,
    term_object_vars,
)

from tests.htl.strategies import formulas


class TestTermVariables:
    def test_object_var(self):
        assert term_object_vars(ast.ObjectVar("x")) == {"x"}
        assert term_attr_vars(ast.ObjectVar("x")) == set()

    def test_attr_var(self):
        assert term_attr_vars(ast.AttrVar("h")) == {"h"}
        assert term_object_vars(ast.AttrVar("h")) == set()

    def test_nested_function(self):
        term = ast.AttrFunc(
            "f", (ast.AttrFunc("g", (ast.ObjectVar("x"),)), ast.AttrVar("h"))
        )
        assert term_object_vars(term) == {"x"}
        assert term_attr_vars(term) == {"h"}

    def test_constant(self):
        assert term_object_vars(ast.Const(5)) == set()


class TestFormulaVariables:
    def test_present_free(self):
        assert free_object_vars(parse("present(x)")) == {"x"}

    def test_exists_binds(self):
        assert free_object_vars(parse("exists x . present(x)")) == frozenset()

    def test_exists_partial_binding(self):
        formula = parse("exists x . fires_at(x, y)")
        assert free_object_vars(formula) == {"y"}

    def test_freeze_binds_attr_var(self):
        formula = parse("[h := height(x)] height(x) > h")
        assert free_attr_vars(formula) == frozenset()
        assert free_object_vars(formula) == {"x"}

    def test_free_attr_var(self):
        formula = parse("height(x) > @h")
        assert free_attr_vars(formula) == {"h"}

    def test_freeze_function_vars_are_free(self):
        formula = parse("[h := height(z)] present(x)")
        assert free_object_vars(formula) == {"x", "z"}

    def test_shadowing_inner_binder(self):
        formula = parse("exists x . present(x) and exists x . present(x)")
        assert is_closed(formula)

    def test_relationship_args(self):
        formula = parse("fires_at(x, 'gun')")
        assert free_object_vars(formula) == {"x"}

    def test_temporal_operators_transparent(self):
        formula = parse("eventually next present(x) until present(y)")
        assert free_object_vars(formula) == {"x", "y"}

    def test_level_operators_transparent(self):
        formula = parse("at_frame_level(present(x))")
        assert free_object_vars(formula) == {"x"}


class TestClosedness:
    def test_paper_formulas_closed(self):
        formula_b = parse(
            "exists x, y . holds_gun(x) and eventually fires_at(x, y)"
        )
        assert is_closed(formula_b)
        formula_c = parse(
            "exists z . present(z) and [h := height(z)] "
            "eventually height(z) > h"
        )
        assert is_closed(formula_c)

    @given(formulas())
    @settings(max_examples=150, deadline=None)
    def test_quantifying_all_free_vars_closes(self, formula):
        object_vars = free_object_vars(formula)
        closed = formula
        if object_vars:
            closed = ast.Exists(tuple(sorted(object_vars)), closed)
        for name in sorted(free_attr_vars(formula)):
            closed = ast.Freeze(
                name, ast.AttrFunc("height", ()), closed
            )
        assert not free_object_vars(closed)
        assert not free_attr_vars(closed)
