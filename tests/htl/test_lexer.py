"""Tests for the HTL tokenizer."""

import pytest

from repro.errors import HTLSyntaxError
from repro.htl.lexer import Token, tokenize


def kinds(text):
    return [token.kind for token in tokenize(text)]


def values(text):
    return [token.value for token in tokenize(text) if token.kind != "eof"]


class TestBasics:
    def test_keywords_vs_identifiers(self):
        tokens = tokenize("and andy until untilx")
        assert tokens[0].kind == "keyword"
        assert tokens[1].kind == "ident"
        assert tokens[2].kind == "keyword"
        assert tokens[3].kind == "ident"

    def test_numbers(self):
        assert values("42 3.25 -7") == [42, 3.25, -7]
        assert isinstance(values("42")[0], int)
        assert isinstance(values("3.25")[0], float)

    def test_string_literal(self):
        assert values("'John Wayne'") == ["John Wayne"]

    def test_string_quote_escape(self):
        assert values("'it''s'") == ["it's"]

    def test_unterminated_string(self):
        with pytest.raises(HTLSyntaxError):
            tokenize("'oops")

    def test_symbols(self):
        assert values("( ) [ ] , . $ @ := = != < <= > >=") == [
            "(", ")", "[", "]", ",", ".", "$", "@", ":=", "=", "!=",
            "<", "<=", ">", ">=",
        ]

    def test_comments_stripped(self):
        assert values("true -- trailing\n# whole line\nand") == ["true", "and"]

    def test_unknown_character(self):
        with pytest.raises(HTLSyntaxError) as excinfo:
            tokenize("a & b")
        assert excinfo.value.column == 3

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_token_always_last(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("x")[-1].kind == "eof"


class TestTokenHelpers:
    def test_is_symbol(self):
        token = Token("symbol", "(", 1, 1)
        assert token.is_symbol("(")
        assert not token.is_symbol(")")

    def test_is_keyword(self):
        token = Token("keyword", "until", 1, 1)
        assert token.is_keyword("until")
        assert not token.is_keyword("and")
