"""The exception-hierarchy contract, checked by introspection.

Complements the spot checks in test_public_api.py: instead of a
hand-maintained list, walk :mod:`repro.errors` and assert the contract
for every public exception class — present and future.
"""

import inspect

import pytest

from repro import errors
from repro.core.intervals import Interval
from repro.core.simlist import SimEntry, SimilarityList


def public_exception_classes():
    classes = []
    for name in dir(errors):
        if name.startswith("_"):
            continue
        obj = getattr(errors, name)
        if inspect.isclass(obj) and issubclass(obj, BaseException):
            classes.append(obj)
    return classes


class TestHierarchy:
    def test_module_exports_exceptions(self):
        assert len(public_exception_classes()) >= 15

    @pytest.mark.parametrize(
        "klass", public_exception_classes(), ids=lambda k: k.__name__
    )
    def test_every_exception_derives_from_repro_error(self, klass):
        assert issubclass(klass, errors.ReproError)
        assert issubclass(klass, Exception)

    @pytest.mark.parametrize(
        "klass", public_exception_classes(), ids=lambda k: k.__name__
    )
    def test_every_exception_has_a_docstring(self, klass):
        assert klass.__doc__, f"{klass.__name__} is undocumented"

    def test_resilience_family(self):
        assert issubclass(errors.BudgetExceededError, errors.ResilienceError)
        assert issubclass(errors.CircuitOpenError, errors.ResilienceError)
        assert issubclass(errors.InjectedFaultError, errors.ResilienceError)
        # Budget overruns are timeouts: standard-library handlers that
        # catch TimeoutError must see them.
        assert issubclass(errors.BudgetExceededError, TimeoutError)

    def test_stdlib_mixins_preserved(self):
        assert issubclass(errors.InvalidIntervalError, ValueError)
        assert issubclass(errors.HTLTypeError, TypeError)
        assert issubclass(errors.UnknownLevelError, KeyError)
        assert issubclass(errors.SQLExecutionError, RuntimeError)


class TestDocumentedAttributes:
    def test_htl_syntax_error_position(self):
        error = errors.HTLSyntaxError("bad token", line=3, column=9)
        assert error.line == 3
        assert error.column == 9
        assert "line 3" in str(error)

    def test_sql_syntax_error_position(self):
        error = errors.SQLSyntaxError("bad token", line=2, column=4)
        assert error.line == 2
        assert error.column == 4

    def test_budget_error_attributes(self):
        error = errors.BudgetExceededError(
            "too slow", site="atom-scoring", steps=512, elapsed_ms=81.5
        )
        assert error.site == "atom-scoring"
        assert error.steps == 512
        assert error.elapsed_ms == pytest.approx(81.5)
        assert "atom-scoring" in str(error)

    def test_circuit_open_error_names_breaker(self):
        error = errors.CircuitOpenError("refused", breaker="engine")
        assert error.breaker == "engine"

    def test_injected_fault_attributes(self):
        error = errors.InjectedFaultError(
            "chaos", site="list-merge", sequence=4
        )
        assert error.site == "list-merge"
        assert error.sequence == 4

    def test_store_family(self):
        assert issubclass(errors.StoreWriteError, errors.StoreError)
        assert issubclass(errors.StoreCorruptionError, errors.StoreError)
        assert issubclass(errors.StoreVersionError, errors.StoreError)

    def test_store_error_carries_path(self):
        error = errors.StoreError("broken", path="/data/store")
        assert error.path == "/data/store"

    def test_store_corruption_error_names_the_damage(self):
        error = errors.StoreCorruptionError(
            "rot detected",
            path="/data/store",
            artifact="snap-000002/videos.json",
            quarantined=["/data/store/quarantine/snap-000002__videos.json"],
        )
        assert error.path == "/data/store"
        assert error.artifact == "snap-000002/videos.json"
        assert error.quarantined == (
            "/data/store/quarantine/snap-000002__videos.json",
        )


class TestInvariantRejection:
    """Each similarity-list invariant violation raises the typed error.

    The suite runs with CHECK_INVARIANTS on (tests/conftest.py), so plain
    construction through from_raw must catch all of these; validate()
    covers the gate-off path and is exercised in tests/test_faults.py.
    """

    def test_overlapping_intervals_rejected(self):
        entries = [
            SimEntry(Interval(1, 5), 2.0),
            SimEntry(Interval(4, 8), 2.0),
        ]
        with pytest.raises(errors.SimilarityListInvariantError):
            SimilarityList.from_raw(entries, 4.0)

    def test_unsorted_entries_rejected(self):
        entries = [
            SimEntry(Interval(6, 8), 2.0),
            SimEntry(Interval(1, 2), 2.0),
        ]
        with pytest.raises(errors.SimilarityListInvariantError):
            SimilarityList.from_raw(entries, 4.0)

    def test_non_positive_actual_rejected(self):
        with pytest.raises(errors.SimilarityListInvariantError):
            SimilarityList.from_raw([SimEntry(Interval(1, 1), 0.0)], 4.0)
        with pytest.raises(errors.SimilarityListInvariantError):
            SimilarityList.from_raw([SimEntry(Interval(1, 1), -2.0)], 4.0)

    def test_actual_above_maximum_rejected(self):
        with pytest.raises(errors.SimilarityListInvariantError):
            SimilarityList.from_raw([SimEntry(Interval(1, 1), 9.0)], 4.0)

    def test_non_positive_maximum_rejected(self):
        with pytest.raises(errors.SimilarityListInvariantError):
            SimilarityList.from_raw((), 0.0)

    def test_validate_returns_self_on_well_formed_lists(self):
        sim = SimilarityList.from_entries([((1, 3), 2.0)], 4.0)
        assert sim.validate() is sim
