"""Tests for the picture-retrieval similarity tables (atoms → tables)."""

import pytest

from repro.core.ranges import Range, interval
from repro.errors import HTLTypeError
from repro.htl import parse
from repro.model.metadata import (
    Fact,
    Relationship,
    SegmentMetadata,
    make_object,
)
from repro.pictures.index import MetadataIndex
from repro.pictures.retrieval import PictureRetrievalSystem


def segments_fixture():
    return [
        SegmentMetadata(  # 1
            objects=[make_object("p1", "airplane", height=100)],
        ),
        SegmentMetadata(  # 2
            objects=[
                make_object("p1", "airplane", height=300),
                make_object("jw", "person"),
            ],
            relationships=[Relationship("holds", ("jw", "gun"))],
        ),
        SegmentMetadata(  # 3
            attributes={"kind": "battle"},
            objects=[make_object("p2", "airplane", height=300)],
        ),
    ]


@pytest.fixture
def system():
    return PictureRetrievalSystem(segments_fixture())


class TestIndex:
    def test_postings(self):
        index = MetadataIndex(segments_fixture())
        assert index.segments_with_object("p1") == (1, 2)
        assert index.segments_with_type("airplane") == (1, 2, 3)
        assert index.segments_with_relationship("holds") == (2,)
        assert index.segments_with_attribute("kind", "battle") == (3,)
        assert index.segments_with_attribute("kind", "other") == ()

    def test_universe(self):
        index = MetadataIndex(segments_fixture())
        assert index.all_object_ids() == ["p1", "jw", "p2"]
        assert sorted(index.object_ids_of_type("airplane")) == ["p1", "p2"]


class TestClosedAtoms:
    def test_closed_atom_single_row(self, system):
        table = system.similarity_table(parse("kind() = 'battle'"))
        assert table.object_vars == ()
        sim = table.closed_list()
        assert sim.to_segment_values() == {3: pytest.approx(1.0)}

    def test_exists_atom(self, system):
        sim = system.similarity_list(
            parse("exists x . present(x) and type(x) = 'person'")
        )
        # Partial matching: a present non-person still scores the presence
        # condition, so segments 1 and 3 keep similarity 1 of 2.
        assert sim.to_segment_values() == {
            1: pytest.approx(1.0),
            2: pytest.approx(2.0),
            3: pytest.approx(1.0),
        }
        assert sim.maximum == pytest.approx(2.0)


class TestObjectVariableTables:
    def test_one_row_per_relevant_object(self, system):
        table = system.similarity_table(parse("present(x)"))
        assert table.object_vars == ("x",)
        by_object = {row.objects[0]: row.sim for row in table.rows}
        assert by_object["p1"].to_segment_values() == {1: 1.0, 2: 1.0}
        assert by_object["jw"].to_segment_values() == {2: 1.0}
        assert by_object["p2"].to_segment_values() == {3: 1.0}

    def test_partial_match_rows(self, system):
        table = system.similarity_table(
            parse("present(x) and type(x) = 'airplane'")
        )
        by_object = {row.objects[0]: row.sim for row in table.rows}
        # jw is present at 2 but not an airplane: partial similarity 1 of 2.
        assert by_object["jw"].actual_at(2) == pytest.approx(1.0)
        assert by_object["p1"].actual_at(1) == pytest.approx(2.0)

    def test_two_variables_cross_product(self, system):
        table = system.similarity_table(parse("holds(x, 'gun')"))
        assert table.object_vars == ("x",)
        by_object = {row.objects[0]: row.sim for row in table.rows}
        assert list(by_object) == ["jw"]

    def test_pruning_by_type(self, system):
        table = system.similarity_table(
            parse("present(x) and type(x) = 'airplane'"), prune=True
        )
        assert {row.objects[0] for row in table.rows} == {"p1", "p2"}


class TestAttributeVariableTables:
    def test_integer_partition(self, system):
        # height(x) > h for object p1: heights are 100 (seg 1), 300 (seg 2).
        table = system.similarity_table(parse("height(x) > @h"))
        rows_p1 = [row for row in table.rows if row.objects[0] == "p1"]
        assert table.attr_vars == ("h",)
        by_range = {row.ranges[0]: row.sim for row in rows_p1}
        # h <= 99: both segments satisfy height > h.
        assert by_range[interval(None, 99)].to_segment_values() == {
            1: 1.0,
            2: 1.0,
        }
        # h in [100, 299]: only segment 2 (height 300).
        assert by_range[interval(100, 100)].to_segment_values() == {2: 1.0}
        assert by_range[interval(101, 299)].to_segment_values() == {2: 1.0}
        # h >= 300: nothing - no row.
        assert interval(300, None) not in by_range
        assert interval(301, None) not in by_range

    def test_string_partition(self, system):
        table = system.similarity_table(parse("type(x) = @k"))
        rows = [row for row in table.rows if row.objects[0] == "p1"]
        by_range = {row.ranges[0]: row.sim for row in rows}
        exact = Range(exact="airplane")
        assert exact in by_range
        assert by_range[exact].to_segment_values() == {1: 1.0, 2: 1.0}
        # The complement row (any other string) has no satisfied segments.
        assert all(
            not r.is_complement() for r in by_range
        ), "complement row should be dropped when its list is empty"

    def test_partial_match_keeps_complement_row(self, system):
        formula = parse("present(x) and height(x) > @h")
        table = system.similarity_table(formula)
        rows_p1 = {
            row.ranges[0]: row.sim
            for row in table.rows
            if row.objects[0] == "p1"
        }
        # For h >= 300 the comparison fails everywhere but presence still
        # scores: partial similarity 1 of 2.
        high = rows_p1[interval(301, None)]
        assert high.to_segment_values() == {1: 1.0, 2: 1.0}

    def test_mixed_typing_rejected(self, system):
        with pytest.raises(HTLTypeError):
            system.similarity_table(
                parse("height(x) > @h and type(x) = @h")
            )

    def test_attr_var_in_relationship_rejected(self, system):
        with pytest.raises(HTLTypeError):
            system.similarity_table(parse("holds(x, @h)"))

    def test_attr_var_both_sides_rejected(self, system):
        with pytest.raises(HTLTypeError):
            system.similarity_table(parse("@h = @k"))


class TestTemporalRejected:
    def test_temporal_atom_rejected(self, system):
        from repro.errors import UnsupportedFormulaError

        with pytest.raises(UnsupportedFormulaError):
            system.similarity_table(parse("eventually true"))
