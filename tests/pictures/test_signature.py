"""Content-signature backend: scoring, clip resolution, exactness.

The ``looks_like`` predicate (DESIGN.md §16) claims to be just another
closed non-temporal atom: the indexed sweep, the naive oracle, the
planned engine and the structural engine must all agree exactly under
¬/∨/∃/freeze composition, the L1 bound must be admissible (pruning never
changes a thresholded score), and the dense-regime cutoff must demote
near-universal candidate sets without changing any ranking.  These tests
check those claims property-style, mirroring ``test_index_driven.py``.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.errors import (
    HTLTypeError,
    MetadataError,
    ModelError,
    SignatureError,
    WorkloadError,
)
from repro.htl import ast
from repro.htl.parser import parse
from repro.htl.variables import free_object_vars
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object
from repro.model.serialize import segment_from_dict, segment_to_dict
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.pictures.signature import (
    average_histograms,
    clip_from_segments,
    looks_like_atom,
    looks_like_atoms,
    looks_like_score,
    resolve_clips,
    signature_match_rate,
    ssim_score,
    unresolved_clip_names,
    window_bound,
    window_similarity,
)
from repro.pictures.support import DENSE_CUTOFF
from tests.integration.strategies import KINDS, TYPES, segment_metadata
from tests.pictures.test_index_driven import assert_tables_equal

#: A small signature palette with deliberate structure: two near-identical
#: vectors (high similarity), one distant, one uniform — so drawn θ values
#: land on both sides of real scores.
PALETTE = [
    (0.70, 0.10, 0.10, 0.10),
    (0.68, 0.12, 0.10, 0.10),
    (0.05, 0.05, 0.70, 0.20),
    (0.25, 0.25, 0.25, 0.25),
]
THETAS = [0.55, 0.80, 0.97]


def signed(segment, signature):
    """The segment with a signature attached (metadata is immutable)."""
    return SegmentMetadata(
        attributes=segment.attributes,
        objects=list(segment.objects()),
        relationships=list(segment.relationships),
        signature=signature,
    )


# ---------------------------------------------------------------------------
# strategies: signature-bearing segments, looks_like-bearing formulas
# ---------------------------------------------------------------------------
@st.composite
def signed_segments(draw, min_segments=0, max_segments=6):
    n = draw(st.integers(min_segments, max_segments))
    segments = []
    for __ in range(n):
        segment = draw(segment_metadata())
        signature = draw(
            st.one_of(st.none(), st.sampled_from(PALETTE))
        )
        segments.append(signed(segment, signature))
    return segments


def _looks_like_leaf():
    return st.builds(
        lambda windows, theta: looks_like_atom(windows, theta, name="clip"),
        st.lists(st.sampled_from(PALETTE), min_size=1, max_size=2),
        st.sampled_from(THETAS),
    )


def _leaves(var_names):
    options = [
        _looks_like_leaf(),
        st.sampled_from(KINDS).map(
            lambda k: ast.Compare("=", ast.AttrFunc("kind", ()), ast.Const(k))
        ),
    ]
    for name in var_names:
        var = ast.ObjectVar(name)
        options.extend(
            [
                st.just(ast.Present(var)),
                st.sampled_from(TYPES).map(
                    lambda t, v=var: ast.Compare(
                        "=", ast.AttrFunc("type", (v,)), ast.Const(t)
                    )
                ),
            ]
        )
    return st.one_of(options)


def _extend(children):
    return st.one_of(
        st.tuples(children, children).map(lambda pair: ast.And(*pair)),
        st.tuples(children, children).map(lambda pair: ast.Or(*pair)),
        children.map(ast.Not),
        children.map(lambda sub: ast.Weighted(2.5, sub)),
    )


@st.composite
def signature_formulas(draw):
    """Non-temporal formulas guaranteed to contain a ``looks_like`` atom,
    composed under ¬/∨/∧/weights, optionally ∃-closed or freeze-wrapped."""
    var_names = draw(st.sampled_from([(), ("x",)]))
    body = draw(st.recursive(_leaves(var_names), _extend, max_leaves=4))
    if not looks_like_atoms(body):
        body = ast.And(body, draw(_looks_like_leaf()))
    if var_names and draw(st.booleans()):
        body = ast.Exists(tuple(var_names), body)
        var_names = ()
    if var_names and draw(st.booleans()):
        # freeze capture compared inside the atom, as in test_index_driven
        func = ast.AttrFunc("height", (ast.ObjectVar(var_names[0]),))
        body = ast.Freeze(
            "h", func, ast.And(body, ast.Compare(">=", func, ast.AttrVar("h")))
        )
    return body


def closed(formula):
    names = sorted(free_object_vars(formula))
    if names:
        return ast.Exists(tuple(names), formula)
    return formula


# ---------------------------------------------------------------------------
# signature construction
# ---------------------------------------------------------------------------
class TestSignatureConstruction:
    def test_average_is_mass_normalised_mean(self):
        signature = average_histograms([(2.0, 0.0), (0.0, 2.0), (2.0, 2.0)])
        assert signature == pytest.approx((0.5, 0.5))
        assert sum(signature) == pytest.approx(1.0)

    def test_empty_frame_sequence_rejected(self):
        with pytest.raises(WorkloadError, match="empty frame sequence"):
            average_histograms([])

    def test_ragged_histograms_rejected(self):
        with pytest.raises(WorkloadError, match="ragged"):
            average_histograms([(0.5, 0.5), (0.3, 0.3, 0.4)])

    def test_zero_total_rejected(self):
        with pytest.raises(WorkloadError, match="zero-total"):
            average_histograms([(0.0, 0.0), (0.0, 0.0)])

    def test_clip_from_segments(self):
        segments = [
            signed(SegmentMetadata(), PALETTE[0]),
            signed(SegmentMetadata(), PALETTE[2]),
        ]
        assert clip_from_segments(segments) == (PALETTE[0], PALETTE[2])

    def test_clip_needs_segments(self):
        with pytest.raises(SignatureError, match="at least one segment"):
            clip_from_segments([])

    def test_signature_less_example_rejected(self):
        segments = [signed(SegmentMetadata(), PALETTE[0]), SegmentMetadata()]
        with pytest.raises(SignatureError, match="segment 2"):
            clip_from_segments(segments)

    def test_atom_needs_windows(self):
        with pytest.raises(SignatureError, match="at least one window"):
            looks_like_atom([], 0.5)


# ---------------------------------------------------------------------------
# clip resolution
# ---------------------------------------------------------------------------
class TestClipResolution:
    def test_parser_leaves_clips_unresolved(self):
        formula = parse("looks_like('intro', 0.8)")
        atoms = looks_like_atoms(formula)
        assert len(atoms) == 1
        assert not atoms[0].resolved
        assert atoms[0].name == "intro"
        assert atoms[0].theta == 0.8
        assert unresolved_clip_names(formula) == ["intro"]

    def test_resolution_rewrites_nested_atoms(self):
        formula = parse(
            "not looks_like('a', 0.9) or "
            "(exists x . present(x) and looks_like('b', 0.6))"
        )
        assert unresolved_clip_names(formula) == ["a", "b"]
        resolved = resolve_clips(
            formula, {"a": [PALETTE[0]], "b": [PALETTE[1], PALETTE[2]]}
        )
        assert unresolved_clip_names(resolved) == []
        atoms = looks_like_atoms(resolved)
        assert atoms[0].clip == (PALETTE[0],)
        assert atoms[1].clip == (PALETTE[1], PALETTE[2])
        # names survive resolution for display purposes
        assert [atom.name for atom in atoms] == ["a", "b"]

    def test_unknown_clip_name_is_typed_error(self):
        formula = parse("looks_like('missing', 0.5)")
        with pytest.raises(SignatureError, match="known clips: intro"):
            resolve_clips(formula, {"intro": [PALETTE[0]]})

    def test_fully_resolved_formula_returned_unchanged(self):
        formula = resolve_clips(
            parse("looks_like('q', 0.5)"), {"q": [PALETTE[0]]}
        )
        assert resolve_clips(formula, {}) is formula

    def test_evaluating_unresolved_atom_is_typed_error(self):
        atom = parse("looks_like('q', 0.5)")
        system = PictureRetrievalSystem([signed(SegmentMetadata(), PALETTE[0])])
        with pytest.raises(SignatureError, match="resolve_clips"):
            system.similarity_list(atom, use_index=True)
        with pytest.raises(SignatureError, match="resolve_clips"):
            system.similarity_list(atom, use_index=False)


# ---------------------------------------------------------------------------
# window similarity and the admissible bound
# ---------------------------------------------------------------------------
def vectors(min_size=2, max_size=8):
    return st.lists(
        st.floats(0.0, 1.0, allow_nan=False), min_size=min_size,
        max_size=max_size,
    ).filter(lambda values: sum(values) > 0.0).map(tuple)


class TestWindowSimilarity:
    def test_identical_vectors_score_one(self):
        for window in PALETTE:
            assert window_similarity(window, window) == pytest.approx(1.0)

    @settings(max_examples=80, deadline=None)
    @given(first=vectors(min_size=4, max_size=4), second=vectors(4, 4))
    def test_bounded_symmetric_and_admissible(self, first, second):
        similarity = window_similarity(first, second)
        assert 0.0 <= similarity <= 1.0
        assert similarity == pytest.approx(window_similarity(second, first))
        assert window_bound(first, second) >= similarity - 1e-12
        assert -1.0 <= ssim_score(first, second) <= 1.0

    def test_mismatched_bins_rejected(self):
        with pytest.raises(SignatureError, match="bin count"):
            window_similarity((0.5, 0.5), (0.3, 0.3, 0.4))
        with pytest.raises(SignatureError, match="bin count"):
            window_bound((), ())

    def test_zero_total_vector_rejected(self):
        with pytest.raises(SignatureError, match="zero-total"):
            window_similarity((0.0, 0.0), (0.5, 0.5))

    def test_score_zero_without_signature(self):
        atom = looks_like_atom([PALETTE[0]], 0.5)
        assert looks_like_score(atom, None) == 0.0

    def test_score_thresholds_best_window(self):
        atom = looks_like_atom([PALETTE[0], PALETTE[2]], 0.6)
        best = max(
            window_similarity(PALETTE[1], PALETTE[0]),
            window_similarity(PALETTE[1], PALETTE[2]),
        )
        assert best >= 0.6
        assert looks_like_score(atom, PALETTE[1]) == best
        strict = looks_like_atom([PALETTE[0], PALETTE[2]], best + 1e-6)
        assert looks_like_score(strict, PALETTE[1]) == 0.0

    def test_unresolved_atom_rejected(self):
        atom = ast.LooksLike(theta=0.5, name="q")
        with pytest.raises(SignatureError, match="resolve_clips"):
            looks_like_score(atom, PALETTE[0])

    @settings(max_examples=80, deadline=None)
    @given(
        signature=st.sampled_from(PALETTE),
        windows=st.lists(st.sampled_from(PALETTE), min_size=1, max_size=3),
        theta=st.sampled_from(THETAS),
    )
    def test_bound_pruning_never_changes_the_score(
        self, signature, windows, theta
    ):
        # The definitional scorer: every window, full similarity, no bound.
        best = max(window_similarity(signature, w) for w in windows)
        expected = best if best >= theta else 0.0
        atom = looks_like_atom(windows, theta)
        assert looks_like_score(atom, signature) == expected

    def test_match_rate_counts_clearing_segments(self):
        atom = looks_like_atom([PALETTE[0]], 0.97)
        signatures = [PALETTE[0], PALETTE[1], PALETTE[2], None]
        rate = signature_match_rate(atom, signatures)
        matching = sum(
            1 for s in signatures if looks_like_score(atom, s) > 0.0
        )
        assert rate == matching / len(signatures)
        assert signature_match_rate(atom, []) == 1.0
        unresolved = ast.LooksLike(theta=0.5, name="q")
        assert signature_match_rate(unresolved, signatures) == 1.0


# ---------------------------------------------------------------------------
# the oracle property, signature edition
# ---------------------------------------------------------------------------
class TestIndexedEqualsNaive:
    @settings(max_examples=120, deadline=None)
    @given(segments=signed_segments(), atom=signature_formulas())
    def test_similarity_table_identical(self, segments, atom):
        system = PictureRetrievalSystem(segments)
        indexed = system.similarity_table(atom, use_index=True)
        naive = system.similarity_table(atom, use_index=False)
        assert_tables_equal(indexed, naive)

    @settings(max_examples=40, deadline=None)
    @given(segments=signed_segments(), atom=signature_formulas())
    def test_pruned_tables_identical(self, segments, atom):
        system = PictureRetrievalSystem(segments)
        indexed = system.similarity_table(atom, prune=True, use_index=True)
        naive = system.similarity_table(atom, prune=True, use_index=False)
        assert_tables_equal(indexed, naive)

    @settings(max_examples=60, deadline=None)
    @given(
        segments=signed_segments(min_segments=1),
        left=signature_formulas(),
        right=signature_formulas(),
    )
    def test_planned_equals_structural_equals_naive(
        self, segments, left, right
    ):
        # ∧ of a signature atom with a temporal wrapper: the shape the
        # planner reorders.  Planning must never change the ranking.
        video = flat_video("signed", segments)
        formula = closed(ast.And(left, ast.Eventually(right)))

        def outcome(config):
            try:
                return RetrievalEngine(config).evaluate_video(formula, video)
            except HTLTypeError as error:
                return ("raised", type(error).__name__)

        planned = outcome(EngineConfig())
        structural = outcome(EngineConfig(plan=False))
        naive = outcome(EngineConfig(naive_atoms=True))
        assert planned == structural
        assert planned == naive

    @settings(max_examples=80, deadline=None)
    @given(segments=signed_segments(), atom=signature_formulas())
    def test_never_scores_outside_candidates(self, segments, atom):
        system = PictureRetrievalSystem(segments)
        system.trace_scored = []
        table = system.similarity_table(atom, use_index=True)
        object_vars = table.object_vars
        for objects, segment_id in system.trace_scored:
            binding = dict(zip(object_vars, objects))
            support = system.atom_support(atom, binding)
            assert support.covers(segment_id)


# ---------------------------------------------------------------------------
# support analysis: signature candidates and the dense cutoff
# ---------------------------------------------------------------------------
class TestDenseCutoff:
    def corpus(self, n_signed, n_total):
        segments = [SegmentMetadata() for __ in range(n_total)]
        for position in range(n_signed):
            segments[position] = signed(
                SegmentMetadata(), PALETTE[position % len(PALETTE)]
            )
        return segments

    def test_sparse_signature_support_stays_bounded(self):
        # 3 signed of 20: below the cutoff, candidates are explicit.
        system = PictureRetrievalSystem(self.corpus(3, 20))
        atom = looks_like_atom([PALETTE[0]], 0.5)
        support = system.atom_support(atom, {}, charge=False)
        assert support.candidates == (1, 2, 3)
        assert not support.dense

    def test_dense_signature_support_demoted_to_sweep(self):
        # 15 signed of 20: at/over the cutoff, the posting list is
        # demoted — no candidate materialisation, plan retained.
        system = PictureRetrievalSystem(self.corpus(15, 20))
        atom = looks_like_atom([PALETTE[0]], 0.5)
        support = system.atom_support(atom, {}, charge=False)
        assert support.candidates is None
        assert support.dense
        assert support.covers(20)  # a sweep covers everything

    def test_cutoff_boundary(self):
        atom = looks_like_atom([PALETTE[0]], 0.5)
        just_under = PictureRetrievalSystem(self.corpus(9, 20))
        assert not just_under.atom_support(atom, {}, charge=False).dense
        at_cutoff = PictureRetrievalSystem(
            self.corpus(int(DENSE_CUTOFF * 20), 20)
        )
        assert at_cutoff.atom_support(atom, {}, charge=False).dense

    def test_dense_metadata_atom_demoted_too(self):
        # The bugfix is not signature-specific: a near-universal object
        # posting takes the same direct-sweep path.
        segments = [
            SegmentMetadata(objects=[make_object("o1", "person")])
            if position % 10 < 6
            else SegmentMetadata()
            for position in range(40)
        ]
        system = PictureRetrievalSystem(segments)
        atom = parse("exists x . present(x)")
        indexed = system.similarity_list(atom, use_index=True)
        assert system.stats.dense_bindings > 0
        assert indexed == system.similarity_list(atom, use_index=False)

    def test_dense_rankings_still_exact(self):
        system = PictureRetrievalSystem(self.corpus(18, 20))
        atom = looks_like_atom([PALETTE[0], PALETTE[3]], 0.6)
        indexed = system.similarity_list(atom, use_index=True)
        assert system.stats.dense_bindings > 0
        assert indexed == system.similarity_list(atom, use_index=False)

    def test_sparse_workload_unaffected_by_cutoff(self):
        # The sparse regime (the §7 speedup) must keep its tight bound:
        # nothing outside the 3 candidates is scored.
        system = PictureRetrievalSystem(self.corpus(3, 200))
        atom = looks_like_atom([PALETTE[0]], 0.0)
        system.similarity_list(atom, use_index=True)
        assert system.stats.dense_bindings == 0
        assert system.stats.segments_scored <= 3


# ---------------------------------------------------------------------------
# index maintenance and persistence
# ---------------------------------------------------------------------------
class TestIndexMaintenance:
    def test_signature_postings_tracked(self):
        segments = [
            signed(SegmentMetadata(), PALETTE[0]),
            SegmentMetadata(),
            signed(SegmentMetadata(), PALETTE[1]),
        ]
        system = PictureRetrievalSystem(segments)
        assert system.index.segments_with_signature() == (1, 3)
        assert system.index.stats()["pools"]["signature_segments"] == 2

    def test_append_maintains_signature_postings(self):
        initial = [signed(SegmentMetadata(), PALETTE[0]), SegmentMetadata()]
        appended = [
            SegmentMetadata(),
            signed(SegmentMetadata(), PALETTE[1]),
        ]
        incremental = PictureRetrievalSystem(list(initial))
        incremental.append_segments(appended)
        fresh = PictureRetrievalSystem(initial + appended)
        assert incremental.index.segments_with_signature() == (1, 4)
        atom = looks_like_atom([PALETTE[0], PALETTE[1]], 0.6)
        assert incremental.similarity_list(atom, use_index=True) == (
            fresh.similarity_list(atom, use_index=True)
        )

    def test_segment_roundtrips_with_signature(self):
        segment = signed(
            SegmentMetadata(objects=[make_object("o1", "person")]),
            PALETTE[0],
        )
        restored = segment_from_dict(segment_to_dict(segment))
        assert restored.signature == segment.signature
        plain = segment_from_dict(segment_to_dict(SegmentMetadata()))
        assert plain.signature is None

    def test_corrupt_signature_payloads_rejected(self):
        with pytest.raises(ModelError, match="list of numbers"):
            segment_from_dict({"signature": "deadbeef"})
        with pytest.raises(MetadataError, match="finite non-negative"):
            segment_from_dict({"signature": [0.5, -0.1]})
        with pytest.raises(MetadataError, match="finite non-negative"):
            segment_from_dict({"signature": [0.5, math.nan]})
        with pytest.raises(MetadataError, match="at least one bin"):
            segment_from_dict({"signature": []})
