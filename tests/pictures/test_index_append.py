"""Incremental index maintenance vs. the full-rebuild oracle.

Streaming ingestion (DESIGN.md §15) extends a video's metadata index in
place via :meth:`MetadataIndex.append_segments` instead of rebuilding
it.  The contract, property-tested here over random segment lists and
random split points: build-prefix-then-append is *document-identical*
to building over the whole sequence — every postings family, the type
pools, the content profiles, and hence every query answer.  The one
documented exception is profile ids after a ``from_dict`` restore
(the persisted document carries no content keys), where equal ids must
still imply equal content, with only cross-boundary sharing lost.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pictures.index import MetadataIndex
from repro.pictures.retrieval import PictureRetrievalSystem
from tests.pictures.test_index_driven import (
    assert_tables_equal,
    nontemporal_atoms,
    segment_lists,
)


@st.composite
def split_segment_lists(draw):
    segments = draw(segment_lists(max_segments=8))
    cut = draw(st.integers(0, len(segments)))
    return segments, cut


def partition_of(profiles):
    """The equivalence classes a profile assignment induces over segment
    positions — the label-free content of the assignment."""
    classes = {}
    for position, profile in enumerate(profiles):
        classes.setdefault(profile, []).append(position)
    return sorted(classes.values())


class TestAppendEqualsRebuild:
    @settings(max_examples=120, deadline=None)
    @given(data=split_segment_lists())
    def test_appended_index_document_identical(self, data):
        segments, cut = data
        grown = MetadataIndex(segments[:cut])
        grown.append_segments(segments[cut:])
        assert grown.to_dict() == MetadataIndex(segments).to_dict()

    @settings(max_examples=60, deadline=None)
    @given(data=split_segment_lists())
    def test_append_after_restore_keeps_postings_and_partition(self, data):
        segments, cut = data
        restored = MetadataIndex.from_dict(MetadataIndex(segments[:cut]).to_dict())
        restored.append_segments(segments[cut:])
        whole = MetadataIndex(segments)
        grown_doc = restored.to_dict()
        whole_doc = whole.to_dict()
        grown_profiles = grown_doc.pop("segment_profiles")
        whole_profiles = whole_doc.pop("segment_profiles")
        grown_doc.pop("n_profiles")
        whole_doc.pop("n_profiles")
        assert grown_doc == whole_doc
        # The restored index has no content keys for the prefix, so a
        # suffix segment duplicating prefix content opens a fresh id:
        # the grown partition refines the full-build one (equal ids
        # still imply equal content), never merges across it.
        for grown_class in partition_of(grown_profiles):
            whole_ids = {whole_profiles[position] for position in grown_class}
            assert len(whole_ids) == 1, (
                "a restored-then-appended profile class spans segments "
                "with different content"
            )

    @settings(max_examples=60, deadline=None)
    @given(data=split_segment_lists(), atom=nontemporal_atoms())
    def test_appended_system_answers_like_full_build(self, data, atom):
        segments, cut = data
        grown = PictureRetrievalSystem(segments[:cut])
        grown.append_segments(segments[cut:])
        whole = PictureRetrievalSystem(segments)
        assert_tables_equal(
            grown.similarity_table(atom, use_index=True),
            whole.similarity_table(atom, use_index=True),
        )
