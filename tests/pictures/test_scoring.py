"""Tests for the atom scorer (picture-retrieval scoring)."""

import pytest

from repro.errors import UnsupportedFormulaError
from repro.htl import ast, parse
from repro.model.metadata import (
    Fact,
    Relationship,
    SegmentMetadata,
    make_object,
)
from repro.pictures.scoring import (
    compare_values,
    eval_term,
    max_similarity,
    score,
)


@pytest.fixture
def segment():
    return SegmentMetadata(
        attributes={"type": "western", "year": 1942},
        objects=[
            make_object("jw", "person", name="John Wayne", height=Fact(180, 0.9)),
            make_object("b1", "bandit", confidence=0.7),
        ],
        relationships=[
            Relationship("fires_at", ("jw", "b1"), confidence=0.8),
            Relationship("holds", ("jw", "gun")),
        ],
    )


class TestEvalTerm:
    def test_constant(self, segment):
        assert eval_term(ast.Const(5), segment, {}) == (5, 1.0)

    def test_variable(self, segment):
        assert eval_term(ast.ObjectVar("x"), segment, {"x": "jw"}) == ("jw", 1.0)

    def test_unbound_variable(self, segment):
        assert eval_term(ast.ObjectVar("x"), segment, {}) is None

    def test_segment_attribute(self, segment):
        assert eval_term(ast.AttrFunc("type", ()), segment, {}) == (
            "western",
            1.0,
        )

    def test_object_attribute_with_confidence(self, segment):
        value, confidence = eval_term(
            ast.AttrFunc("height", (ast.ObjectVar("x"),)), segment, {"x": "jw"}
        )
        assert value == 180
        assert confidence == pytest.approx(0.9)

    def test_object_type_attribute(self, segment):
        value, confidence = eval_term(
            ast.AttrFunc("type", (ast.ObjectVar("x"),)), segment, {"x": "b1"}
        )
        assert value == "bandit"
        assert confidence == pytest.approx(0.7)

    def test_missing_object(self, segment):
        assert (
            eval_term(
                ast.AttrFunc("height", (ast.ObjectVar("x"),)),
                segment,
                {"x": "nobody"},
            )
            is None
        )


class TestCompareValues:
    def test_equality_across_types(self):
        assert not compare_values("=", 1, "1")
        assert compare_values("!=", 1, "1")

    def test_ordered_numbers(self):
        assert compare_values("<", 1, 2)
        assert compare_values(">=", 2.5, 2)

    def test_ordered_strings(self):
        assert compare_values("<", "a", "b")

    def test_ordered_cross_type_unsatisfied(self):
        assert not compare_values("<", 1, "b")
        assert not compare_values(">", "b", 1)


class TestMaxSimilarity:
    def test_each_condition_weighs_one(self):
        formula = parse("present(x) and holds(x, 'gun') and type() = 'western'")
        assert max_similarity(formula) == pytest.approx(3.0)

    def test_weight_scales(self):
        formula = parse("weight(2.5, present(x))")
        assert max_similarity(formula) == pytest.approx(2.5)

    def test_or_takes_best(self):
        formula = parse(
            "exists x . (present(x) and present(x)) or present(x)"
        ).sub
        assert max_similarity(formula) == pytest.approx(2.0)

    def test_not_keeps_weight(self):
        formula = parse("exists x . not present(x)").sub
        assert max_similarity(formula) == pytest.approx(1.0)

    def test_temporal_rejected(self):
        with pytest.raises(UnsupportedFormulaError):
            max_similarity(parse("eventually true"))


class TestScore:
    def test_present_uses_object_confidence(self, segment):
        assert score(
            parse("present(x)"), segment, {"x": "b1"}
        ) == pytest.approx(0.7)
        assert score(parse("present(x)"), segment, {"x": "jw"}) == 1.0
        assert score(parse("present(x)"), segment, {"x": "ghost"}) == 0.0

    def test_comparison_confidence_product(self, segment):
        formula = parse("height(x) > 100")
        assert score(formula, segment, {"x": "jw"}) == pytest.approx(0.9)

    def test_failed_comparison_scores_zero(self, segment):
        formula = parse("height(x) > 500")
        assert score(formula, segment, {"x": "jw"}) == 0.0

    def test_relationship_confidence(self, segment):
        formula = parse("fires_at(x, y)")
        assert score(
            formula, segment, {"x": "jw", "y": "b1"}
        ) == pytest.approx(0.8)

    def test_relationship_with_constant(self, segment):
        assert score(parse("holds(x, 'gun')"), segment, {"x": "jw"}) == 1.0

    def test_conjunction_sums(self, segment):
        formula = parse("present(x) and height(x) > 100")
        assert score(formula, segment, {"x": "jw"}) == pytest.approx(1.9)

    def test_partial_conjunction(self, segment):
        formula = parse("present(x) and height(x) > 500")
        assert score(formula, segment, {"x": "jw"}) == pytest.approx(1.0)

    def test_negation_complements(self, segment):
        formula = parse("exists y . not present(x) and present(y)").sub
        assert score(
            formula, segment, {"x": "ghost", "y": "jw"}
        ) == pytest.approx(2.0)
        assert score(formula, segment, {"x": "jw", "y": "jw"}) == pytest.approx(1.0)

    def test_exists_maximises(self, segment):
        formula = parse("exists x . present(x) and name(x) = 'John Wayne'")
        assert score(formula, segment, {}, ["jw", "b1"]) == pytest.approx(2.0)

    def test_exists_defaults_to_segment_objects(self, segment):
        formula = parse("exists x . present(x)")
        assert score(formula, segment, {}) == pytest.approx(1.0)

    def test_truth(self, segment):
        assert score(ast.Truth(), segment, {}) == 1.0

    def test_segment_attribute_comparison(self, segment):
        assert score(parse("year() < 1950"), segment, {}) == 1.0
        assert score(parse("year() > 1950"), segment, {}) == 0.0

    def test_score_never_exceeds_maximum(self, segment):
        formula = parse(
            "exists x . present(x) and holds(x, 'gun') and height(x) > 100"
        )
        assert score(formula, segment, {}) <= max_similarity(formula)
