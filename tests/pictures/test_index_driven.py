"""Index-driven atom evaluation vs. the naive full-scan oracle.

The support-set/baseline decomposition (DESIGN.md §7) claims the indexed
path is list-for-list identical to the definitional scan on *every*
non-temporal formula — including ¬/∨ atoms whose empty-segment baseline
is nonzero, attribute variables, and ∃-pools under exact narrowing.
These tests check that claim property-style, plus the soundness of the
analysis itself (nothing outside the candidate set is ever visited).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.errors import HTLTypeError
from repro.htl import ast
from repro.htl.parser import parse
from repro.htl.variables import free_object_vars
from repro.model.metadata import (
    Relationship,
    SegmentMetadata,
    make_object,
)
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.pictures.scoring import FRESH_OBJECT_ID
from tests.integration.strategies import (
    HEIGHTS,
    KINDS,
    TYPES,
    flat_videos,
    segment_metadata,
    type1_formulas,
    type2_formulas,
)

VAR_SETS = [(), ("x",), ("x", "y")]


# ---------------------------------------------------------------------------
# formula strategy: non-temporal atoms with ¬ / ∨ / weights / ∃ / attr vars
# ---------------------------------------------------------------------------
def _leaves(var_names):
    options = [
        st.just(ast.Truth()),
        st.sampled_from(KINDS).map(
            lambda k: ast.Compare("=", ast.AttrFunc("kind", ()), ast.Const(k))
        ),
    ]
    for name in var_names:
        var = ast.ObjectVar(name)
        options.extend(
            [
                st.just(ast.Present(var)),
                st.sampled_from(TYPES).map(
                    lambda t, v=var: ast.Compare(
                        "=", ast.AttrFunc("type", (v,)), ast.Const(t)
                    )
                ),
                st.sampled_from(HEIGHTS).map(
                    lambda h, v=var: ast.Compare(
                        ">", ast.AttrFunc("height", (v,)), ast.Const(h)
                    )
                ),
            ]
        )
    if len(var_names) >= 2:
        options.append(
            st.just(
                ast.Rel(
                    "near",
                    (ast.ObjectVar(var_names[0]), ast.ObjectVar(var_names[1])),
                )
            )
        )
    return st.one_of(options)


def _extend(children):
    return st.one_of(
        st.tuples(children, children).map(lambda pair: ast.And(*pair)),
        st.tuples(children, children).map(lambda pair: ast.Or(*pair)),
        children.map(ast.Not),
        children.map(lambda sub: ast.Weighted(2.5, sub)),
    )


@st.composite
def nontemporal_atoms(draw):
    """Non-temporal formulas: free/quantified object vars, ¬, ∨, weights,
    optionally a free attribute variable or a freeze capture."""
    var_names = draw(st.sampled_from(VAR_SETS))
    body = draw(st.recursive(_leaves(var_names), _extend, max_leaves=4))
    if var_names and draw(st.booleans()):
        body = ast.Exists(tuple(var_names), body)
        var_names = ()
    if draw(st.booleans()):
        anchor = ast.ObjectVar(var_names[0]) if var_names else None
        func = (
            ast.AttrFunc("height", (anchor,))
            if anchor is not None
            else ast.AttrFunc("kind", ())
        )
        shape = draw(st.integers(0, 1))
        if shape == 0 and anchor is not None:
            # free attribute variable (bare on one comparison side)
            op = draw(st.sampled_from([">", "<=", "="]))
            body = ast.And(body, ast.Compare(op, func, ast.AttrVar("g")))
        elif anchor is not None:
            # freeze capture compared inside the atom
            body = ast.Freeze(
                "h", func, ast.And(body, ast.Compare(">=", func, ast.AttrVar("h")))
            )
    return body


@st.composite
def segment_lists(draw, max_segments=6):
    n = draw(st.integers(0, max_segments))
    return [draw(segment_metadata()) for __ in range(n)]


def assert_tables_equal(indexed, naive):
    assert indexed.object_vars == naive.object_vars
    assert indexed.attr_vars == naive.attr_vars
    assert abs(indexed.maximum - naive.maximum) <= 1e-9
    assert len(indexed.rows) == len(naive.rows)
    for mine, theirs in zip(indexed.rows, naive.rows):
        assert mine.objects == theirs.objects
        assert mine.ranges == theirs.ranges
        assert mine.sim == theirs.sim


# ---------------------------------------------------------------------------
# the oracle property
# ---------------------------------------------------------------------------
class TestIndexedEqualsNaive:
    @settings(max_examples=120, deadline=None)
    @given(segments=segment_lists(), atom=nontemporal_atoms())
    def test_similarity_table_identical(self, segments, atom):
        system = PictureRetrievalSystem(segments)
        indexed = system.similarity_table(atom, use_index=True)
        naive = system.similarity_table(atom, use_index=False)
        assert_tables_equal(indexed, naive)

    @settings(max_examples=40, deadline=None)
    @given(segments=segment_lists(), atom=nontemporal_atoms())
    def test_pruned_tables_identical(self, segments, atom):
        system = PictureRetrievalSystem(segments)
        indexed = system.similarity_table(atom, prune=True, use_index=True)
        naive = system.similarity_table(atom, prune=True, use_index=False)
        assert_tables_equal(indexed, naive)

    @settings(max_examples=40, deadline=None)
    @given(video=flat_videos(), formula=type1_formulas())
    def test_engine_naive_atoms_flag(self, video, formula):
        indexed = RetrievalEngine().evaluate_video(formula, video)
        naive = RetrievalEngine(
            EngineConfig(naive_atoms=True)
        ).evaluate_video(formula, video)
        assert indexed == naive

    def test_negation_baseline_runs(self):
        # ¬present('o1') scores m - a > 0 on every o1-free segment: the
        # indexed path must emit the baseline over the whole complement.
        segments = [SegmentMetadata() for __ in range(50)]
        segments[24] = SegmentMetadata(
            objects=[make_object("o1", "person", confidence=0.5)]
        )
        system = PictureRetrievalSystem(segments)
        atom = ast.Exists(("x",), ast.Not(ast.Present(ast.ObjectVar("x"))))
        indexed = system.similarity_list(atom, use_index=True)
        naive = system.similarity_list(atom, use_index=False)
        assert indexed == naive
        # compressed: entire complement is at most a handful of runs
        assert len(indexed) <= 3

    def test_fresh_id_in_metadata_still_exact(self):
        # Freak case: the fresh-object sentinel appears as a relationship
        # argument, so ∃-narrowing must fall back to the full pool.
        segments = [
            SegmentMetadata(
                objects=[make_object("o1", "person")],
                relationships=[Relationship("near", (FRESH_OBJECT_ID, "o1"))],
            ),
            SegmentMetadata(),
        ]
        system = PictureRetrievalSystem(segments)
        atom = parse("exists x . not near(x, 'o1')")
        assert system.similarity_list(atom, use_index=True) == (
            system.similarity_list(atom, use_index=False)
        )

    def test_bare_variable_comparison_disables_narrowing(self):
        # x = 'o1' can distinguish absent ids, so the pool must not narrow.
        segments = [
            SegmentMetadata(objects=[make_object("o2", "plane")]),
            SegmentMetadata(),
        ]
        system = PictureRetrievalSystem(segments)
        atom = parse("exists x . x = 'o1' or present(x)")
        assert system.similarity_list(atom, use_index=True) == (
            system.similarity_list(atom, use_index=False)
        )


# ---------------------------------------------------------------------------
# the planner property: planning never changes results
# ---------------------------------------------------------------------------
class TestPlannedEqualsStructural:
    """The cost-based plan (DESIGN.md §13) changes only the evaluation
    order and the per-atom index strategy — never the ranking.  Three-way
    check: planned engine vs. structural-order engine vs. naive oracle.
    """

    def _rankings(self, formula, video):
        def outcome(config):
            # Ill-typed formulas (e.g. a free attribute variable under a
            # temporal operator) must fail identically in every mode.
            try:
                return RetrievalEngine(config).evaluate_video(formula, video)
            except HTLTypeError as error:
                return ("raised", type(error).__name__)

        planned = outcome(EngineConfig())
        structural = outcome(EngineConfig(plan=False))
        naive = outcome(EngineConfig(naive_atoms=True))
        return planned, structural, naive

    @settings(max_examples=60, deadline=None)
    @given(video=flat_videos(), formula=type1_formulas())
    def test_closed_temporal_formulas(self, video, formula):
        planned, structural, naive = self._rankings(formula, video)
        assert planned == structural
        assert planned == naive

    @settings(max_examples=60, deadline=None)
    @given(video=flat_videos(), formula=type2_formulas())
    def test_quantified_temporal_formulas(self, video, formula):
        planned, structural, naive = self._rankings(formula, video)
        assert planned == structural
        assert planned == naive

    @settings(max_examples=40, deadline=None)
    @given(
        video=flat_videos(),
        left=nontemporal_atoms(),
        right=nontemporal_atoms(),
    )
    def test_temporal_conjunctions_of_atoms(self, video, left, right):
        # ∧ of an atom with a temporal wrapper is exactly the shape the
        # planner may reorder (And is a join, the sides stay atoms).
        formula = ast.And(left, ast.Eventually(right))
        names = sorted(free_object_vars(formula))
        if names:
            formula = ast.Exists(tuple(names), formula)
        planned, structural, naive = self._rankings(formula, video)
        assert planned == structural
        assert planned == naive


# ---------------------------------------------------------------------------
# support-set soundness
# ---------------------------------------------------------------------------
class TestSupportSoundness:
    @settings(max_examples=80, deadline=None)
    @given(segments=segment_lists(), atom=nontemporal_atoms())
    def test_never_scores_outside_candidates(self, segments, atom):
        system = PictureRetrievalSystem(segments)
        system.trace_scored = []
        table = system.similarity_table(atom, use_index=True)
        object_vars = table.object_vars
        for objects, segment_id in system.trace_scored:
            binding = dict(zip(object_vars, objects))
            support = system.atom_support(atom, binding)
            assert support.covers(segment_id), (
                f"scored segment {segment_id} outside candidates "
                f"{support.candidates} for binding {binding}"
            )

    def test_sparse_workload_scores_few_segments(self):
        segments = [SegmentMetadata() for __ in range(200)]
        for position in (10, 90, 150):
            segments[position] = SegmentMetadata(
                objects=[make_object("o1", "person")]
            )
        system = PictureRetrievalSystem(segments)
        atom = parse("present(x) and type(x) = 'person'")
        system.similarity_table(atom, use_index=True)
        # one binding (o1), three candidate segments: nothing else scored
        assert system.stats.segments_scored <= 3
        assert system.stats.candidate_segments == 3

    def test_fingerprint_memo_collapses_identical_segments(self):
        segments = [
            SegmentMetadata(objects=[make_object("o1", "person")])
            for __ in range(100)
        ]
        system = PictureRetrievalSystem(segments)
        atom = parse("present(x)")
        system.similarity_table(atom, use_index=True)
        # all 100 candidates share one fingerprint: scored once
        assert system.stats.segments_scored == 1
        assert system.stats.fingerprint_hits == 99
