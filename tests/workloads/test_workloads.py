"""Tests for the workload generators."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.casablanca import (
    MAN_WOMAN_MAX,
    MOVING_TRAIN_MAX,
    N_SHOTS,
    casablanca_database,
    casablanca_video,
    expected_eventually_moving_train,
    expected_query1,
    man_woman_list,
    moving_train_list,
)
from repro.workloads.movies import (
    example_database,
    gulf_war_video,
    random_movie,
    western_video,
)
from repro.workloads.synthetic import (
    PAPER_SIZES,
    perf_workload,
    random_similarity_list,
)


class TestCasablanca:
    def test_published_tables(self):
        assert moving_train_list().to_segment_values() == {
            9: pytest.approx(9.787)
        }
        man_woman = man_woman_list()
        assert man_woman.actual_at(1) == pytest.approx(2.595)
        assert man_woman.actual_at(30) == pytest.approx(1.26)
        assert man_woman.actual_at(48) == pytest.approx(6.26)
        assert man_woman.actual_at(45) == 0.0

    def test_video_has_fifty_shots(self):
        video = casablanca_video()
        assert len(video.nodes_at_level(2)) == N_SHOTS
        assert video.root.metadata.segment_attribute("title").value == (
            "The Making of Casablanca"
        )

    def test_database_registrations(self):
        database = casablanca_database()
        assert database.atomic_names() == ["Man-Woman", "Moving-Train"]
        registered = database.atomic_list(
            "Moving-Train", "making-of-casablanca"
        )
        assert registered == moving_train_list()

    def test_expected_tables_are_consistent(self):
        """Tables 3-4 must follow from Tables 1-2 under our own algebra."""
        from repro.core.ops import and_lists, eventually_list

        assert eventually_list(moving_train_list()) == (
            expected_eventually_moving_train()
        )
        assert and_lists(
            man_woman_list(), eventually_list(moving_train_list())
        ) == expected_query1()

    def test_metadata_confidences_encode_scores(self):
        video = casablanca_video()
        shot9 = video.nodes_at_level(2)[8].metadata
        relationship = next(shot9.relationships_named("moving_train_scene"))
        assert relationship.confidence == pytest.approx(
            9.787 / MOVING_TRAIN_MAX
        )
        shot47 = video.nodes_at_level(2)[46].metadata
        pair = next(shot47.relationships_named("man_woman_pair"))
        assert pair.confidence == pytest.approx(6.26 / MAN_WOMAN_MAX)


class TestSynthetic:
    def test_deterministic_under_seed(self):
        first = perf_workload(5_000, seed=7)
        second = perf_workload(5_000, seed=7)
        assert first.p1 == second.p1
        assert first.p2 == second.p2

    def test_different_seeds_differ(self):
        assert perf_workload(5_000, seed=1).p1 != perf_workload(5_000, seed=2).p1

    def test_density_near_target(self):
        sim = random_similarity_list(
            50_000, satisfy_fraction=0.1, rng=random.Random(3)
        )
        density = sim.support_size() / 50_000
        assert 0.05 < density < 0.2

    def test_entries_within_axis(self):
        sim = random_similarity_list(1_000, rng=random.Random(4))
        assert sim.last_id() <= 1_000

    def test_paper_sizes(self):
        assert PAPER_SIZES == (10_000, 50_000, 100_000)

    def test_extra_predicates(self):
        workload = perf_workload(2_000, extra_predicates=2)
        assert sorted(workload.lists) == ["P1", "P2", "P3", "P4"]

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            random_similarity_list(-5)
        with pytest.raises(WorkloadError):
            random_similarity_list(10, satisfy_fraction=0.0)
        with pytest.raises(WorkloadError):
            random_similarity_list(10, mean_run_length=0.5)

    @given(st.integers(100, 3_000), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_lists_always_well_formed(self, size, seed):
        sim = random_similarity_list(size, rng=random.Random(seed))
        # Construction through SimilarityList already enforces invariants;
        # check the axis bound and positive values explicitly.
        assert sim.last_id() <= size
        assert all(entry.actual > 0 for entry in sim)


class TestMovies:
    def test_western_structure(self):
        video = western_video()
        assert video.n_levels == 4
        assert video.level_of("frame") == 4
        assert video.root.metadata.segment_attribute("type").value == "western"

    def test_gulf_war_structure(self):
        video = gulf_war_video()
        assert video.n_levels == 5
        assert [video.level_names[i] for i in range(1, 6)] == [
            "video",
            "subplot",
            "scene",
            "shot",
            "frame",
        ]

    def test_random_movie_deterministic(self):
        first = random_movie("m", seed=5)
        second = random_movie("m", seed=5)
        first_objects = [
            sorted(node.metadata.object_ids())
            for node in first.nodes_at_level(4)
        ]
        second_objects = [
            sorted(node.metadata.object_ids())
            for node in second.nodes_at_level(4)
        ]
        assert first_objects == second_objects

    def test_random_movie_dimensions(self):
        video = random_movie("m", n_scenes=2, shots_per_scene=3,
                             frames_per_shot=4, seed=1)
        assert len(video.nodes_at_level(2)) == 2
        assert len(video.nodes_at_level(3)) == 6
        assert len(video.nodes_at_level(4)) == 24

    def test_bad_dimensions_rejected(self):
        with pytest.raises(WorkloadError):
            random_movie("m", n_scenes=0)

    def test_example_database(self):
        database = example_database()
        assert set(database.names()) == {
            "western",
            "gulf-war",
            "prairie-dust",
            "night-train",
        }
