"""Round-trip tests for JSON persistence."""

import json

import pytest

from repro.core.engine import RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.errors import ModelError
from repro.htl import parse
from repro.model.serialize import (
    database_from_dict,
    database_to_dict,
    dump_database,
    load_database,
    segment_from_dict,
    segment_to_dict,
    simlist_from_dict,
    simlist_to_dict,
    video_from_dict,
    video_to_dict,
)
from repro.model.metadata import (
    Fact,
    Relationship,
    SegmentMetadata,
    make_object,
)
from repro.workloads.casablanca import casablanca_database, query1
from repro.workloads.movies import gulf_war_video, western_video

from tests.core.test_simlist import similarity_lists
from hypothesis import given, settings


class TestSimilarityLists:
    def test_round_trip(self):
        sim = SimilarityList.from_entries(
            [((1, 4), 2.595), ((9, 9), 9.787)], 10.0
        )
        assert simlist_from_dict(simlist_to_dict(sim)) == sim

    @given(similarity_lists())
    @settings(max_examples=60)
    def test_round_trip_property(self, sim):
        through_json = json.loads(json.dumps(simlist_to_dict(sim)))
        assert simlist_from_dict(through_json) == sim


class TestSegments:
    def test_round_trip_with_confidences(self):
        segment = SegmentMetadata(
            attributes={"kind": "battle", "length": Fact(90, 0.9)},
            objects=[
                make_object("p1", "plane", height=Fact(300, 0.7)),
                make_object("jw", "person", confidence=0.8),
            ],
            relationships=[Relationship("bombs", ("p1", "t1"), 0.6)],
        )
        rebuilt = segment_from_dict(segment_to_dict(segment))
        assert rebuilt.segment_attribute("kind").value == "battle"
        assert rebuilt.segment_attribute("length").confidence == pytest.approx(0.9)
        assert rebuilt.object("p1").attribute("height").confidence == (
            pytest.approx(0.7)
        )
        assert rebuilt.object("jw").confidence == pytest.approx(0.8)
        assert rebuilt.find_relationship(
            "bombs", ("p1", "t1")
        ).confidence == pytest.approx(0.6)

    def test_full_confidence_compact_form(self):
        segment = SegmentMetadata(attributes={"kind": "talk"})
        document = segment_to_dict(segment)
        assert document["attributes"]["kind"] == "talk"  # no wrapper dict


class TestVideos:
    @pytest.mark.parametrize("builder", [western_video, gulf_war_video])
    def test_hierarchy_round_trip(self, builder):
        video = builder()
        rebuilt = video_from_dict(video_to_dict(video))
        assert rebuilt.name == video.name
        assert rebuilt.level_names == video.level_names
        assert rebuilt.n_levels == video.n_levels
        for level in range(1, video.n_levels + 1):
            assert len(rebuilt.nodes_at_level(level)) == len(
                video.nodes_at_level(level)
            )
        assert rebuilt.object_universe() == video.object_universe()


class TestDatabases:
    def test_casablanca_round_trip_preserves_query_results(self, tmp_path):
        original = casablanca_database()
        path = tmp_path / "db.json"
        dump_database(original, str(path))
        restored = load_database(str(path))

        engine = RetrievalEngine()
        formula = query1()
        before = engine.evaluate_video(
            formula, original.get("making-of-casablanca"), database=original
        )
        after = engine.evaluate_video(
            formula, restored.get("making-of-casablanca"), database=restored
        )
        assert before == after

    def test_atomics_round_trip(self):
        original = casablanca_database()
        restored = database_from_dict(database_to_dict(original))
        assert restored.atomic_names() == original.atomic_names()
        assert restored.atomic_list(
            "Moving-Train", "making-of-casablanca"
        ) == original.atomic_list("Moving-Train", "making-of-casablanca")

    def test_unknown_format_rejected(self):
        with pytest.raises(ModelError):
            database_from_dict({"format": 99})

    def test_json_is_plain(self):
        document = database_to_dict(casablanca_database())
        json.dumps(document)  # must not raise
