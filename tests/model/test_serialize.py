"""Round-trip and trust-boundary tests for JSON persistence.

Two properties: everything the model can express survives
``loads(dumps(db))`` exactly, and every malformed payload a file or
network peer could hand us surfaces as a typed error at the boundary —
never a raw ``KeyError``/``TypeError`` and never a silently corrupt
object.
"""

import json

import pytest

from repro.core.engine import RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.errors import HierarchyError, ModelError, ReproError
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode, flat_video
from repro.model.serialize import (
    database_from_dict,
    database_to_dict,
    dump_database,
    load_database,
    segment_from_dict,
    segment_to_dict,
    simlist_from_dict,
    simlist_to_dict,
    video_from_dict,
    video_to_dict,
)
from repro.model.metadata import (
    Fact,
    Relationship,
    SegmentMetadata,
    make_object,
)
from repro.workloads.casablanca import casablanca_database, query1
from repro.workloads.movies import gulf_war_video, western_video

from tests.core.test_simlist import similarity_lists
from hypothesis import given, settings
from hypothesis import strategies as st


class TestSimilarityLists:
    def test_round_trip(self):
        sim = SimilarityList.from_entries(
            [((1, 4), 2.595), ((9, 9), 9.787)], 10.0
        )
        assert simlist_from_dict(simlist_to_dict(sim)) == sim

    @given(similarity_lists())
    @settings(max_examples=60)
    def test_round_trip_property(self, sim):
        through_json = json.loads(json.dumps(simlist_to_dict(sim)))
        assert simlist_from_dict(through_json) == sim


class TestSegments:
    def test_round_trip_with_confidences(self):
        segment = SegmentMetadata(
            attributes={"kind": "battle", "length": Fact(90, 0.9)},
            objects=[
                make_object("p1", "plane", height=Fact(300, 0.7)),
                make_object("jw", "person", confidence=0.8),
            ],
            relationships=[Relationship("bombs", ("p1", "t1"), 0.6)],
        )
        rebuilt = segment_from_dict(segment_to_dict(segment))
        assert rebuilt.segment_attribute("kind").value == "battle"
        assert rebuilt.segment_attribute("length").confidence == pytest.approx(0.9)
        assert rebuilt.object("p1").attribute("height").confidence == (
            pytest.approx(0.7)
        )
        assert rebuilt.object("jw").confidence == pytest.approx(0.8)
        assert rebuilt.find_relationship(
            "bombs", ("p1", "t1")
        ).confidence == pytest.approx(0.6)

    def test_full_confidence_compact_form(self):
        segment = SegmentMetadata(attributes={"kind": "talk"})
        document = segment_to_dict(segment)
        assert document["attributes"]["kind"] == "talk"  # no wrapper dict


class TestVideos:
    @pytest.mark.parametrize("builder", [western_video, gulf_war_video])
    def test_hierarchy_round_trip(self, builder):
        video = builder()
        rebuilt = video_from_dict(video_to_dict(video))
        assert rebuilt.name == video.name
        assert rebuilt.level_names == video.level_names
        assert rebuilt.n_levels == video.n_levels
        for level in range(1, video.n_levels + 1):
            assert len(rebuilt.nodes_at_level(level)) == len(
                video.nodes_at_level(level)
            )
        assert rebuilt.object_universe() == video.object_universe()


class TestDatabases:
    def test_casablanca_round_trip_preserves_query_results(self, tmp_path):
        original = casablanca_database()
        path = tmp_path / "db.json"
        dump_database(original, str(path))
        restored = load_database(str(path))

        engine = RetrievalEngine()
        formula = query1()
        before = engine.evaluate_video(
            formula, original.get("making-of-casablanca"), database=original
        )
        after = engine.evaluate_video(
            formula, restored.get("making-of-casablanca"), database=restored
        )
        assert before == after

    def test_atomics_round_trip(self):
        original = casablanca_database()
        restored = database_from_dict(database_to_dict(original))
        assert restored.atomic_names() == original.atomic_names()
        assert restored.atomic_list(
            "Moving-Train", "making-of-casablanca"
        ) == original.atomic_list("Moving-Train", "making-of-casablanca")

    def test_unknown_format_rejected(self):
        with pytest.raises(ModelError):
            database_from_dict({"format": 99})

    def test_json_is_plain(self):
        document = database_to_dict(casablanca_database())
        json.dumps(document)  # must not raise


# ---------------------------------------------------------------------------
# adversarial payloads at the trust boundary
# ---------------------------------------------------------------------------
class TestAdversarialPayloads:
    """Malformed input raises typed errors, never raw Python ones."""

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no keys at all
            {"maximum": 10.0},  # entries missing
            {"entries": []},  # maximum missing
            {"maximum": "ten", "entries": []},  # non-numeric maximum
            {"maximum": 10.0, "entries": [[1, 2]]},  # short entry
            {"maximum": 10.0, "entries": [[1, 2, "high"]]},  # junk actual
            {"maximum": 10.0, "entries": 7},  # entries not a list
            {"maximum": 10.0, "entries": [None]},  # entry not a triple
            "just a string",  # not even a dict
            None,
        ],
    )
    def test_simlist_structural_junk(self, payload):
        with pytest.raises(ModelError):
            simlist_from_dict(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            # Out-of-range actuals must hit the SimilarityValue gate.
            {"maximum": 10.0, "entries": [[1, 2, -1.0]]},
            {"maximum": 10.0, "entries": [[1, 2, 11.0]]},
            # Invariant violations: overlapping and inverted intervals.
            # (Out-of-order entries are canonicalized by from_entries,
            # not rejected — order in the payload carries no meaning.)
            {"maximum": 10.0, "entries": [[1, 5, 1.0], [3, 8, 1.0]]},
            {"maximum": 10.0, "entries": [[5, 1, 1.0]]},
        ],
    )
    def test_simlist_semantic_junk_is_typed(self, payload):
        with pytest.raises(ReproError):
            simlist_from_dict(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            {"attributes": 7},  # attributes not a mapping
            {"attributes": {"kind": [1, 2]}},  # list-valued attribute
            {"attributes": {"kind": {"value": [1]}}},  # wrapped non-scalar
            {"objects": [{"type": "person"}]},  # object without id
            {"objects": [{"id": "p1"}]},  # object without type
            {"objects": 13},  # objects not a list
            {"relationships": [{"args": ["a"]}]},  # relationship, no name
            {"relationships": [{"name": "r", "args": 5}]},  # junk args
        ],
    )
    def test_segment_structural_junk(self, payload):
        with pytest.raises(ModelError):
            segment_from_dict(payload)

    def test_duplicate_object_ids_rejected(self):
        payload = {
            "objects": [
                {"id": "p1", "type": "person"},
                {"id": "p1", "type": "plane"},
            ]
        }
        with pytest.raises(ReproError):
            segment_from_dict(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # nameless
            {"name": "", "root": {}},  # empty name
            {"name": 7, "root": {}},  # non-string name
            {"name": "v"},  # no root
            {"name": "v", "root": []},  # root not a node document
            {"name": "v", "root": {"children": 3}},  # junk children
            {"name": "v", "root": {}, "level_names": {"one": "x"}},
        ],
    )
    def test_video_structural_junk(self, payload):
        with pytest.raises(ModelError):
            video_from_dict(payload)

    def test_video_ragged_leaves_hit_hierarchy_gate(self):
        payload = {
            "name": "ragged",
            "root": {
                "children": [
                    {"children": [{}]},  # leaf at level 3
                    {},  # leaf at level 2
                ]
            },
        }
        with pytest.raises(HierarchyError):
            video_from_dict(payload)

    @pytest.mark.parametrize(
        "payload",
        [
            {"format": 1, "videos": 7, "atomics": []},
            {"format": 1, "videos": [], "atomics": {}},
            {"format": 1, "videos": [None], "atomics": []},
            {
                "format": 1,
                "videos": [],
                # atomic referencing a video that does not exist
                "atomics": [
                    {
                        "predicate": "P1",
                        "video": "ghost",
                        "list": {"maximum": 1.0, "entries": []},
                    }
                ],
            },
            {
                "format": 1,
                "videos": [{"name": "v", "root": {"children": [{}]}}],
                "atomics": [{"predicate": "P1"}],  # no video, no list
            },
        ],
    )
    def test_database_structural_junk(self, payload):
        with pytest.raises(ModelError):
            database_from_dict(payload)


# ---------------------------------------------------------------------------
# whole-database round-trip property (hypothesis)
# ---------------------------------------------------------------------------
attr_values = st.one_of(
    st.text(min_size=1, max_size=8),
    st.integers(-100, 100),
    st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
)
confidences = st.one_of(
    st.just(1.0), st.floats(0.1, 1.0, allow_nan=False)
)
names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=6
)


@st.composite
def segment_metadata(draw):
    """Random segment metadata, including the empty segment."""
    attributes = {
        name: Fact(draw(attr_values), draw(confidences))
        for name in draw(st.lists(names, max_size=3, unique=True))
    }
    object_ids = draw(st.lists(names, max_size=3, unique=True))
    objects = []
    for object_id in object_ids:
        attrs = {
            name: Fact(draw(attr_values), draw(confidences))
            for name in draw(st.lists(names, max_size=2, unique=True))
        }
        objects.append(
            make_object(
                object_id,
                draw(st.sampled_from(["person", "plane", "train"])),
                confidence=draw(confidences),
                **attrs,
            )
        )
    relationships = []
    if object_ids and draw(st.booleans()):
        relationships.append(
            Relationship(
                draw(names),
                tuple(
                    draw(
                        st.lists(
                            st.sampled_from(object_ids),
                            min_size=1,
                            max_size=2,
                        )
                    )
                ),
                draw(confidences),
            )
        )
    return SegmentMetadata(
        attributes=attributes, objects=objects, relationships=relationships
    )


@st.composite
def video_databases(draw):
    """Random databases: flat and 3-level videos, atomics, empty nodes."""
    database = VideoDatabase()
    n_videos = draw(st.integers(1, 2))
    for position in range(n_videos):
        if draw(st.booleans()):  # flat two-level video
            segments = draw(
                st.lists(segment_metadata(), min_size=1, max_size=4)
            )
            video = flat_video(f"v{position}", segments)
        else:  # uniform three-level video, some nodes empty
            root = VideoNode(metadata=draw(segment_metadata()))
            for __ in range(draw(st.integers(1, 2))):
                scene = root.add_child(VideoNode())  # empty interior node
                for ___ in range(draw(st.integers(1, 3))):
                    scene.add_child(
                        VideoNode(metadata=draw(segment_metadata()))
                    )
            video = Video(name=f"v{position}", root=root)
        database.add(video)
        for predicate in draw(
            st.lists(st.sampled_from(["P1", "P2"]), max_size=2, unique=True)
        ):
            database.register_atomic(
                predicate,
                video.name,
                draw(similarity_lists()),
                level=draw(st.sampled_from([1, 2])),
            )
    return database


class TestDatabaseRoundTripProperty:
    @given(video_databases())
    @settings(max_examples=40, deadline=None)
    def test_loads_dumps_identity(self, database):
        document = database_to_dict(database)
        through_json = json.loads(json.dumps(document))
        restored = database_from_dict(through_json)
        assert database_to_dict(restored) == document

    @given(video_databases())
    @settings(max_examples=15, deadline=None)
    def test_round_trip_preserves_structure(self, database):
        restored = database_from_dict(
            json.loads(json.dumps(database_to_dict(database)))
        )
        assert restored.names() == database.names()
        assert restored.atomic_names() == database.atomic_names()
        for video in database.videos():
            rebuilt = restored.get(video.name)
            assert rebuilt.n_levels == video.n_levels
            assert rebuilt.object_universe() == video.object_universe()
