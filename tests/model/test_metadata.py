"""Tests for segment meta-data."""

import pytest

from repro.errors import MetadataError
from repro.model.metadata import (
    Fact,
    ObjectInstance,
    Relationship,
    SegmentMetadata,
    as_fact,
    make_object,
)


class TestFact:
    def test_plain_value_coerced(self):
        fact = as_fact(5)
        assert fact.value == 5
        assert fact.confidence == 1.0

    def test_fact_passthrough(self):
        fact = Fact("x", 0.5)
        assert as_fact(fact) is fact

    def test_confidence_bounds(self):
        with pytest.raises(MetadataError):
            Fact(1, 0.0)
        with pytest.raises(MetadataError):
            Fact(1, 1.5)


class TestObjectInstance:
    def test_attribute_lookup(self):
        plane = make_object("p1", "airplane", height=300)
        assert plane.attribute("height").value == 300

    def test_type_falls_back_to_object_type(self):
        plane = make_object("p1", "airplane", confidence=0.8)
        fact = plane.attribute("type")
        assert fact.value == "airplane"
        assert fact.confidence == pytest.approx(0.8)

    def test_explicit_type_attribute_wins(self):
        odd = ObjectInstance("p1", "airplane", attributes={"type": "jet"})
        assert odd.attribute("type").value == "jet"

    def test_missing_attribute(self):
        assert make_object("p1", "airplane").attribute("speed") is None

    def test_confidence_validation(self):
        with pytest.raises(MetadataError):
            ObjectInstance("p1", "airplane", confidence=2.0)

    def test_fact_valued_attributes(self):
        plane = make_object("p1", "airplane", height=Fact(300, 0.7))
        assert plane.attribute("height").confidence == pytest.approx(0.7)


class TestRelationship:
    def test_needs_args(self):
        with pytest.raises(MetadataError):
            Relationship("holds", ())

    def test_confidence_validation(self):
        with pytest.raises(MetadataError):
            Relationship("holds", ("a",), confidence=0.0)


class TestSegmentMetadata:
    @pytest.fixture
    def segment(self):
        return SegmentMetadata(
            attributes={"type": "western", "length": Fact(90, 0.9)},
            objects=[
                make_object("jw", "person", name="John Wayne"),
                make_object("b1", "bandit"),
            ],
            relationships=[Relationship("fires_at", ("jw", "b1"))],
        )

    def test_segment_attribute(self, segment):
        assert segment.segment_attribute("type").value == "western"
        assert segment.segment_attribute("length").confidence == pytest.approx(0.9)
        assert segment.segment_attribute("missing") is None

    def test_object_lookup(self, segment):
        assert segment.has_object("jw")
        assert not segment.has_object("nobody")
        assert segment.object("jw").type == "person"
        assert segment.object("nobody") is None

    def test_object_attribute(self, segment):
        assert segment.object_attribute("jw", "name").value == "John Wayne"
        assert segment.object_attribute("jw", "age") is None
        assert segment.object_attribute("nobody", "name") is None

    def test_duplicate_object_rejected(self, segment):
        with pytest.raises(MetadataError):
            segment.add_object(make_object("jw", "person"))

    def test_find_relationship(self, segment):
        assert segment.find_relationship("fires_at", ("jw", "b1")) is not None
        assert segment.find_relationship("fires_at", ("b1", "jw")) is None
        assert segment.find_relationship("holds", ("jw",)) is None

    def test_relationships_named(self, segment):
        segment.add_relationship(Relationship("fires_at", ("b1", "jw")))
        assert len(list(segment.relationships_named("fires_at"))) == 2

    def test_object_ids(self, segment):
        assert sorted(segment.object_ids()) == ["b1", "jw"]
