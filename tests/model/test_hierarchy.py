"""Tests for the hierarchical video model."""

import pytest

from repro.errors import HierarchyError, ModelError, UnknownLevelError
from repro.model.database import VideoDatabase
from repro.core.simlist import SimilarityList
from repro.model.hierarchy import (
    Video,
    VideoNode,
    flat_video,
    standard_level_names,
)
from repro.model.metadata import SegmentMetadata, make_object


def three_level_video():
    """video -> 2 scenes -> (3, 2) shots."""
    root = VideoNode()
    scene1 = root.add_child(VideoNode())
    scene2 = root.add_child(VideoNode())
    for __ in range(3):
        scene1.add_child(VideoNode())
    for __ in range(2):
        scene2.add_child(VideoNode())
    return Video(
        name="demo", root=root, level_names={1: "video", 2: "scene", 3: "shot"}
    )


class TestVideoConstruction:
    def test_levels_assigned(self):
        video = three_level_video()
        assert video.root.level == 1
        assert video.root.children[0].level == 2
        assert video.root.children[0].children[0].level == 3
        assert video.n_levels == 3

    def test_sibling_indices_one_based(self):
        video = three_level_video()
        assert [child.index for child in video.root.children] == [1, 2]

    def test_uneven_leaves_rejected(self):
        root = VideoNode()
        root.add_child(VideoNode())  # leaf at level 2
        deep = root.add_child(VideoNode())
        deep.add_child(VideoNode())  # leaf at level 3
        with pytest.raises(HierarchyError):
            Video(name="bad", root=root)

    def test_duplicate_level_names_rejected(self):
        root = VideoNode()
        root.add_child(VideoNode())
        with pytest.raises(HierarchyError):
            Video(name="bad", root=root, level_names={1: "a", 2: "a"})

    def test_level_name_out_of_range_rejected(self):
        root = VideoNode()
        with pytest.raises(UnknownLevelError):
            Video(name="bad", root=root, level_names={5: "frame"})


class TestNavigation:
    def test_nodes_at_level(self):
        video = three_level_video()
        assert len(video.nodes_at_level(1)) == 1
        assert len(video.nodes_at_level(2)) == 2
        assert len(video.nodes_at_level(3)) == 5

    def test_nodes_at_level_in_temporal_order(self):
        video = three_level_video()
        shots = video.nodes_at_level(3)
        parents = [shot.parent.index for shot in shots]
        assert parents == [1, 1, 1, 2, 2]

    def test_descendants_at_own_level_is_self(self):
        video = three_level_video()
        scene = video.root.children[0]
        assert scene.descendants_at_level(2) == [scene]

    def test_descendants_above_own_level_rejected(self):
        video = three_level_video()
        scene = video.root.children[0]
        with pytest.raises(UnknownLevelError):
            scene.descendants_at_level(1)

    def test_level_out_of_range(self):
        video = three_level_video()
        with pytest.raises(UnknownLevelError):
            video.nodes_at_level(4)

    def test_level_of_name(self):
        video = three_level_video()
        assert video.level_of("shot") == 3
        with pytest.raises(UnknownLevelError):
            video.level_of("frame")

    def test_object_universe(self):
        segments = [
            SegmentMetadata(objects=[make_object("a", "t")]),
            SegmentMetadata(objects=[make_object("b", "t"), make_object("a", "t")]),
        ]
        video = flat_video("v", segments)
        assert video.object_universe() == ["a", "b"]


class TestFlatVideo:
    def test_two_levels(self):
        video = flat_video("v", [SegmentMetadata() for __ in range(4)])
        assert video.n_levels == 2
        assert len(video.nodes_at_level(2)) == 4
        assert video.level_of("shot") == 2

    def test_empty_flat_video(self):
        video = flat_video("v", [])
        assert video.n_levels == 1


class TestAppendSegments:
    def test_append_extends_in_place(self):
        video = flat_video("v", [SegmentMetadata() for __ in range(3)])
        added = video.append_segments([SegmentMetadata(), SegmentMetadata()])
        assert len(added) == 2
        leaves = video.nodes_at_level(2)
        assert len(leaves) == 5
        assert [node.index for node in leaves] == [1, 2, 3, 4, 5]
        assert all(node.parent is video.root for node in added)

    def test_append_to_empty_video_creates_the_leaf_level(self):
        video = flat_video("v", [])
        assert video.n_levels == 1
        video.append_segments([SegmentMetadata()])
        assert video.n_levels == 2
        assert video.level_of("shot") == 2
        assert len(video.nodes_at_level(2)) == 1

    def test_append_nothing_is_a_no_op(self):
        video = flat_video("v", [SegmentMetadata()])
        system = video.root.pictures_at_level(2)
        assert video.append_segments([]) == []
        assert video.root.pictures_at_level(2) is system

    def test_append_keeps_installed_picture_systems_warm(self):
        video = flat_video(
            "v", [SegmentMetadata(objects=[make_object("a", "train")])]
        )
        level_one = video.root.pictures_at_level(1)
        level_two = video.root.pictures_at_level(2)
        video.append_segments(
            [SegmentMetadata(objects=[make_object("b", "person")])]
        )
        # Same system objects, extended — not rebuilt from scratch.
        assert video.root.pictures_at_level(1) is level_one
        assert video.root.pictures_at_level(2) is level_two
        assert len(level_two.segments) == 2
        assert level_two.index.n_segments == 2

    def test_appended_index_equals_rebuilt(self):
        segments = [
            SegmentMetadata(objects=[make_object(f"o{i}", "train")])
            for i in range(4)
        ]
        grown = flat_video("v", segments[:2])
        grown.root.pictures_at_level(2)  # install before appending
        grown.append_segments(segments[2:])
        whole = flat_video("v", segments)
        assert (
            grown.root.pictures_at_level(2).index.to_dict()
            == whole.root.pictures_at_level(2).index.to_dict()
        )

    def test_deep_video_refuses_append(self):
        video = three_level_video()
        with pytest.raises(HierarchyError, match="flat"):
            video.append_segments([SegmentMetadata()])


class TestStandardLevelNames:
    def test_five_levels(self):
        names = standard_level_names(5)
        assert names == {
            1: "video",
            2: "subplot",
            3: "scene",
            4: "shot",
            5: "frame",
        }

    def test_two_levels(self):
        assert standard_level_names(2) == {1: "video", 2: "frame"}

    def test_out_of_range(self):
        with pytest.raises(HierarchyError):
            standard_level_names(6)


class TestDatabase:
    def test_add_and_get(self):
        database = VideoDatabase()
        video = flat_video("v", [SegmentMetadata()])
        database.add(video)
        assert database.get("v") is video
        assert "v" in database
        assert len(database) == 1

    def test_duplicate_rejected(self):
        database = VideoDatabase()
        database.add(flat_video("v", [SegmentMetadata()]))
        with pytest.raises(ModelError):
            database.add(flat_video("v", [SegmentMetadata()]))

    def test_missing_video(self):
        with pytest.raises(ModelError):
            VideoDatabase().get("ghost")

    def test_atomic_registry(self):
        database = VideoDatabase()
        database.add(flat_video("v", [SegmentMetadata()]))
        sim = SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        database.register_atomic("P", "v", sim)
        assert database.atomic_list("P", "v") == sim
        assert database.atomic_list("P", "v", level=3) is None
        assert database.atomic_list("Q", "v") is None
        assert database.atomic_names() == ["P"]

    def test_atomic_for_unknown_video_rejected(self):
        database = VideoDatabase()
        sim = SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        with pytest.raises(ModelError):
            database.register_atomic("P", "ghost", sim)
