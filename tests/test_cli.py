"""Tests for the command-line front end."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestClassify:
    def test_type1(self, capsys):
        code, out, __ = run_cli(capsys, "classify", "$P1 and eventually $P2")
        assert code == 0
        assert "TYPE1" in out

    def test_conjunctive(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "classify",
            "exists x . present(x) and [h := f(x)] eventually g(x) > h",
        )
        assert code == 0
        assert "CONJUNCTIVE" in out

    def test_parse_error_reported(self, capsys):
        code, __, err = run_cli(capsys, "classify", "and and")
        assert code == 1
        assert "error:" in err


class TestRun:
    def test_casablanca_query1(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--ranked",
            "atomic('Man-Woman') and eventually atomic('Moving-Train')",
        )
        assert code == 0
        assert "12.382" in out
        assert out.index("12.382") < out.index("11.047")

    def test_top_k(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--top",
            "2",
            "atomic('Moving-Train')",
        )
        assert code == 0
        assert "Top 2 segments" in out
        assert "segment 9" in out

    def test_named_level(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--dataset",
            "western",
            "--level",
            "frame",
            "exists y . on_floor(y)",
        )
        assert code == 0
        assert "level 4 (frame)" in out

    def test_unknown_atomic_is_clean_error(self, capsys):
        code, __, err = run_cli(capsys, "run", "atomic('nope')")
        assert code == 1
        assert "no similarity list" in err


class TestSql:
    def test_script_shown(self, capsys):
        code, out, __ = run_cli(capsys, "sql", "$P1 and $P2", "--size", "50")
        assert code == 0
        assert "INSERT INTO" in out
        assert "generated SQL" in out

    def test_execute(self, capsys):
        code, out, __ = run_cli(
            capsys, "sql", "eventually $P1", "--size", "40", "--execute"
        )
        assert code == 0
        assert "result:" in out

    def test_unsupported_class_reported(self, capsys):
        code, __, err = run_cli(capsys, "sql", "exists x . eventually present(x)")
        assert code == 1
        assert "type (1)" in err


class TestDatasets:
    def test_listing(self, capsys):
        code, out, __ = run_cli(capsys, "datasets")
        assert code == 0
        assert "casablanca" in out
        assert "gulf-war" in out
        assert "Moving-Train" in out
