"""Tests for the command-line front end."""

import pytest

from repro import errors
from repro.cli import EXIT_CODES, exit_code_for, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestClassify:
    def test_type1(self, capsys):
        code, out, __ = run_cli(capsys, "classify", "$P1 and eventually $P2")
        assert code == 0
        assert "TYPE1" in out

    def test_conjunctive(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "classify",
            "exists x . present(x) and [h := f(x)] eventually g(x) > h",
        )
        assert code == 0
        assert "CONJUNCTIVE" in out

    def test_parse_error_reported(self, capsys):
        code, __, err = run_cli(capsys, "classify", "and and")
        assert code == EXIT_CODES[errors.HTLSyntaxError]
        assert "error:" in err


class TestRun:
    def test_casablanca_query1(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--ranked",
            "atomic('Man-Woman') and eventually atomic('Moving-Train')",
        )
        assert code == 0
        assert "12.382" in out
        assert out.index("12.382") < out.index("11.047")

    def test_top_k(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--top",
            "2",
            "atomic('Moving-Train')",
        )
        assert code == 0
        assert "Top 2 segments" in out
        assert "segment 9" in out

    def test_named_level(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--dataset",
            "western",
            "--level",
            "frame",
            "exists y . on_floor(y)",
        )
        assert code == 0
        assert "level 4 (frame)" in out

    def test_unknown_atomic_is_clean_error(self, capsys):
        code, __, err = run_cli(capsys, "run", "atomic('nope')")
        assert code == EXIT_CODES[errors.UnsupportedFormulaError]
        assert "no similarity list" in err


class TestSql:
    def test_script_shown(self, capsys):
        code, out, __ = run_cli(capsys, "sql", "$P1 and $P2", "--size", "50")
        assert code == 0
        assert "INSERT INTO" in out
        assert "generated SQL" in out

    def test_execute(self, capsys):
        code, out, __ = run_cli(
            capsys, "sql", "eventually $P1", "--size", "40", "--execute"
        )
        assert code == 0
        assert "result:" in out

    def test_unsupported_class_reported(self, capsys):
        code, __, err = run_cli(capsys, "sql", "exists x . eventually present(x)")
        assert code == EXIT_CODES[errors.UnsupportedFormulaError]
        assert "type (1)" in err


class TestExitCodes:
    def test_distinct_and_nonzero(self):
        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        assert all(code != 0 for code in codes)
        assert 2 not in codes  # reserved by argparse for usage errors

    def test_most_specific_class_wins(self):
        assert exit_code_for(
            errors.HTLSyntaxError("boom")
        ) == EXIT_CODES[errors.HTLSyntaxError]
        assert exit_code_for(
            errors.BudgetExceededError("slow")
        ) == EXIT_CODES[errors.BudgetExceededError]

    def test_unmapped_subclass_falls_back_to_family(self):
        class CustomModelError(errors.ModelError):
            pass

        assert exit_code_for(CustomModelError("x")) == EXIT_CODES[
            errors.ModelError
        ]


class TestValidation:
    def test_negative_top_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--top", "-1", "atomic('Moving-Train')"])
        assert excinfo.value.code == 2

    def test_zero_level_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--level", "0", "atomic('Moving-Train')"])
        assert excinfo.value.code == 2

    def test_zero_parallel_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "run",
                    "--across",
                    "--top",
                    "2",
                    "--parallel",
                    "0",
                    "atomic('Moving-Train')",
                ]
            )
        assert excinfo.value.code == 2

    def test_across_requires_top(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--across", "atomic('Moving-Train')"])
        assert excinfo.value.code == 2

    def test_lenient_requires_across(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--lenient", "atomic('Moving-Train')"])
        assert excinfo.value.code == 2

    def test_bad_deadline_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--deadline-ms", "0", "atomic('Moving-Train')"])
        assert excinfo.value.code == 2


class TestResilienceFlags:
    def test_across_ranks_all_videos(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--dataset",
            "western",
            "--across",
            "--top",
            "3",
            "exists x . present(x)",
        )
        assert code == 0
        assert "segments across" in out

    def test_deadline_exceeded_maps_to_budget_code(self, capsys):
        # A 1-step budget cannot cover any real query.
        code, __, err = run_cli(
            capsys,
            "run",
            "--max-steps",
            "1",
            "atomic('Man-Woman') and eventually atomic('Moving-Train')",
        )
        assert code == EXIT_CODES[errors.BudgetExceededError]
        assert "error:" in err

    def test_lenient_across_survives_budget(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "run",
            "--dataset",
            "western",
            "--across",
            "--top",
            "2",
            "--lenient",
            "--max-steps",
            "1",
            "exists x . present(x)",
        )
        assert code == 0
        assert "partial result" in out


class TestTrace:
    def test_trace_renders_span_tree_and_reports(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "trace",
            "eventually (exists x . present(x))",
            "--top",
            "2",
        )
        assert code == 0
        assert "(query)" in out
        assert "(video)" in out
        assert "(atom-sweep)" in out
        assert "Per-stage timing" in out
        assert "Latency percentiles" in out
        assert "Top 2 segments" in out

    def test_trace_parallel_keeps_parentage(self, capsys):
        code, out, __ = run_cli(
            capsys,
            "trace",
            "exists x . present(x)",
            "--dataset",
            "western",
            "--top",
            "3",
            "--parallel",
            "2",
        )
        assert code == 0
        assert "parallelism=2" in out
        assert "(video)" in out

    def test_trace_json_export(self, capsys):
        import json

        code, out, __ = run_cli(
            capsys,
            "trace",
            "exists x . present(x)",
            "--top",
            "1",
            "--json",
        )
        assert code == 0
        payload = json.loads(out)
        assert set(payload) == {"metrics", "trace"}
        assert payload["trace"]["spans"]["kind"] == "query"
        assert "stage_breakdown" in payload["trace"]
        assert "histograms" in payload["metrics"]

    def test_trace_parse_error_reported(self, capsys):
        code, __, err = run_cli(capsys, "trace", "and and")
        assert code == EXIT_CODES[errors.HTLSyntaxError]
        assert "error:" in err


class TestDatasets:
    def test_listing(self, capsys):
        code, out, __ = run_cli(capsys, "datasets")
        assert code == 0
        assert "casablanca" in out
        assert "gulf-war" in out
        assert "Moving-Train" in out


class TestStore:
    def test_save_verify_load_workflow(self, capsys, tmp_path):
        root = str(tmp_path / "store")
        code, out, __ = run_cli(
            capsys, "store", "save", "--dir", root, "--dataset", "western"
        )
        assert code == 0
        assert "saved snap-000001" in out

        code, out, __ = run_cli(capsys, "store", "verify", "--dir", root)
        assert code == 0
        assert "store OK" in out

        code, out, __ = run_cli(capsys, "store", "load", "--dir", root)
        assert code == 0
        assert "loaded snap-000001 (verified)" in out

    def test_load_reports_recovery_actions(self, capsys, tmp_path):
        import os

        root = str(tmp_path / "store")
        run_cli(capsys, "store", "save", "--dir", root)
        run_cli(capsys, "store", "save", "--dir", root)
        victim = os.path.join(
            root, "snapshots", "snap-000002", "videos.json"
        )
        data = open(victim, "rb").read()
        open(victim, "wb").write(data[: len(data) // 2])

        code, out, __ = run_cli(capsys, "store", "verify", "--dir", root)
        assert code == 1
        assert "DAMAGED" in out

        code, out, __ = run_cli(capsys, "store", "load", "--dir", root)
        assert code == 0
        assert "loaded snap-000001" in out
        assert "recovery: quarantined" in out

        code, out, __ = run_cli(capsys, "store", "repair", "--dir", root)
        assert code == 0
        assert "repaired" in out
        code, out, __ = run_cli(capsys, "store", "verify", "--dir", root)
        assert code == 0

    def test_empty_store_maps_to_store_exit_code(self, capsys, tmp_path):
        code, __, err = run_cli(
            capsys, "store", "load", "--dir", str(tmp_path / "nothing")
        )
        assert code == EXIT_CODES[errors.StoreError]
        assert "error:" in err

    def test_corrupt_store_maps_to_corruption_exit_code(
        self, capsys, tmp_path
    ):
        import os

        root = str(tmp_path / "store")
        run_cli(capsys, "store", "save", "--dir", root)
        victim = os.path.join(
            root, "snapshots", "snap-000001", "videos.json"
        )
        data = open(victim, "rb").read()
        open(victim, "wb").write(data[: len(data) // 2])
        code, __, err = run_cli(capsys, "store", "load", "--dir", root)
        assert code == EXIT_CODES[errors.StoreCorruptionError]
        assert "no intact snapshot" in err

    def test_unverified_load(self, capsys, tmp_path):
        root = str(tmp_path / "store")
        run_cli(capsys, "store", "save", "--dir", root)
        code, out, __ = run_cli(
            capsys, "store", "load", "--dir", root, "--no-verify"
        )
        assert code == 0
        assert "(unverified)" in out

    def test_store_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["store"])
        assert excinfo.value.code == 2


class TestShard:
    def test_split_then_info_workflow(self, capsys, tmp_path):
        root = str(tmp_path / "layout")
        code, out, __ = run_cli(
            capsys, "shard", "split", "--dir", root,
            "--dataset", "western", "--shards", "2",
        )
        assert code == 0
        assert "2 shard(s)" in out
        assert "shard-000" in out and "shard-001" in out
        code, out, __ = run_cli(capsys, "shard", "info", "--dir", root)
        assert code == 0
        assert "round-robin" in out
        assert "4 video(s)" in out

    def test_info_stats_prints_index_sizes(self, capsys, tmp_path):
        root = str(tmp_path / "layout")
        run_cli(
            capsys, "shard", "split", "--dir", root,
            "--dataset", "western", "--shards", "2",
        )
        code, out, __ = run_cli(
            capsys, "shard", "info", "--dir", root, "--stats"
        )
        assert code == 0
        assert "segment(s)" in out
        assert "profile(s)" in out

    def test_run_against_shard_dir(self, capsys, tmp_path):
        root = str(tmp_path / "layout")
        run_cli(
            capsys, "shard", "split", "--dir", root,
            "--dataset", "western", "--shards", "2",
        )
        code, out, __ = run_cli(
            capsys, "run", "--across", "--top", "3", "--shard-dir", root,
            "exists x . present(x)",
        )
        assert code == 0
        assert "scatter-gather over 2 shard(s)" in out
        assert "Top 3 segments across 4 videos" in out

    def test_run_with_inline_shards_matches_unsharded(self, capsys):
        query = "atomic('Man-Woman') and eventually atomic('Moving-Train')"
        code, plain, __ = run_cli(
            capsys, "run", "--across", "--top", "3", query
        )
        assert code == 0
        code, sharded, __ = run_cli(
            capsys, "run", "--across", "--top", "3", "--shards", "2", query
        )
        assert code == 0
        # Identical ranking lines; the sharded run adds only its header.
        assert sharded.splitlines()[1:] == plain.splitlines()

    def test_missing_layout_maps_to_shard_exit_code(self, capsys, tmp_path):
        code, __, err = run_cli(
            capsys, "run", "--across", "--top", "2",
            "--shard-dir", str(tmp_path / "nothing"), "atomic('P1')",
        )
        assert code == EXIT_CODES[errors.ShardError] == 27
        assert "no shard layout" in err

    def test_shards_require_across(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--top", "2", "--shards", "2", "atomic('P1')"])
        assert excinfo.value.code == 2

    def test_shards_and_shard_dir_mutually_exclusive(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "run", "--across", "--top", "2", "--shards", "2",
                "--shard-dir", str(tmp_path), "atomic('P1')",
            ])
        assert excinfo.value.code == 2

    def test_shard_dir_rejects_named_level(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "run", "--across", "--top", "2", "--shard-dir",
                str(tmp_path), "--level", "scene", "atomic('P1')",
            ])
        assert excinfo.value.code == 2

    def test_zero_shards_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--across", "--top", "2", "--shards", "0", "x"])
        assert excinfo.value.code == 2

    def test_shard_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["shard"])
        assert excinfo.value.code == 2

    def test_shard_error_exit_code_is_distinct(self):
        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        assert exit_code_for(errors.ShardError("x")) == 27


class TestServe:
    def test_serves_queries_and_reports_ledger(self, capsys):
        code, out, err = run_cli(
            capsys,
            "serve",
            "--dataset",
            "western",
            "--workers",
            "2",
            "--top",
            "3",
            "--level",
            "4",
            "exists x . present(x)",
            "interactive:exists x . present(x)",
        )
        assert code == 0
        assert "completed" in out
        assert "[interactive]" in out
        assert "served 2 request(s)" in err
        assert "2 completed" in err

    def test_json_payloads(self, capsys):
        import json

        code, out, __ = run_cli(
            capsys,
            "serve",
            "--dataset",
            "western",
            "--json",
            "--level",
            "4",
            "exists x . present(x)",
        )
        assert code == 0
        lines = [json.loads(line) for line in out.strip().splitlines()]
        assert lines[0]["status"] == "completed"
        assert lines[0]["sla"] == "standard"
        stats = lines[-1]["stats"]
        assert stats["conserved"] is True
        assert stats["admitted"] == 1

    def test_store_and_shard_dir_mutually_exclusive(self, capsys, tmp_path):
        code, __, err = run_cli(
            capsys,
            "serve",
            "--shard-dir",
            str(tmp_path),
            "--store",
            str(tmp_path),
            "x",
        )
        assert code == EXIT_CODES[errors.ServeError]
        assert "mutually exclusive" in err

    def test_syntax_error_maps_to_htl_code(self, capsys):
        code, __, err = run_cli(
            capsys, "serve", "--dataset", "western", "and and"
        )
        assert code == EXIT_CODES[errors.HTLSyntaxError]
        assert "error:" in err

    def test_serve_exit_codes_are_distinct(self):
        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        assert exit_code_for(errors.ServeError("x")) == 28
        assert exit_code_for(errors.ServeRejected("x")) == 29


class TestIngest:
    def write_ops_file(self, tmp_path):
        import json

        from repro.ingest import AddAnnotations, AddVideo, encode_op
        from repro.model.metadata import SegmentMetadata, make_object
        from repro.workloads.synthetic import random_similarity_list

        import random

        segments = [
            SegmentMetadata(objects=[make_object("o1", "person")])
            for __ in range(3)
        ]
        operations = [
            AddVideo(name="live0", segments=tuple(segments)),
            AddAnnotations(
                video="live0",
                predicate="P9",
                sim=random_similarity_list(3, rng=random.Random(5)),
            ),
        ]
        ops_file = tmp_path / "ops.json"
        ops_file.write_text(json.dumps([encode_op(op) for op in operations]))
        return str(ops_file)

    def test_init_append_checkpoint_recover_workflow(self, capsys, tmp_path):
        root = str(tmp_path / "ingest")
        code, out, __ = run_cli(
            capsys, "ingest", "init", "--dir", root, "--dataset", "western"
        )
        assert code == 0
        assert "initialised ingest directory" in out

        ops_file = self.write_ops_file(tmp_path)
        code, out, __ = run_cli(
            capsys, "ingest", "append", "--dir", root, "--ops", ops_file
        )
        assert code == 0
        assert "appended 2 record(s) (sequences 1..2)" in out
        assert "live0" in out

        code, out, __ = run_cli(capsys, "ingest", "checkpoint", "--dir", root)
        assert code == 0
        assert "checkpointed (incremental) delta-000001" in out

        code, out, __ = run_cli(capsys, "ingest", "recover", "--dir", root)
        assert code == 0
        assert "0 WAL record(s) replayed" in out
        assert "1 delta(s)" in out

    def test_append_survives_recovery_without_checkpoint(
        self, capsys, tmp_path
    ):
        root = str(tmp_path / "ingest")
        run_cli(capsys, "ingest", "init", "--dir", root)
        ops_file = self.write_ops_file(tmp_path)
        run_cli(capsys, "ingest", "append", "--dir", root, "--ops", ops_file)
        code, out, __ = run_cli(capsys, "ingest", "recover", "--dir", root)
        assert code == 0
        assert "2 WAL record(s) replayed" in out
        assert "1 video(s)" in out

    def test_init_refuses_existing_directory(self, capsys, tmp_path):
        root = str(tmp_path / "ingest")
        run_cli(capsys, "ingest", "init", "--dir", root)
        code, __, err = run_cli(capsys, "ingest", "init", "--dir", root)
        assert code == EXIT_CODES[errors.IngestError] == 30
        assert "already holds" in err

    def test_corrupt_wal_maps_to_corruption_exit_code(self, capsys, tmp_path):
        import os

        root = str(tmp_path / "ingest")
        run_cli(capsys, "ingest", "init", "--dir", root)
        ops_file = self.write_ops_file(tmp_path)
        run_cli(capsys, "ingest", "append", "--dir", root, "--ops", ops_file)
        wal_path = os.path.join(root, "wal.log")
        blob = bytearray(open(wal_path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with open(wal_path, "wb") as handle:
            handle.write(blob)
        code, __, err = run_cli(capsys, "ingest", "recover", "--dir", root)
        assert code == EXIT_CODES[errors.WALCorruptionError] == 31
        assert "error:" in err

    def test_bad_ops_file_is_a_typed_error(self, capsys, tmp_path):
        root = str(tmp_path / "ingest")
        run_cli(capsys, "ingest", "init", "--dir", root)
        junk = tmp_path / "junk.json"
        junk.write_text("{not json")
        code, __, err = run_cli(
            capsys, "ingest", "append", "--dir", root, "--ops", str(junk)
        )
        assert code == EXIT_CODES[errors.IngestError]
        assert "not JSON" in err

    def test_ingest_exit_codes_are_distinct(self):
        codes = list(EXIT_CODES.values())
        assert len(set(codes)) == len(codes)
        assert exit_code_for(errors.IngestError("x")) == 30
        assert exit_code_for(errors.WALCorruptionError("x")) == 31


class TestSigint:
    def test_interrupt_mid_serve_drains_and_exits_130(
        self, capsys, monkeypatch
    ):
        from repro import cli

        def interrupted_lines(arguments):
            yield "exists x . present(x)"
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_serve_lines", interrupted_lines)
        code, out, err = run_cli(
            capsys, "serve", "--dataset", "western", "--level", "4"
        )
        assert code == 130
        assert "draining" in err
        # The admitted request still reports a terminal outcome: the
        # drain finished it, nothing was dropped.
        assert "#1" in out
        assert "served 1 request(s)" in err

    def test_interrupt_elsewhere_is_clean(self, capsys, monkeypatch):
        from repro import cli

        def boom(arguments):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "cmd_datasets", boom)
        code, __, err = run_cli(capsys, "datasets")
        assert code == 130
        assert "interrupted" in err
        assert "Traceback" not in err
