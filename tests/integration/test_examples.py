"""Every example script must run cleanly and print its key results."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "12.382" in out
        assert "Table 4" in out
        assert "Top 5 shots" in out

    def test_western_shootout(self):
        out = run_example("western_shootout.py")
        assert "100% of a perfect match" in out
        assert "western" in out

    def test_airplane_altitude(self):
        out = run_example("airplane_altitude.py")
        assert "Formula (C)" in out
        assert "Paper-mode (inner-join) result identical: True" in out

    def test_gulf_war_browse(self):
        out = run_example("gulf_war_browse.py")
        assert "Browsing query" in out
        assert "Strike pattern per scene" in out

    def test_sql_comparison_quick(self):
        out = run_example("sql_comparison.py", "--quick")
        assert "Table 5" in out
        assert "Table 6" in out
        assert "Shape check" in out

    def test_library_tour(self):
        out = run_example("library_tour.py")
        assert "results identical after reload: True" in out
        assert "optimizer collapsed" in out

    def test_analyzer_pipeline(self):
        out = run_example("analyzer_pipeline.py")
        assert "boundary recall 100%" in out
        assert "Query 1 over the analyzer's shots" in out
