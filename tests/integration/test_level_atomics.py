"""AtomicRef resolution at nested hierarchy levels.

The database registry keys atomic similarity lists by (predicate, video,
level); a level modal operator descends to a different level, where the
same name may resolve to a different list.
"""

import pytest

from repro.core.engine import RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.errors import UnsupportedFormulaError
from repro.htl import parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode
from repro.model.metadata import SegmentMetadata


def build():
    root = VideoNode()
    for __ in range(2):
        scene = root.add_child(VideoNode())
        for __ in range(3):
            scene.add_child(VideoNode())
    video = Video(
        name="v", root=root, level_names={1: "video", 2: "scene", 3: "shot"}
    )
    database = VideoDatabase()
    database.add(video)
    return video, database


class TestPerLevelRegistration:
    def test_same_name_different_levels(self):
        video, database = build()
        scene_list = SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        shot_list = SimilarityList.from_entries([((2, 3), 2.0)], 2.0)
        database.register_atomic("P", "v", scene_list, level=2)
        database.register_atomic("P", "v", shot_list, level=3)
        engine = RetrievalEngine()

        at_scenes = engine.evaluate_video(
            parse("atomic('P')"), video, level=2, database=database
        )
        assert at_scenes == scene_list

        # at_shot_level descends: each scene's value is P at its first shot.
        descended = engine.evaluate_video(
            parse("at_shot_level(atomic('P'))"),
            video,
            level=2,
            database=database,
        )
        # shot_list covers local shots 2-3 of each scene; the first shot
        # scores 0, so no scene gets a positive value.
        assert not descended

        # Re-register with coverage on the first shot.
        shot_list_first = SimilarityList.from_entries([((1, 1), 2.0)], 2.0)
        video2, database2 = build()
        database2.register_atomic("P", "v", shot_list_first, level=3)
        descended2 = engine.evaluate_video(
            parse("at_shot_level(atomic('P'))"),
            video2,
            level=2,
            database=database2,
        )
        assert descended2.to_segment_values() == {
            1: pytest.approx(2.0),
            2: pytest.approx(2.0),
        }

    def test_missing_level_registration_raises(self):
        video, database = build()
        database.register_atomic(
            "P", "v", SimilarityList.from_entries([((1, 1), 1.0)], 2.0), level=2
        )
        engine = RetrievalEngine()
        with pytest.raises(UnsupportedFormulaError):
            engine.evaluate_video(
                parse("at_shot_level(atomic('P'))"),
                video,
                level=2,
                database=database,
            )

    def test_atomic_lists_param_applies_to_all_levels(self):
        video, database = build()
        lists = {"P": SimilarityList.from_entries([((1, 1), 1.0)], 2.0)}
        engine = RetrievalEngine()
        result = engine.evaluate_video(
            parse("at_shot_level(atomic('P'))"),
            video,
            level=2,
            atomic_lists=lists,
        )
        # Every scene's first shot has value 1.
        assert result.to_segment_values() == {1: 1.0, 2: 1.0}
