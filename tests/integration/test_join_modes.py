"""Targeted demonstrations of inner (paper) vs outer (definitional) joins.

DESIGN.md §2 documents that the paper's inner join under-approximates the
∃-maximum whenever an evaluation appears on one side of a join only; these
tests construct that situation explicitly.
"""

import pytest

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.htl import parse
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata, make_object

INNER = RetrievalEngine(EngineConfig(join_mode="inner"))
OUTER = RetrievalEngine(EngineConfig(join_mode="outer"))


def disjoint_support_video():
    """Object 'a' satisfies P only, object 'b' satisfies Q only.

    For the conjunction ∃x (P(x)-part ∧ Q(x)-part), every evaluation has a
    row on exactly one side, so the paper's inner join returns nothing
    while the definitional semantics award partial similarity.
    """
    return flat_video(
        "disjoint",
        [
            SegmentMetadata(objects=[make_object("a", "train")]),
            SegmentMetadata(objects=[make_object("b", "person")]),
        ],
    )


class TestDivergence:
    FORMULA = parse(
        "exists x . (present(x) and type(x) = 'train') "
        "and eventually (present(x) and type(x) = 'person')"
    )

    def test_outer_keeps_partial_matches(self):
        video = disjoint_support_video()
        outer = OUTER.evaluate_video(self.FORMULA, video)
        # x = a at segment 1: left part scores 2 (present + train), right
        # part scores 1 via presence alone (a is no person) -> 3 of 4.
        assert outer.actual_at(1) == pytest.approx(3.0)

    def test_inner_agrees_here_because_atoms_overlap(self):
        """Both atoms produce rows for both objects (presence scores
        partially for the wrong type), so the join keys match and the
        modes agree — under-approximation needs an evaluation missing
        from one table entirely."""
        video = disjoint_support_video()
        inner = INNER.evaluate_video(self.FORMULA, video)
        outer = OUTER.evaluate_video(self.FORMULA, video)
        assert inner == outer

    def test_inner_drops_one_sided_evaluations(self):
        """With relationship atoms the tables have disjoint rows ('a' only
        in holds, 'b' only in rides) and the inner join loses both."""
        video = flat_video(
            "rel-disjoint",
            [
                SegmentMetadata(
                    objects=[make_object("a", "t"), make_object("b", "t")],
                ),
            ],
        )
        video.nodes_at_level(2)[0].metadata.add_relationship(
            __import__(
                "repro.model.metadata", fromlist=["Relationship"]
            ).Relationship("holds", ("a",))
        )
        formula = parse(
            "exists x . holds(x) and eventually rides(x)"
        )
        inner = INNER.evaluate_video(formula, video)
        outer = OUTER.evaluate_video(formula, video)
        # Definitional: x=a gives holds=1, rides=0 -> 1 of 2.
        assert outer.actual_at(1) == pytest.approx(1.0)
        # Paper inner join: 'a' has no row in the (empty) rides table.
        assert inner.actual_at(1) == 0.0

    def test_modes_agree_when_both_sides_populated(self):
        video = flat_video(
            "both",
            [
                SegmentMetadata(objects=[make_object("a", "train")]),
                SegmentMetadata(objects=[make_object("a", "person")]),
            ],
        )
        formula = parse(
            "exists x . (present(x) and type(x) = 'train') "
            "and eventually (present(x) and type(x) = 'person')"
        )
        inner = INNER.evaluate_video(formula, video)
        outer = OUTER.evaluate_video(formula, video)
        assert inner == outer
        assert inner.actual_at(1) == pytest.approx(4.0)
