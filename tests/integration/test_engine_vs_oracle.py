"""Cross-validation: the fast engine against the definitional oracle.

The engine in outer-join mode implements the similarity semantics of paper
§2.5 exactly (DESIGN.md §2), so its interval-list output must equal the
per-segment recursion of :mod:`repro.core.semantics` on every supported
formula.  The inner-join (paper) mode may only ever *under*-approximate:
it drops evaluations missing from one side of a join.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.semantics import ReferenceContext, reference_list
from repro.core.simlist import SIM_EPS

from tests.integration.strategies import (
    conjunctive_formulas,
    deep_videos,
    extended_formulas,
    flat_videos,
    type1_formulas,
    type2_formulas,
)

OUTER_ENGINE = RetrievalEngine(EngineConfig(join_mode="outer"))
INNER_ENGINE = RetrievalEngine(EngineConfig(join_mode="inner"))

RELAXED = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def reference(formula, video, level=2):
    nodes = video.nodes_at_level(level)
    context = ReferenceContext(
        nodes=nodes,
        video=video,
        level=level,
        universe=video.object_universe(),
    )
    return reference_list(formula, context)


def assert_lists_equal(actual, expected, label=""):
    assert abs(actual.maximum - expected.maximum) <= 1e-6, (
        f"{label} maxima differ: {actual.maximum} vs {expected.maximum}"
    )
    horizon = max(actual.last_id(), expected.last_id()) + 1
    for position in range(1, horizon + 1):
        assert actual.actual_at(position) == pytest.approx(
            expected.actual_at(position), abs=1e-7
        ), f"{label} differs at segment {position}"


class TestOuterModeIsDefinitional:
    @given(type1_formulas(), flat_videos())
    @RELAXED
    def test_type1(self, formula, video):
        engine_result = OUTER_ENGINE.evaluate_video(formula, video)
        assert_lists_equal(engine_result, reference(formula, video), "type1")

    @given(type2_formulas(), flat_videos())
    @RELAXED
    def test_type2(self, formula, video):
        engine_result = OUTER_ENGINE.evaluate_video(formula, video)
        assert_lists_equal(engine_result, reference(formula, video), "type2")

    @given(conjunctive_formulas(), flat_videos())
    @RELAXED
    def test_conjunctive(self, formula, video):
        engine_result = OUTER_ENGINE.evaluate_video(formula, video)
        assert_lists_equal(
            engine_result, reference(formula, video), "conjunctive"
        )

    @given(extended_formulas(), deep_videos())
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_extended_on_hierarchies(self, formula, video):
        engine_result = OUTER_ENGINE.evaluate_video(formula, video, level=2)
        assert_lists_equal(
            engine_result, reference(formula, video, level=2), "extended"
        )


class TestInnerModeUnderApproximates:
    @given(type2_formulas(), flat_videos())
    @RELAXED
    def test_inner_never_exceeds_outer(self, formula, video):
        inner = INNER_ENGINE.evaluate_video(formula, video)
        outer = OUTER_ENGINE.evaluate_video(formula, video)
        horizon = max(inner.last_id(), outer.last_id()) + 1
        for position in range(1, horizon + 1):
            assert (
                inner.actual_at(position)
                <= outer.actual_at(position) + SIM_EPS
            )

    @given(type1_formulas(), flat_videos())
    @RELAXED
    def test_modes_agree_on_type1(self, formula, video):
        """Type (1) formulas join single-row (closed) tables, where inner
        and outer joins coincide."""
        inner = INNER_ENGINE.evaluate_video(formula, video)
        outer = OUTER_ENGINE.evaluate_video(formula, video)
        assert_lists_equal(inner, outer, "type1 modes")
