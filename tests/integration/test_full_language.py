"""The full-language engine mode (``allow_extensions=True``) vs the oracle.

Extends the §5 future-work direction: disjunction and ``always`` over
temporal subformulas and existential quantifiers at arbitrary positions,
cross-checked against the definitional evaluator; negation over temporal
subformulas stays rejected in every mode.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.errors import UnsupportedFormulaError
from repro.htl import ast, parse

from tests.integration.strategies import flat_videos, type1_formulas
from tests.integration.test_engine_vs_oracle import (
    assert_lists_equal,
    reference,
)

FULL_ENGINE = RetrievalEngine(
    EngineConfig(join_mode="outer", allow_extensions=True)
)
DEFAULT_ENGINE = RetrievalEngine()

RELAXED = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def _extend(children):
    return st.one_of(
        st.tuples(children, children).map(lambda p: ast.Or(*p)),
        st.tuples(children, children).map(lambda p: ast.And(*p)),
        st.tuples(children, children).map(lambda p: ast.Until(*p)),
        children.map(ast.Always),
        children.map(ast.Eventually),
        children.map(ast.Next),
    )


def full_language_formulas():
    """Closed formulas using Or/Always/non-prefix Exists freely."""
    return st.recursive(type1_formulas(), _extend, max_leaves=4)


class TestFullLanguageMode:
    @given(full_language_formulas(), flat_videos())
    @RELAXED
    def test_matches_oracle(self, formula, video):
        engine_result = FULL_ENGINE.evaluate_video(formula, video)
        assert_lists_equal(
            engine_result, reference(formula, video), "full-language"
        )

    def test_disjunction_example(self):
        formula = parse(
            "exists x . (eventually (present(x) and type(x) = 'plane')) "
            "or always kind() = 'talk'"
        )
        # Non-prefix ∃ over a disjunction of temporal formulas: rejected
        # by default, supported in extensions mode.
        from tests.integration.strategies import flat_videos as fv

        video = fv().example()
        with pytest.raises(UnsupportedFormulaError):
            DEFAULT_ENGINE.evaluate_video(formula, video)
        engine_result = FULL_ENGINE.evaluate_video(formula, video)
        assert_lists_equal(
            engine_result, reference(formula, video), "disjunction"
        )

    def test_negated_temporal_still_rejected(self):
        formula = parse("not eventually kind() = 'talk'")
        video = flat_videos().example()
        with pytest.raises(UnsupportedFormulaError):
            FULL_ENGINE.evaluate_video(formula, video)

    def test_non_prefix_exists(self):
        formula = parse("eventually exists x . next present(x)")
        video = flat_videos().example()
        engine_result = FULL_ENGINE.evaluate_video(formula, video)
        assert_lists_equal(
            engine_result, reference(formula, video), "non-prefix exists"
        )
