"""Hypothesis strategies for random videos and evaluable HTL formulas.

The formula generator stays inside the class the retrieval engine supports
(extended conjunctive skeleton) and inside the documented semantic
conventions (consistent attribute-variable typing, integer captures for
integer-compared variables), so the engine in outer-join mode must agree
with the definitional oracle exactly.
"""

from hypothesis import strategies as st

from repro.htl import ast
from repro.model.hierarchy import Video, VideoNode, flat_video
from repro.model.metadata import (
    Fact,
    Relationship,
    SegmentMetadata,
    make_object,
)

OBJECT_IDS = ["o1", "o2", "o3"]
TYPES = ["plane", "person"]
HEIGHTS = [50, 100, 300]
KINDS = ["action", "talk"]
CONFIDENCES = [1.0, 0.5]


@st.composite
def segment_metadata(draw, full_confidence=False):
    objects = []
    for object_id in OBJECT_IDS:
        if not draw(st.booleans()):
            continue
        confidence = 1.0 if full_confidence else draw(st.sampled_from(CONFIDENCES))
        attributes = {}
        if draw(st.booleans()):
            attributes["height"] = Fact(
                draw(st.sampled_from(HEIGHTS)),
                1.0 if full_confidence else draw(st.sampled_from(CONFIDENCES)),
            )
        objects.append(
            make_object(
                object_id,
                draw(st.sampled_from(TYPES)),
                confidence=confidence,
                **attributes,
            )
        )
    relationships = []
    present = [instance.object_id for instance in objects]
    if len(present) >= 2 and draw(st.booleans()):
        relationships.append(
            Relationship(
                "near",
                (present[0], present[1]),
                confidence=1.0
                if full_confidence
                else draw(st.sampled_from(CONFIDENCES)),
            )
        )
    attributes = {}
    if draw(st.booleans()):
        attributes["kind"] = draw(st.sampled_from(KINDS))
    return SegmentMetadata(
        attributes=attributes, objects=objects, relationships=relationships
    )


@st.composite
def flat_videos(draw, min_segments=1, max_segments=7, full_confidence=False):
    n = draw(st.integers(min_segments, max_segments))
    segments = [
        draw(segment_metadata(full_confidence=full_confidence))
        for __ in range(n)
    ]
    return flat_video("random", segments)


@st.composite
def deep_videos(draw, full_confidence=False):
    """Three-level videos (video → scenes → shots) for level operators."""
    n_scenes = draw(st.integers(1, 3))
    root = VideoNode(metadata=draw(segment_metadata(full_confidence=full_confidence)))
    for __ in range(n_scenes):
        scene = root.add_child(
            VideoNode(metadata=draw(segment_metadata(full_confidence=full_confidence)))
        )
        for __ in range(draw(st.integers(1, 3))):
            scene.add_child(
                VideoNode(
                    metadata=draw(
                        segment_metadata(full_confidence=full_confidence)
                    )
                )
            )
    return Video(
        name="deep",
        root=root,
        level_names={1: "video", 2: "scene", 3: "shot"},
    )


# ---------------------------------------------------------------------------
# formulas
# ---------------------------------------------------------------------------
def _atom_conditions(var_names):
    """Atomic conditions over the given free object variables."""
    options = []
    for name in var_names:
        var = ast.ObjectVar(name)
        options.extend(
            [
                st.just(ast.Present(var)),
                st.sampled_from(TYPES).map(
                    lambda t, v=var: ast.Compare(
                        "=", ast.AttrFunc("type", (v,)), ast.Const(t)
                    )
                ),
                st.sampled_from(HEIGHTS).map(
                    lambda h, v=var: ast.Compare(
                        ">", ast.AttrFunc("height", (v,)), ast.Const(h)
                    )
                ),
            ]
        )
    if len(var_names) >= 2:
        options.append(
            st.just(
                ast.Rel(
                    "near",
                    (ast.ObjectVar(var_names[0]), ast.ObjectVar(var_names[1])),
                )
            )
        )
    options.append(
        st.sampled_from(KINDS).map(
            lambda k: ast.Compare("=", ast.AttrFunc("kind", ()), ast.Const(k))
        )
    )
    return st.one_of(options)


@st.composite
def closed_atoms(draw):
    """Closed non-temporal formulas (each its own ∃ when needed)."""
    n_vars = draw(st.integers(0, 2))
    names = OBJECT_IDS[:0]  # empty
    names = ["x", "y"][:n_vars]
    n_conds = draw(st.integers(1, 3))
    conds = [draw(_atom_conditions(names or ["x"]))] if not names else [
        draw(_atom_conditions(names)) for __ in range(n_conds)
    ]
    if not names:
        # Only variable-free conditions allowed.
        cond = draw(
            st.sampled_from(KINDS).map(
                lambda k: ast.Compare(
                    "=", ast.AttrFunc("kind", ()), ast.Const(k)
                )
            )
        )
        return cond
    formula = conds[0]
    for cond in conds[1:]:
        formula = ast.And(formula, cond)
    return ast.Exists(tuple(names), formula)


def _combine(children):
    return st.one_of(
        st.tuples(children, children).map(lambda pair: ast.And(*pair)),
        st.tuples(children, children).map(lambda pair: ast.Until(*pair)),
        children.map(ast.Next),
        children.map(ast.Eventually),
    )


def type1_formulas():
    """Closed type (1) formulas: closed atoms + temporal skeleton."""
    return st.recursive(closed_atoms(), _combine, max_leaves=5)


@st.composite
def type2_formulas(draw):
    """Prefix-∃ formulas whose atoms share the quantified variables."""
    n_vars = draw(st.integers(1, 2))
    names = ["x", "y"][:n_vars]

    def open_atom():
        return st.lists(
            _atom_conditions(names), min_size=1, max_size=2
        ).map(lambda conds: _conj(conds))

    body = draw(st.recursive(open_atom(), _combine, max_leaves=4))
    return ast.Exists(tuple(names), body)


@st.composite
def conjunctive_formulas(draw):
    """Prefix-∃ plus a freeze capturing an integer attribute."""
    names = ["x"]
    var = ast.ObjectVar("x")

    def open_atom(allow_h):
        conds = [
            st.just(ast.Present(var)),
            st.sampled_from(HEIGHTS).map(
                lambda h: ast.Compare(
                    ">", ast.AttrFunc("height", (var,)), ast.Const(h)
                )
            ),
        ]
        if allow_h:
            conds.append(
                st.sampled_from([">", ">=", "<", "<=", "="]).map(
                    lambda op: ast.Compare(
                        op, ast.AttrFunc("height", (var,)), ast.AttrVar("h")
                    )
                )
            )
        return st.lists(st.one_of(conds), min_size=1, max_size=2).map(_conj)

    inner = draw(st.recursive(open_atom(True), _combine, max_leaves=3))
    frozen = ast.Freeze("h", ast.AttrFunc("height", (var,)), inner)
    prefix_body = draw(
        st.one_of(
            st.just(frozen),
            st.tuples(st.recursive(open_atom(False), _combine, max_leaves=2)).map(
                lambda single: ast.And(single[0], frozen)
            ),
        )
    )
    return ast.Exists(tuple(names), prefix_body)


@st.composite
def extended_formulas(draw):
    """Formulas with one level modal operator over a type (1)/(2) body."""
    body = draw(st.one_of(type1_formulas(), type2_formulas()))
    operator = draw(
        st.sampled_from(
            [
                ast.AtNextLevel,
                lambda sub: ast.AtLevel(3, sub),
                lambda sub: ast.AtNamedLevel("shot", sub),
            ]
        )
    )
    wrapped = operator(body)
    outer = draw(st.one_of(type1_formulas(), closed_atoms()))
    shape = draw(st.integers(0, 2))
    if shape == 0:
        return wrapped
    if shape == 1:
        return ast.And(outer, wrapped)
    return ast.Eventually(wrapped)


def _conj(conds):
    formula = conds[0]
    for cond in conds[1:]:
        formula = ast.And(formula, cond)
    return formula
