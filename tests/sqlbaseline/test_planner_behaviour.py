"""The executor's optimisations must actually bound the work done.

These tests pin the planner's behaviour through the
:class:`~repro.sqlbaseline.relational.executor.ExecutionStats` counters:
hash joins and index-range probes keep scanned-row counts near the output
size instead of the cross-product size, and decorrelated subqueries avoid
per-row re-execution.  Without these properties the Tables 5/6 comparison
would measure an artificially bad baseline.
"""

import pytest

from repro.sqlbaseline.relational.executor import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE big (id INTEGER, val REAL)")
    relation = database.catalog.get("big")
    relation.insert_many((i, float(i % 97)) for i in range(1, 2001))
    database.execute("CREATE TABLE small (id INTEGER)")
    database.catalog.get("small").insert_many(
        (i,) for i in range(1, 2001, 100)
    )
    return database


class TestHashJoin:
    def test_equi_join_scans_linear(self, db):
        db.stats.reset()
        result = db.query(
            "SELECT s.id FROM small s, big b WHERE b.id = s.id"
        )
        assert len(result) == 20
        # One pass to build the hash (2000) + one row fetched per probe.
        assert db.stats.rows_scanned <= 2000 + 20 + 50

    def test_cross_product_would_be_quadratic(self, db):
        db.stats.reset()
        db.query("SELECT COUNT(*) FROM small s, big b")
        # No join predicate: the full cross product really is scanned.
        assert db.stats.rows_scanned >= 20 * 2000


class TestRangeProbe:
    def test_between_uses_sorted_index(self, db):
        db.stats.reset()
        result = db.query(
            "SELECT s.id, b.id FROM small s, big b "
            "WHERE b.id BETWEEN s.id AND s.id + 4"
        )
        assert len(result) == 100  # 20 probes x 5 ids
        # Scanned rows ~ output size, not 20 x 2000.
        assert db.stats.rows_scanned <= 400

    def test_one_sided_range(self, db):
        db.stats.reset()
        result = db.query(
            "SELECT COUNT(*) FROM small s, big b WHERE b.id >= s.id"
        )
        assert result.rows[0][0] == sum(
            2000 - start + 1 for start in range(1, 2001, 100)
        )


class TestDecorrelation:
    def test_exists_probes_hash_not_rescans(self, db):
        db.stats.reset()
        db.query(
            "SELECT b.id FROM big b WHERE EXISTS "
            "(SELECT * FROM small s WHERE s.id = b.id)"
        )
        # The semi-join builds `small`'s key set once (20 rows) and scans
        # `big` once; re-executing per row would scan 2000 x 20.
        assert db.stats.rows_scanned <= 2000 + 20 + 50

    def test_not_exists_anti_join(self, db):
        db.stats.reset()
        result = db.query(
            "SELECT COUNT(*) FROM big b WHERE NOT EXISTS "
            "(SELECT * FROM small s WHERE s.id = b.id)"
        )
        assert result.rows[0][0] == 1980
        assert db.stats.rows_scanned <= 2000 + 20 + 50

    def test_correlated_max_uses_suffix_arrays(self, db):
        db.stats.reset()
        result = db.query(
            "SELECT s.id, (SELECT MAX(b.val) FROM big b WHERE b.id >= s.id) "
            "FROM small s"
        )
        assert len(result) == 20
        # One scan of big to build the arrays; probes are bisections.
        assert db.stats.rows_scanned <= 2000 + 20 + 50
        # And the answers are right: max of val over a suffix.
        expected_last = max(float(i % 97) for i in range(1901, 2001))
        by_id = {row[0]: row[1] for row in result.rows}
        assert by_id[1901] == pytest.approx(expected_last)

    def test_correlated_min_prefix(self, db):
        result = db.query(
            "SELECT s.id, (SELECT MIN(b.id) FROM big b WHERE b.id <= s.id) "
            "FROM small s WHERE s.id = 501"
        )
        assert result.rows == [(501, 1)]

    def test_grouped_correlated_aggregate(self, db):
        db.execute(
            """
            CREATE TABLE events (grp INTEGER, at INTEGER, score REAL);
            INSERT INTO events VALUES
              (1, 10, 5.0), (1, 20, 9.0), (1, 30, 2.0),
              (2, 15, 7.0), (2, 25, 1.0);
            """
        )
        result = db.query(
            "SELECT e.grp, e.at, (SELECT MAX(f.score) FROM events f "
            "WHERE f.grp = e.grp AND f.at >= e.at) FROM events e "
            "ORDER BY e.grp, e.at"
        )
        assert result.rows == [
            (1, 10, 9.0),
            (1, 20, 9.0),
            (1, 30, 2.0),
            (2, 15, 7.0),
            (2, 25, 1.0),
        ]

    def test_generic_fallback_still_correct(self, db):
        """A shape outside every fast path (two inner tables) falls back
        to per-row execution with the same answers."""
        result = db.query(
            "SELECT s.id FROM small s WHERE EXISTS "
            "(SELECT * FROM big b, big c "
            " WHERE b.id = s.id AND c.id = b.id AND c.val >= 0) "
            "ORDER BY s.id LIMIT 3"
        )
        assert result.column("id") == [1, 101, 201]


class TestScalarSubqueryCorrelationViaHashKey:
    def test_equality_to_subquery_is_hash_key(self, db):
        """`b.id = (SELECT ...)` with an outer-correlated scalar subquery
        becomes a hash probe on b.id (the Table 6 straddler pattern)."""
        db.stats.reset()
        result = db.query(
            "SELECT s.id, b.id FROM small s, big b "
            "WHERE b.id = (SELECT MIN(c.id) FROM big c WHERE c.id >= s.id)"
        )
        assert len(result) == 20
        assert all(row[0] == row[1] for row in result.rows)
        # hash build (2000) + aggregate-plan build (2000) + probes.
        assert db.stats.rows_scanned <= 4100
