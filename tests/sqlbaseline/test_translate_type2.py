"""Type (2) SQL translation vs the direct engine (paper inner-join mode).

The paper's SQL system covered "any conjunctive formula"; our relational
reconstruction covers type (2) and must return exactly the lists the
direct engine computes in its default mode.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.engine import RetrievalEngine
from repro.errors import UnsupportedFormulaError
from repro.htl import parse
from repro.model.hierarchy import flat_video
from repro.model.metadata import Relationship, SegmentMetadata, make_object
from repro.sqlbaseline.system import Type2SQLSystem
from repro.sqlbaseline.translate_type2 import Type2SQLTranslator

from tests.integration.strategies import flat_videos, type1_formulas, type2_formulas

ENGINE = RetrievalEngine()  # default = paper inner-join mode


def demo_video():
    video = flat_video(
        "demo",
        [
            SegmentMetadata(
                objects=[make_object("a", "train"), make_object("b", "person")],
            ),
            SegmentMetadata(objects=[make_object("a", "person")]),
            SegmentMetadata(objects=[make_object("b", "train")]),
        ],
    )
    video.nodes_at_level(2)[0].metadata.add_relationship(
        Relationship("near", ("a", "b"))
    )
    return video


class TestHandWorked:
    def test_conjunction_with_shared_variable(self):
        formula = parse(
            "exists x . (present(x) and type(x) = 'train') "
            "and eventually (present(x) and type(x) = 'person')"
        )
        video = demo_video()
        assert Type2SQLSystem().evaluate_on_video(
            formula, video
        ) == ENGINE.evaluate_video(formula, video)

    def test_until_with_two_variables(self):
        formula = parse(
            "exists x, y . near(x, y) until (present(x) and present(y))"
        )
        video = demo_video()
        assert Type2SQLSystem().evaluate_on_video(
            formula, video
        ) == ENGINE.evaluate_video(formula, video)

    def test_next_inside(self):
        formula = parse("exists x . present(x) and next present(x)")
        video = demo_video()
        assert Type2SQLSystem().evaluate_on_video(
            formula, video
        ) == ENGINE.evaluate_video(formula, video)

    def test_type1_formulas_also_covered(self):
        formula = parse(
            "(exists x . present(x)) and eventually (exists y . type(y) = 'person')"
        )
        video = demo_video()
        assert Type2SQLSystem().evaluate_on_video(
            formula, video
        ) == ENGINE.evaluate_video(formula, video)


class TestRandomEquivalence:
    @given(type2_formulas(), flat_videos(max_segments=5))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_type2_matches_engine(self, formula, video):
        sql_result = Type2SQLSystem().evaluate_on_video(formula, video)
        engine_result = ENGINE.evaluate_video(formula, video)
        assert sql_result == engine_result, f"formula: {formula}"

    @given(type1_formulas(), flat_videos(max_segments=5))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_type1_matches_engine(self, formula, video):
        sql_result = Type2SQLSystem().evaluate_on_video(formula, video)
        engine_result = ENGINE.evaluate_video(formula, video)
        assert sql_result == engine_result, f"formula: {formula}"


class TestScope:
    def test_conjunctive_with_freeze_rejected(self):
        translator = Type2SQLTranslator()
        formula = parse(
            "exists x . [h := height(x)] eventually height(x) > h"
        )
        with pytest.raises(UnsupportedFormulaError):
            translator.translate(formula, lambda atom: None)

    def test_zero_threshold_rejected(self):
        with pytest.raises(UnsupportedFormulaError):
            Type2SQLTranslator(threshold=0.0)

    def test_temporaries_cleaned(self):
        system = Type2SQLSystem()
        video = demo_video()
        formula = parse("exists x . present(x) and eventually present(x)")
        system.evaluate_on_video(formula, video)
        leftovers = [
            name
            for name in system.database.catalog.table_names()
            if name.startswith("q")
        ]
        assert leftovers == []


class TestRegressionAliasCollisions:
    """Variable names that collide with internal SQL aliases must work."""

    @pytest.mark.parametrize("name", ["c2", "c3", "c4", "p", "r", "h", "x"])
    def test_alias_like_variable_names(self, name):
        video = flat_video(
            "v",
            [
                SegmentMetadata(objects=[make_object("a", "t")]),
                SegmentMetadata(objects=[make_object("a", "t")]),
            ],
        )
        formula = parse(
            f"exists {name} . present({name}) until present({name})"
        )
        direct = ENGINE.evaluate_video(formula, video)
        sql = Type2SQLSystem().evaluate_on_video(formula, video)
        assert sql == direct
