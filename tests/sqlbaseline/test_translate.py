"""Direct system vs SQL-based system: identical results (paper §4.1).

"Both approaches produced identical final values as well as identical
intermediate similarity tables."  We check final values on the paper's
Query 1 and on randomly generated type (1) formulas over random lists.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.errors import UnsupportedFormulaError
from repro.htl import ast, parse
from repro.sqlbaseline import SQLRetrievalSystem, SQLTranslator

from tests.core.test_simlist import similarity_lists

ATOM_NAMES = ["P1", "P2", "P3"]


@st.composite
def type1_over_atoms(draw):
    leaf = st.sampled_from(ATOM_NAMES).map(ast.AtomicRef)
    return draw(
        st.recursive(
            leaf,
            lambda children: st.one_of(
                st.tuples(children, children).map(lambda p: ast.And(*p)),
                st.tuples(children, children).map(lambda p: ast.Until(*p)),
                children.map(ast.Next),
                children.map(ast.Eventually),
            ),
            max_leaves=5,
        )
    )


def evaluate_both(formula, lists, n_segments):
    engine = RetrievalEngine()
    direct = engine.combine_lists(formula, lists)
    sql = SQLRetrievalSystem()
    sql.load_segments(n_segments)
    for name, sim in lists.items():
        sql.load_atomic(name, sim)
    return direct, sql.evaluate(formula)


class TestPaperQuery1:
    MT = SimilarityList.from_entries([((9, 9), 9.787)], 10.0)
    MW = SimilarityList.from_entries(
        [
            ((1, 4), 2.595),
            ((6, 6), 1.26),
            ((8, 8), 1.26),
            ((10, 44), 1.26),
            ((47, 49), 6.26),
        ],
        8.0,
    )

    def test_identical_final_values(self):
        formula = parse(
            "atomic('Man-Woman') and eventually atomic('Moving-Train')"
        )
        direct, sql = evaluate_both(
            formula, {"Man-Woman": self.MW, "Moving-Train": self.MT}, 50
        )
        assert direct == sql

    def test_identical_intermediate_eventually(self):
        formula = parse("eventually atomic('Moving-Train')")
        direct, sql = evaluate_both(
            formula, {"Moving-Train": self.MT}, 50
        )
        assert direct == sql
        assert direct.to_segment_values() == {
            i: pytest.approx(9.787) for i in range(1, 10)
        }


class TestRandomEquivalence:
    @given(
        type1_over_atoms(),
        similarity_lists(max_id=40),
        similarity_lists(max_id=40),
        similarity_lists(max_id=40),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_direct_equals_sql(self, formula, l1, l2, l3):
        # The generated lists may chain entries past the 50-segment axis;
        # the SQL side joins against the segments table while the direct
        # list algebra is axis-agnostic, so clamp the inputs to the axis
        # for the equivalence to be well-posed.
        lists = {
            name: sim.restricted(1, 50)
            for name, sim in {"P1": l1, "P2": l2, "P3": l3}.items()
        }
        direct, sql = evaluate_both(formula, lists, 50)
        assert direct == sql, f"formula: {formula}"


class TestTranslatorErrors:
    def test_type2_rejected(self):
        translator = SQLTranslator()
        formula = parse("exists x . eventually present(x)")
        with pytest.raises(UnsupportedFormulaError):
            translator.translate(formula, {}, {})

    def test_unknown_atom_rejected(self):
        translator = SQLTranslator()
        with pytest.raises(UnsupportedFormulaError):
            translator.translate(parse("atomic('ghost')"), {}, {})

    def test_zero_threshold_rejected(self):
        with pytest.raises(UnsupportedFormulaError):
            SQLTranslator(threshold=0.0)

    def test_script_rendering(self):
        translator = SQLTranslator()
        translation = translator.translate(
            parse("eventually atomic('P1')"), {"P1": "sim_p1"}, {"P1": 2.0}
        )
        script = translation.script()
        assert "INSERT INTO" in script
        assert script.rstrip().endswith(";")


class TestSystemLifecycle:
    def test_reload_atomic_replaces(self):
        sql = SQLRetrievalSystem()
        sql.load_segments(10)
        first = SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        second = SimilarityList.from_entries([((5, 5), 2.0)], 2.0)
        sql.load_atomic("P", first)
        sql.load_atomic("P", second)
        result = sql.evaluate(parse("atomic('P')"))
        assert result == second

    def test_temporaries_dropped(self):
        sql = SQLRetrievalSystem()
        sql.load_segments(10)
        sql.load_atomic("P", SimilarityList.from_entries([((1, 3), 1.0)], 2.0))
        before = set(sql.database.catalog.table_names())
        sql.evaluate(parse("eventually atomic('P') and atomic('P')"))
        after = set(sql.database.catalog.table_names())
        assert before == after

    def test_atom_name_sanitised(self):
        sql = SQLRetrievalSystem()
        sql.load_segments(5)
        table = sql.load_atomic(
            "Moving-Train", SimilarityList.from_entries([((1, 1), 1.0)], 2.0)
        )
        assert table == "sim_moving_train"
        assert sql.loaded_atoms() == ["Moving-Train"]
