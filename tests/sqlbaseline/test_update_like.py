"""Tests for UPDATE statements and the LIKE operator."""

import pytest

from repro.errors import SQLExecutionError
from repro.sqlbaseline.relational.executor import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        """
        CREATE TABLE films (id INTEGER, title TEXT, year INTEGER);
        INSERT INTO films VALUES
          (1, 'Casablanca', 1942),
          (2, 'Rio Bravo', 1959),
          (3, 'Casino', 1995),
          (4, NULL, 2000);
        """
    )
    return database


class TestUpdate:
    def test_update_with_where(self, db):
        db.execute("UPDATE films SET year = 1960 WHERE title = 'Rio Bravo'")
        assert db.query(
            "SELECT year FROM films WHERE id = 2"
        ).rows == [(1960,)]
        assert db.query(
            "SELECT year FROM films WHERE id = 1"
        ).rows == [(1942,)]

    def test_update_all_rows(self, db):
        db.execute("UPDATE films SET year = year + 1")
        assert db.query("SELECT SUM(year) FROM films").rows == [
            (1942 + 1959 + 1995 + 2000 + 4,)
        ]

    def test_update_multiple_columns(self, db):
        db.execute(
            "UPDATE films SET title = 'Unknown', year = 0 WHERE id = 4"
        )
        assert db.query("SELECT title, year FROM films WHERE id = 4").rows == [
            ("Unknown", 0)
        ]

    def test_self_referencing_assignment(self, db):
        db.execute("UPDATE films SET year = year * 2 WHERE id = 1")
        assert db.query("SELECT year FROM films WHERE id = 1").rows == [(3884,)]

    def test_update_type_checked(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("UPDATE films SET year = 'not a year' WHERE id = 1")

    def test_update_invalidates_sorted_cache(self, db):
        # Prime the sorted cache through a range query, then move a row.
        db.query("SELECT f.id FROM films f WHERE f.year >= 1990")
        db.execute("UPDATE films SET year = 1000 WHERE id = 3")
        result = db.query("SELECT f.id FROM films f WHERE f.year >= 1990")
        assert sorted(result.column("id")) == [4]


class TestLike:
    def test_prefix_match(self, db):
        result = db.query(
            "SELECT id FROM films WHERE title LIKE 'Cas%' ORDER BY id"
        )
        assert result.column("id") == [1, 3]

    def test_underscore_single_char(self, db):
        result = db.query("SELECT id FROM films WHERE title LIKE 'Casin_'")
        assert result.column("id") == [3]

    def test_not_like(self, db):
        result = db.query(
            "SELECT id FROM films WHERE title NOT LIKE 'Cas%' ORDER BY id"
        )
        assert result.column("id") == [2]

    def test_null_is_unknown(self, db):
        like = db.query("SELECT id FROM films WHERE title LIKE '%'")
        not_like = db.query("SELECT id FROM films WHERE title NOT LIKE '%'")
        assert 4 not in like.column("id")
        assert 4 not in not_like.column("id")

    def test_exact_without_wildcards(self, db):
        result = db.query("SELECT id FROM films WHERE title LIKE 'Casino'")
        assert result.column("id") == [3]

    def test_regex_metacharacters_are_literal(self, db):
        db.execute("INSERT INTO films VALUES (5, 'What? (Part 1)', 2001)")
        result = db.query(
            "SELECT id FROM films WHERE title LIKE 'What? (Part _)'"
        )
        assert result.column("id") == [5]
