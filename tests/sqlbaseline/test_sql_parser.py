"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sqlbaseline.relational import sql_ast as ast
from repro.sqlbaseline.relational.sql_parser import parse_one, parse_sql
from repro.sqlbaseline.relational.tokens import tokenize_sql


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize_sql("select From WHERE")
        assert [token.value for token in tokens[:3]] == [
            "SELECT",
            "FROM",
            "WHERE",
        ]

    def test_identifiers_keep_case(self):
        tokens = tokenize_sql("myTable")
        assert tokens[0].kind == "ident"
        assert tokens[0].value == "myTable"

    def test_numbers(self):
        tokens = tokenize_sql("42 3.5 1e3 2.5e-2")
        values = [token.value for token in tokens if token.kind == "number"]
        assert values == [42, 3.5, 1000.0, 0.025]

    def test_strings_with_escape(self):
        tokens = tokenize_sql("'o''brien'")
        assert tokens[0].value == "o'brien"

    def test_comments(self):
        tokens = tokenize_sql("SELECT -- comment\n1")
        kinds = [token.kind for token in tokens]
        assert kinds == ["keyword", "number", "eof"]

    def test_two_char_operators(self):
        tokens = tokenize_sql("<= >= <> != ||")
        assert [token.value for token in tokens[:-1]] == [
            "<=",
            ">=",
            "<>",
            "!=",
            "||",
        ]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("'oops")

    def test_unknown_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize_sql("SELECT ?")


class TestStatementParsing:
    def test_create_table(self):
        statement = parse_one(
            "CREATE TABLE t (a INTEGER, b REAL, c TEXT, d VARCHAR)"
        )
        assert isinstance(statement, ast.CreateTable)
        assert [column.type for column in statement.columns] == [
            "INTEGER",
            "REAL",
            "TEXT",
            "TEXT",
        ]

    def test_create_index(self):
        statement = parse_one("CREATE INDEX i ON t (a, b)")
        assert isinstance(statement, ast.CreateIndex)
        assert statement.columns == ("a", "b")

    def test_insert_values_multi_row(self):
        statement = parse_one("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert isinstance(statement, ast.InsertValues)
        assert len(statement.rows) == 2

    def test_insert_select(self):
        statement = parse_one("INSERT INTO t SELECT a FROM s")
        assert isinstance(statement, ast.InsertSelect)

    def test_delete(self):
        statement = parse_one("DELETE FROM t WHERE a = 1")
        assert isinstance(statement, ast.Delete)
        assert statement.where is not None

    def test_script_with_semicolons(self):
        statements = parse_sql("SELECT 1; SELECT 2;;")
        assert len(statements) == 2

    def test_missing_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse_one("GRANT ALL")


class TestSelectParsing:
    def test_star_and_qualified_star(self):
        statement = parse_one("SELECT *, t.* FROM t")
        assert isinstance(statement.items[0], ast.StarItem)
        assert statement.items[1].table == "t"

    def test_aliases(self):
        statement = parse_one("SELECT a AS x, b y FROM t u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.tables[0].alias == "u"

    def test_group_order_limit(self):
        statement = parse_one(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 "
            "ORDER BY a DESC LIMIT 5"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.order_by[0].descending
        assert statement.limit == 5

    def test_union_all(self):
        statement = parse_one("SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3")
        assert isinstance(statement, ast.UnionAll)
        assert len(statement.parts) == 3

    def test_distinct(self):
        assert parse_one("SELECT DISTINCT a FROM t").distinct


class TestExpressionParsing:
    def where(self, text):
        return parse_one(f"SELECT 1 FROM t WHERE {text}").where

    def test_precedence_or_and(self):
        expr = self.where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, ast.Binary) and expr.op == "OR"
        assert isinstance(expr.right, ast.Binary) and expr.right.op == "AND"

    def test_not_exists(self):
        expr = self.where("NOT EXISTS (SELECT * FROM s)")
        assert isinstance(expr, ast.ExistsExpr)
        assert expr.negated

    def test_not_in(self):
        expr = self.where("a NOT IN (1, 2)")
        assert isinstance(expr, ast.InExpr)
        assert expr.negated

    def test_between(self):
        expr = self.where("a BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)

    def test_not_between(self):
        expr = self.where("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, ast.Between)
        assert expr.negated

    def test_is_null_forms(self):
        assert isinstance(self.where("a IS NULL"), ast.IsNull)
        negated = self.where("a IS NOT NULL")
        assert isinstance(negated, ast.IsNull) and negated.negated

    def test_arithmetic_precedence(self):
        expr = self.where("a + b * c = 7")
        left = expr.left
        assert isinstance(left, ast.Binary) and left.op == "+"
        assert isinstance(left.right, ast.Binary) and left.right.op == "*"

    def test_case_when(self):
        expr = self.where("CASE WHEN a = 1 THEN 2 ELSE 3 END = 2")
        assert isinstance(expr.left, ast.CaseWhen)

    def test_scalar_subquery(self):
        expr = self.where("a = (SELECT MAX(b) FROM s)")
        assert isinstance(expr.right, ast.ScalarSubquery)

    def test_count_star_and_distinct(self):
        statement = parse_one("SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
        first, second = statement.items
        assert first.expr.star
        assert second.expr.distinct

    def test_neq_normalised(self):
        expr = self.where("a <> 1")
        assert expr.op == "!="

    def test_unary_minus(self):
        expr = self.where("a = -5")
        assert isinstance(expr.right, ast.Unary)
