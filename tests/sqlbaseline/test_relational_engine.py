"""Tests for the mini relational engine (SQL subset)."""

import pytest

from repro.errors import (
    SQLCatalogError,
    SQLExecutionError,
    SQLSyntaxError,
)
from repro.sqlbaseline.relational.executor import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        """
        CREATE TABLE people (id INTEGER, name TEXT, age INTEGER, city TEXT);
        INSERT INTO people VALUES
          (1, 'ann', 30, 'paris'),
          (2, 'bob', 25, 'lyon'),
          (3, 'cat', 35, 'paris'),
          (4, 'dan', NULL, 'nice');
        CREATE TABLE pets (owner INTEGER, pet TEXT);
        INSERT INTO pets VALUES (1, 'dog'), (1, 'cat'), (3, 'fish');
        """
    )
    return database


class TestDDL:
    def test_create_and_insert(self, db):
        result = db.query("SELECT * FROM people")
        assert len(result) == 4
        assert result.columns == ("id", "name", "age", "city")

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SQLCatalogError):
            db.execute("CREATE TABLE people (x INTEGER)")

    def test_if_not_exists(self, db):
        db.execute("CREATE TABLE IF NOT EXISTS people (x INTEGER)")
        assert len(db.query("SELECT * FROM people")) == 4

    def test_drop(self, db):
        db.execute("DROP TABLE pets")
        with pytest.raises(SQLCatalogError):
            db.query("SELECT * FROM pets")

    def test_drop_if_exists(self, db):
        db.execute("DROP TABLE IF EXISTS ghost")

    def test_type_checking(self, db):
        with pytest.raises(SQLExecutionError):
            db.execute("INSERT INTO people VALUES ('x', 'y', 1, 'z')")

    def test_insert_with_column_list(self, db):
        db.execute("INSERT INTO people (id, name) VALUES (9, 'eve')")
        result = db.query("SELECT age FROM people WHERE id = 9")
        assert result.rows == [(None,)]

    def test_create_index_is_recorded(self, db):
        db.execute("CREATE INDEX idx_people_id ON people (id)")
        assert "idx_people_id" in db.catalog.indexes


class TestSelectBasics:
    def test_projection(self, db):
        result = db.query("SELECT name, age FROM people WHERE id = 2")
        assert result.rows == [("bob", 25)]

    def test_expressions(self, db):
        result = db.query("SELECT age + 1, age * 2 FROM people WHERE id = 1")
        assert result.rows == [(31, 60)]

    def test_aliases(self, db):
        result = db.query("SELECT name AS who FROM people WHERE id = 1")
        assert result.columns == ("who",)

    def test_where_filters(self, db):
        result = db.query("SELECT id FROM people WHERE age > 26")
        assert sorted(result.column("id")) == [1, 3]

    def test_null_comparison_is_unknown(self, db):
        """dan's NULL age fails both age > 26 and NOT (age > 26)."""
        above = db.query("SELECT id FROM people WHERE age > 26")
        below = db.query("SELECT id FROM people WHERE NOT (age > 26)")
        assert 4 not in above.column("id")
        assert 4 not in below.column("id")

    def test_is_null(self, db):
        result = db.query("SELECT id FROM people WHERE age IS NULL")
        assert result.column("id") == [4]
        result = db.query("SELECT id FROM people WHERE age IS NOT NULL")
        assert sorted(result.column("id")) == [1, 2, 3]

    def test_between(self, db):
        result = db.query("SELECT id FROM people WHERE age BETWEEN 25 AND 30")
        assert sorted(result.column("id")) == [1, 2]

    def test_in_list(self, db):
        result = db.query("SELECT id FROM people WHERE city IN ('paris', 'nice')")
        assert sorted(result.column("id")) == [1, 3, 4]

    def test_order_by(self, db):
        result = db.query("SELECT name FROM people ORDER BY age DESC")
        # NULL age sorts last under DESC (None ranks lowest).
        assert result.column("name") == ["cat", "ann", "bob", "dan"]

    def test_limit(self, db):
        result = db.query("SELECT id FROM people ORDER BY id LIMIT 2")
        assert result.column("id") == [1, 2]

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT city FROM people")
        assert sorted(result.column("city")) == ["lyon", "nice", "paris"]

    def test_case_when(self, db):
        result = db.query(
            "SELECT name, CASE WHEN age >= 30 THEN 'old' ELSE 'young' END "
            "FROM people WHERE id IN (1, 2) ORDER BY id"
        )
        assert result.rows == [("ann", "old"), ("bob", "young")]

    def test_scalar_functions(self, db):
        result = db.query(
            "SELECT ABS(-3), COALESCE(NULL, 7), GREATEST(1, 9, 4), "
            "LEAST(1, 9, 4), UPPER('ab') FROM people WHERE id = 1"
        )
        assert result.rows == [(3, 7, 9, 1, "AB")]

    def test_select_without_from(self, db):
        result = db.query("SELECT 1 + 1")
        assert result.rows == [(2,)]


class TestJoins:
    def test_equi_join(self, db):
        result = db.query(
            "SELECT p.name, q.pet FROM people p, pets q "
            "WHERE p.id = q.owner ORDER BY p.name, q.pet"
        )
        assert result.rows == [
            ("ann", "cat"),
            ("ann", "dog"),
            ("cat", "fish"),
        ]

    def test_cross_join(self, db):
        result = db.query("SELECT COUNT(*) FROM people p, pets q")
        assert result.rows == [(12,)]

    def test_self_join(self, db):
        result = db.query(
            "SELECT a.id, b.id FROM people a, people b "
            "WHERE a.age < b.age ORDER BY a.id, b.id"
        )
        assert result.rows == [(1, 3), (2, 1), (2, 3)]

    def test_range_join(self, db):
        db.execute(
            """
            CREATE TABLE ranges (beg INTEGER, fin INTEGER);
            INSERT INTO ranges VALUES (1, 2), (3, 4);
            """
        )
        result = db.query(
            "SELECT r.beg, p.id FROM ranges r, people p "
            "WHERE p.id BETWEEN r.beg AND r.fin ORDER BY r.beg, p.id"
        )
        assert result.rows == [(1, 1), (1, 2), (3, 3), (3, 4)]

    def test_ambiguous_column_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.query("SELECT id FROM people a, people b")


class TestAggregation:
    def test_plain_aggregates(self, db):
        result = db.query(
            "SELECT COUNT(*), COUNT(age), SUM(age), MIN(age), MAX(age), AVG(age) "
            "FROM people"
        )
        assert result.rows == [(4, 3, 90, 25, 35, 30.0)]

    def test_group_by(self, db):
        result = db.query(
            "SELECT city, COUNT(*) AS n FROM people GROUP BY city ORDER BY city"
        )
        assert result.rows == [("lyon", 1), ("nice", 1), ("paris", 2)]

    def test_group_by_having(self, db):
        result = db.query(
            "SELECT city FROM people GROUP BY city HAVING COUNT(*) > 1"
        )
        assert result.column("city") == ["paris"]

    def test_empty_aggregate(self, db):
        result = db.query("SELECT MAX(age) FROM people WHERE id > 99")
        assert result.rows == [(None,)]

    def test_count_distinct(self, db):
        result = db.query("SELECT COUNT(DISTINCT city) FROM people")
        assert result.rows == [(3,)]

    def test_aggregate_arithmetic(self, db):
        result = db.query("SELECT MAX(age) - MIN(age) FROM people")
        assert result.rows == [(10,)]

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(SQLExecutionError):
            db.query("SELECT name, COUNT(*) FROM people")


class TestSubqueries:
    def test_uncorrelated_in(self, db):
        result = db.query(
            "SELECT name FROM people WHERE id IN (SELECT owner FROM pets) "
            "ORDER BY name"
        )
        assert result.column("name") == ["ann", "cat"]

    def test_not_in(self, db):
        result = db.query(
            "SELECT name FROM people WHERE id NOT IN (SELECT owner FROM pets) "
            "ORDER BY name"
        )
        assert result.column("name") == ["bob", "dan"]

    def test_correlated_exists(self, db):
        result = db.query(
            "SELECT name FROM people p WHERE EXISTS "
            "(SELECT * FROM pets q WHERE q.owner = p.id) ORDER BY name"
        )
        assert result.column("name") == ["ann", "cat"]

    def test_correlated_not_exists(self, db):
        result = db.query(
            "SELECT name FROM people p WHERE NOT EXISTS "
            "(SELECT * FROM pets q WHERE q.owner = p.id) ORDER BY name"
        )
        assert result.column("name") == ["bob", "dan"]

    def test_exists_with_local_filter(self, db):
        result = db.query(
            "SELECT name FROM people p WHERE EXISTS "
            "(SELECT * FROM pets q WHERE q.owner = p.id AND q.pet = 'fish')"
        )
        assert result.column("name") == ["cat"]

    def test_scalar_subquery_aggregate_range(self, db):
        # For each person: max age among people at least as old.
        result = db.query(
            "SELECT p.id, (SELECT MAX(q.age) FROM people q WHERE q.age >= p.age) "
            "FROM people p WHERE p.age IS NOT NULL ORDER BY p.id"
        )
        assert result.rows == [(1, 35), (2, 35), (3, 35)]

    def test_scalar_subquery_prefix(self, db):
        result = db.query(
            "SELECT p.id, (SELECT MIN(q.age) FROM people q WHERE q.age <= p.age) "
            "FROM people p WHERE p.age IS NOT NULL ORDER BY p.id"
        )
        assert result.rows == [(1, 25), (2, 25), (3, 25)]

    def test_scalar_subquery_equality_group(self, db):
        result = db.query(
            "SELECT p.id, (SELECT MAX(q.age) FROM people q WHERE q.city = p.city) "
            "FROM people p ORDER BY p.id"
        )
        assert result.rows == [(1, 35), (2, 25), (3, 35), (4, None)]

    def test_scalar_subquery_empty_group(self, db):
        result = db.query(
            "SELECT (SELECT MAX(q.age) FROM people q WHERE q.age >= 99) "
            "FROM people WHERE id = 1"
        )
        assert result.rows == [(None,)]

    def test_generic_correlated_subquery(self, db):
        # Complex shape (aggregate + two tables) falls back to per-row
        # execution but still gets the right answer.
        result = db.query(
            "SELECT p.id, (SELECT COUNT(*) FROM pets q, people r "
            " WHERE q.owner = r.id AND r.city = p.city) "
            "FROM people p ORDER BY p.id"
        )
        assert result.rows == [(1, 3), (2, 0), (3, 3), (4, 0)]


class TestInsertSelectDeleteUnion:
    def test_insert_select(self, db):
        db.execute(
            """
            CREATE TABLE adults (id INTEGER, name TEXT);
            INSERT INTO adults SELECT id, name FROM people WHERE age >= 30;
            """
        )
        result = db.query("SELECT name FROM adults ORDER BY name")
        assert result.column("name") == ["ann", "cat"]

    def test_delete_where(self, db):
        db.execute("DELETE FROM pets WHERE pet = 'dog'")
        assert len(db.query("SELECT * FROM pets")) == 2

    def test_delete_all(self, db):
        db.execute("DELETE FROM pets")
        assert len(db.query("SELECT * FROM pets")) == 0

    def test_union_all(self, db):
        result = db.query(
            "SELECT id FROM people WHERE id = 1 "
            "UNION ALL SELECT id FROM people WHERE id = 1 "
            "UNION ALL SELECT owner FROM pets WHERE pet = 'fish'"
        )
        assert sorted(result.column("id")) == [1, 1, 3]

    def test_union_all_width_mismatch(self, db):
        with pytest.raises(SQLExecutionError):
            db.query("SELECT id FROM people UNION ALL SELECT id, name FROM people")


class TestStats:
    def test_stats_accumulate(self, db):
        db.stats.reset()
        db.query("SELECT * FROM people WHERE id = 1")
        assert db.stats.statements == 1
        assert db.stats.rows_scanned >= 1
        assert db.stats.rows_output == 1


class TestErrors:
    def test_unknown_table(self, db):
        with pytest.raises(SQLCatalogError):
            db.query("SELECT * FROM ghosts")

    def test_unknown_column(self, db):
        with pytest.raises(SQLCatalogError):
            db.query("SELECT wings FROM people")

    def test_syntax_error_position(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("SELEC * FROM people")

    def test_division_by_zero(self, db):
        with pytest.raises(SQLExecutionError):
            db.query("SELECT 1 / 0")

    def test_scalar_subquery_multiple_rows(self, db):
        with pytest.raises(SQLExecutionError):
            db.query("SELECT (SELECT id FROM people) FROM people WHERE id = 1")
