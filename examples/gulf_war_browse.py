#!/usr/bin/env python3
"""Hierarchical browsing and level modal operators (paper §2.1, §2.2).

The Gulf-war broadcast of §2.1 is a five-level hierarchy:
video → sub-plots (air campaign / ground war / surrender) → scenes →
shots → frames.  This example shows

* a browsing query touching only the top level,
* formula (A) — ``M1 and next (M2 until M3)`` — asserted at the shot
  level with the level modal operator, and
* a query mixing levels: a news broadcast whose air campaign eventually
  destroys a command-and-control target.

Run:  python examples/gulf_war_browse.py
"""

from repro import RetrievalEngine, parse
from repro.workloads.movies import example_database


def show(title: str, sim) -> None:
    print(title)
    if not sim:
        print("  (no segments with positive similarity)")
    for entry in sim:
        print(
            f"  segments [{entry.begin}, {entry.end}]: "
            f"{entry.actual:g} / {sim.maximum:g}"
        )
    print()


def main() -> None:
    database = example_database()
    engine = RetrievalEngine()
    video = database.get("gulf-war")
    names = {level: name for level, name in video.level_names.items()}
    print(f"Hierarchy of {video.name!r}: {names}")
    for level in range(1, video.n_levels + 1):
        print(f"  level {level}: {len(video.nodes_at_level(level))} segments")
    print()

    # 1. Browsing: information at the upper levels only (paper §2.1:
    #    "If the information provided pertains to the upper levels only,
    #    then the user is interested in browsing").
    browse = parse("type() = 'news'")
    value = engine.evaluate_at_root(browse, video)
    print(f"Browsing query type() = 'news': {value.actual:g}/{value.maximum:g}\n")

    # 2. Formula (A) at the shot level: a shot with planes on the ground
    #    (M1), immediately followed by shots of planes in the air (M2)
    #    until a strike shot (M3).  Here the M's are metadata predicates.
    formula_a = parse(
        """
        at_shot_level(
          action() = 'take-off'
          and next (exists p . present(p) and type(p) = 'airplane')
              until action() = 'strike'
        )
        """
    )
    value = engine.evaluate_at_root(formula_a, video)
    print(
        "Formula (A) at the shot level (take-off, planes airborne until "
        f"a strike): {value.actual:g}/{value.maximum:g}\n"
    )

    # 3. Mixing levels: browse condition at the root plus a frame-level
    #    temporal pattern - a bombing that eventually destroys a command
    #    building.
    strike_query = parse(
        """
        type() = 'news' and at_frame_level(
          exists p, t .
            (present(p) and present(t) and bombs(p, t) and role(t) = 'command')
            and eventually destroyed(t)
        )
        """
    )
    value = engine.evaluate_at_root(strike_query, video)
    print(
        "Command-center strike query at the root: "
        f"{value.actual:g}/{value.maximum:g} "
        f"({value.actual / value.maximum:.0%} - the 'destroyed' detection "
        "carries confidence 0.9)\n"
    )

    # 4. The same frame-level pattern as a similarity list over scenes:
    #    which scene contains it?
    scene_level = video.level_of("scene")
    per_scene = engine.evaluate_video(
        parse(
            """
            at_frame_level(
              exists p, t . (present(p) and present(t) and bombs(p, t))
                and eventually destroyed(t)
            )
            """
        ),
        video,
        level=scene_level,
    )
    show("Strike pattern per scene:", per_scene)


if __name__ == "__main__":
    main()
