#!/usr/bin/env python3
"""Formula (B) of paper §2.4: John Wayne shoots a bandit.

Asserted at the frame level of a 4-level western, the query asks for a
frame where John Wayne and a bandit both hold guns, eventually followed
by a frame where he fires at that same bandit, eventually followed by a
frame with that bandit on the floor.  The whole-movie query wraps it with
``type() = 'western' and at_frame_level(...)`` — the paper's extended
conjunctive example — and we rank a small movie library with it.

Run:  python examples/western_shootout.py
"""

from repro import RetrievalEngine, parse
from repro.core.topk import top_k_videos
from repro.workloads.movies import example_database

FORMULA_B = """
exists x, y .
  (present(x) and present(y)
   and name(x) = 'John Wayne' and type(y) = 'bandit'
   and holds_gun(x) and holds_gun(y))
  and eventually ((present(x) and present(y) and fires_at(x, y))
    and eventually (present(y) and on_floor(y)))
"""

WHOLE_MOVIE_QUERY = (
    "type() = 'western' and at_frame_level(" + FORMULA_B + ")"
)


def main() -> None:
    database = example_database()
    engine = RetrievalEngine()

    # 1. The frame-level formula over the western's frame sequence.
    western = database.get("western")
    frame_level = western.level_of("frame")
    formula_b = parse(FORMULA_B)
    frames = engine.evaluate_video(formula_b, western, level=frame_level)
    print("Formula (B) over the western's frames:")
    for entry in frames:
        print(
            f"  frames [{entry.begin}, {entry.end}]: "
            f"similarity {entry.actual:g} / {frames.maximum:g}"
        )
    best = max(frames, key=lambda entry: entry.actual)
    print(
        f"  -> best match starts at frame {best.begin} "
        f"({best.actual / frames.maximum:.0%} of a perfect match)\n"
    )

    # 2. The extended conjunctive whole-movie query, ranked across the
    #    library (paper §1: top-k retrieval).
    query = parse(WHOLE_MOVIE_QUERY)
    print("Ranking the library with the whole-movie query:")
    for name, value in top_k_videos(engine, query, database, k=4):
        print(
            f"  {name:<16} similarity {value.actual:6.3f} / "
            f"{value.maximum:g}  ({value.fraction:.0%})"
        )
    print()

    # 3. Show partial matching at work: a movie without the shoot-out
    #    still scores on the 'western' type condition alone.
    prairie = database.get("prairie-dust")
    value = engine.evaluate_at_root(query, prairie)
    print(
        f"'prairie-dust' has no shoot-out but is a western: "
        f"partial similarity {value.actual:g} / {value.maximum:g}"
    )


if __name__ == "__main__":
    main()
