#!/usr/bin/env python3
"""Formula (C) of paper §2.4: the freeze operator.

"The video starts with a picture containing an airplane followed by
another picture in which the same plane appears at a higher altitude":

    exists z . (present(z) and type(z) = 'airplane')
      and [h := height(z)] eventually (present(z) and height(z) > h)

The assignment operator captures the plane's height in the first frame
and compares it against the same plane's height in later frames — the
full-conjunctive machinery (§3.3: value tables and range columns).

Run:  python examples/airplane_altitude.py
"""

from repro import EngineConfig, RetrievalEngine, parse
from repro.workloads.movies import gulf_war_video

FORMULA_C = """
exists z . (present(z) and type(z) = 'airplane')
  and [h := height(z)] eventually (present(z) and height(z) > h)
"""


def main() -> None:
    video = gulf_war_video()
    frame_level = video.level_of("frame")
    frames = video.nodes_at_level(frame_level)
    print(f"Gulf-war broadcast: {len(frames)} frames at level {frame_level}")
    print("Plane heights per frame:")
    for position, node in enumerate(frames, start=1):
        plane = node.metadata.object("plane_7")
        height = plane.attribute("height").value if plane else "-"
        print(f"  frame {position}: plane_7 height = {height}")
    print()

    formula = parse(FORMULA_C)
    engine = RetrievalEngine()
    result = engine.evaluate_video(formula, video, level=frame_level)
    print("Formula (C) similarity list over the frames:")
    for entry in result:
        print(
            f"  frames [{entry.begin}, {entry.end}]: "
            f"{entry.actual:g} / {result.maximum:g}"
        )
    print()
    # Frame 1 has the plane at height 0 and later frames show it at 300
    # and 900 - an exact match; the frame at the peak height (900) can
    # never see a higher later height, so the comparison part fails there.
    exact = [
        entry.begin
        for entry in result
        if abs(entry.actual - result.maximum) < 1e-9
    ]
    print(f"Frames starting an exact match: {exact}")

    # The paper-mode (inner join) engine agrees here - informative sanity
    # check that the optimised join machinery handles the freeze the same
    # way in both modes for this query.
    paper_engine = RetrievalEngine(EngineConfig(join_mode="inner"))
    paper_result = paper_engine.evaluate_video(
        formula, video, level=frame_level
    )
    print(f"Paper-mode (inner-join) result identical: {paper_result == result}")


if __name__ == "__main__":
    main()
