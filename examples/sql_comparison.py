#!/usr/bin/env python3
"""The §4.2 performance study: direct vs SQL-based, at the paper's sizes.

Generates the random workloads (10 000 / 50 000 / 100 000 shots, ~10%
satisfying each predicate), runs ``P1 and P2`` and ``P1 until P2`` on
both systems, verifies the results are identical, and prints Tables 5-6
in the paper's layout side by side with the 1997 reference numbers.

Pass ``--quick`` to use sizes 1 000 / 5 000 / 10 000.

Run:  python examples/sql_comparison.py [--quick]
"""

import sys

from repro.bench.harness import compare_systems
from repro.bench.reporting import format_table
from repro.workloads.synthetic import PAPER_SIZES, perf_workload

PAPER = {
    "P1 and P2": {10_000: (1.49, 13.37), 50_000: (7.40, 42.61), 100_000: (14.50, 78.94)},
    "P1 until P2": {10_000: (1.46, 42.14), 50_000: (7.35, 99.72), 100_000: (14.97, 134.63)},
}


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    sizes = (1_000, 5_000, 10_000) if quick else PAPER_SIZES
    for formula_text, htl in (
        ("P1 and P2", "$P1 and $P2"),
        ("P1 until P2", "$P1 until $P2"),
    ):
        rows = []
        for size in sizes:
            workload = perf_workload(size)
            row = compare_systems(htl, workload.lists, size)
            assert row.results_equal, "the systems must agree"
            reference = PAPER[formula_text].get(size)
            rows.append(
                (
                    size,
                    f"{row.direct_seconds:.4f}",
                    f"{row.sql_seconds:.4f}",
                    f"{row.speedup:.1f}x",
                    f"{reference[0]}s / {reference[1]}s" if reference else "-",
                )
            )
        table_number = "5" if "and" in htl else "6"
        print(f"Table {table_number}. Perf results for {formula_text} (seconds)")
        print(
            format_table(
                ("Size", "Direct", "SQL-based", "Ratio", "Paper (direct/SQL)"),
                rows,
            )
        )
        print()
    print(
        "Shape check: the direct method wins by an order of magnitude and\n"
        "grows linearly; the SQL-based method pays per-row materialisation\n"
        "and multi-statement overheads (paper §4.2, reproduced)."
    )


if __name__ == "__main__":
    main()
