#!/usr/bin/env python3
"""A tour of the library features beyond the paper's experiments.

Shows the pieces a downstream user combines in practice:

1. define named predicates as metadata queries (macros),
2. inspect a query (classification, optimizer rewrites, evaluation plan),
3. evaluate with both join modes and with the full-language extensions,
4. persist the annotated database to JSON and reload it.

Run:  python examples/library_tour.py
"""

import json
import tempfile

from repro import EngineConfig, RetrievalEngine, parse, pretty
from repro.core.explain import explain
from repro.core.optimizer import optimize
from repro.htl import paper_class, skeleton_class
from repro.htl.macros import PredicateRegistry
from repro.model.serialize import dump_database, load_database
from repro.workloads.casablanca import casablanca_database


def main() -> None:
    database = casablanca_database()
    video = database.get("making-of-casablanca")

    # 1. Named predicates: define the paper's atomic queries once.
    registry = PredicateRegistry()
    registry.define(
        "Train", "weight(10.0, exists t . moving_train_scene(t))"
    )
    registry.define(
        "Couple", "weight(8.0, exists x, y . man_woman_pair(x, y))"
    )
    query = registry.expand(
        parse("atomic('Couple') and eventually eventually atomic('Train')")
    )
    print("expanded query:")
    print(" ", pretty(query)[:76], "...\n")

    # 2. Inspect: class, rewrites, plan.
    print(f"paper class:    {paper_class(query).name}")
    print(f"skeleton class: {skeleton_class(query).name}")
    optimized = optimize(query)
    if optimized != query:
        print("optimizer collapsed the double 'eventually'.")
    print()
    print(explain(optimized))
    print()

    # 3. Evaluate in both modes; on this query they agree.
    for mode in ("inner", "outer"):
        engine = RetrievalEngine(EngineConfig(join_mode=mode))
        result = engine.evaluate_video(optimized, video)
        print(
            f"{mode:>5} mode: best shot scores "
            f"{max(entry.actual for entry in result):g} / {result.maximum:g}"
        )
    # ... and the full-language mode accepts disjunction:
    wide = RetrievalEngine(
        EngineConfig(join_mode="outer", allow_extensions=True)
    )
    either = wide.evaluate_video(
        registry.expand(
            parse("(eventually atomic('Train')) or always atomic('Couple')")
        ),
        video,
    )
    print(
        f"extension mode: disjunctive query covers "
        f"{either.support_size()} shots\n"
    )

    # 4. Persist and reload.
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False
    ) as handle:
        path = handle.name
    dump_database(database, path)
    restored = load_database(path)
    engine = RetrievalEngine()
    again = engine.evaluate_video(
        optimized, restored.get("making-of-casablanca")
    )
    original = engine.evaluate_video(optimized, video)
    print(f"database round-trip through {path}")
    print(f"results identical after reload: {again == original}")
    with open(path, "r", encoding="utf-8") as handle:
        size = len(handle.read())
    print(f"JSON size: {size} bytes")


if __name__ == "__main__":
    main()
