#!/usr/bin/env python3
"""The Fig. 1 pipeline end to end: frames → cut detection → meta-data →
similarity retrieval.

Synthesises a frame stream for a miniature "Making of Casablanca" (train
shots, interview shots, a man/woman scene), segments it with the
histogram cut detector (§4.1: "the movie was segmented into smaller
sequences (called shots) using a method called cut-detection"), annotates
the detected shots, and runs Query 1 on the result.

Run:  python examples/analyzer_pipeline.py
"""

from repro import RetrievalEngine, parse
from repro.analyzer import (
    AnnotationRule,
    ShotSpec,
    VideoAnalyzer,
    boundary_accuracy,
    synthesize_stream,
)
from repro.bench.reporting import similarity_table_text
from repro.model.metadata import Relationship, make_object

SHOT_PLAN = [
    ShotSpec(24, "couple"),
    ShotSpec(18, "couple"),
    ShotSpec(30, "interview"),
    ShotSpec(12, "train"),
    ShotSpec(20, "interview"),
    ShotSpec(16, "couple"),
]

RULES = {
    "train": AnnotationRule(
        objects=[make_object("train_1", "train")],
        relationships=[
            Relationship("moving_train_scene", ("train_1",), confidence=0.95)
        ],
        attributes={"scenery": "station"},
    ),
    "couple": AnnotationRule(
        objects=[
            make_object("man_1", "person", gender="male"),
            make_object("woman_1", "person", gender="female"),
        ],
        relationships=[
            Relationship("man_woman_pair", ("man_1", "woman_1"), confidence=0.8)
        ],
    ),
    "interview": AnnotationRule(
        objects=[make_object("director", "person")],
        attributes={"scenery": "studio"},
    ),
}


def main() -> None:
    # 1. Synthesise the frame stream.
    stream = synthesize_stream(SHOT_PLAN, seed=42)
    print(
        f"Synthesised {len(stream)} frames over {len(SHOT_PLAN)} "
        f"ground-truth shots"
    )

    # 2. Cut detection.
    analyzer = VideoAnalyzer(rules=RULES)
    shots = analyzer.segment(stream)
    recall, precision = boundary_accuracy(shots, stream.boundaries)
    print(
        f"Cut detector found {len(shots)} shots "
        f"(boundary recall {recall:.0%}, precision {precision:.0%})"
    )
    for number, shot in enumerate(shots, start=1):
        label = analyzer.dominant_label(stream, shot)
        print(f"  shot {number}: frames {shot.first}-{shot.last}  [{label}]")
    print()

    # 3. Annotate into a two-level video.
    video = analyzer.annotate(
        stream, "mini-casablanca", root_attributes={"type": "documentary"}
    )

    # 4. Query 1 over the detected shots.
    query = parse(
        "weight(8.0, exists x, y . man_woman_pair(x, y)) "
        "and eventually weight(10.0, exists t . moving_train_scene(t))"
    )
    engine = RetrievalEngine()
    result = engine.evaluate_video(query, video)
    print(
        similarity_table_text(
            result, "Query 1 over the analyzer's shots", ranked=True
        )
    )
    print(
        "\nShots before the train shot combine the couple score with the\n"
        "eventual train score; later shots keep only their own values."
    )


if __name__ == "__main__":
    main()
