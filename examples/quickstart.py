#!/usr/bin/env python3
"""Quickstart: the paper's §4.1 experiment on "The Making of Casablanca".

Loads the reconstructed 50-shot dataset, poses the atomic predicates to
the picture-retrieval system, runs Query 1

    Man-Woman  and  eventually Moving-Train

through the video retrieval engine, and prints Tables 1-4 in the paper's
layout, then the top-k shots.

Run:  python examples/quickstart.py
"""

from repro import RetrievalEngine, parse, top_k_segments
from repro.bench.reporting import similarity_table_text
from repro.core.ops import eventually_list
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.workloads.casablanca import (
    casablanca_database,
    man_woman_query,
    moving_train_query,
    query1,
)


def main() -> None:
    database = casablanca_database()
    video = database.get("making-of-casablanca")
    print(f"Loaded {video.name!r}: {len(video.nodes_at_level(2))} shots\n")

    # 1. Atomic predicates through the picture-retrieval system.
    pictures = PictureRetrievalSystem(
        [node.metadata for node in video.nodes_at_level(2)]
    )
    moving_train = pictures.similarity_list(moving_train_query())
    man_woman = pictures.similarity_list(man_woman_query())
    print(similarity_table_text(moving_train, "Table 1. Moving-Train"))
    print()
    print(similarity_table_text(man_woman, "Table 2. Man-Woman"))
    print()

    # 2. The eventually intermediate (Table 3).
    print(
        similarity_table_text(
            eventually_list(moving_train),
            "Table 3. Result of eventually operation in Query 1",
        )
    )
    print()

    # 3. Query 1 end to end (Table 4, ranked).
    engine = RetrievalEngine()
    result = engine.evaluate_video(query1(), video, database=database)
    print(
        similarity_table_text(
            result, "Table 4. Final result of Query 1", ranked=True
        )
    )
    print()

    # 4. Top-k presentation ("the top k video segments ... retrieved").
    print("Top 5 shots:")
    for rank, segment in enumerate(
        top_k_segments(result, 5, video=video.name), start=1
    ):
        print(
            f"  {rank}. shot {segment.segment_id:>2}  "
            f"similarity {segment.actual:.3f} / {segment.maximum:g} "
            f"({segment.fraction:.0%})"
        )

    # 5. The same query written out in HTL concrete syntax.
    htl_text = "atomic('Man-Woman') and eventually atomic('Moving-Train')"
    assert engine.evaluate_video(
        parse(htl_text), video, database=database
    ) == result
    print(f"\nHTL query: {htl_text}")


if __name__ == "__main__":
    main()
