"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class.  Sub-systems add
their own subclasses (e.g. the HTL parser raises :class:`HTLSyntaxError`,
the relational engine raises :class:`SQLError` subclasses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class InvalidIntervalError(ReproError, ValueError):
    """An interval was constructed with ``begin > end`` or a non-positive id."""


class InvalidSimilarityError(ReproError, ValueError):
    """A similarity value violates ``0 <= actual <= maximum``."""


class SimilarityListInvariantError(ReproError, ValueError):
    """A similarity list violates sortedness/disjointness/shared-max invariants."""


class HTLError(ReproError):
    """Base class for errors concerning the HTL language."""


class HTLSyntaxError(HTLError, ValueError):
    """The HTL query text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class HTLTypeError(HTLError, TypeError):
    """A formula is structurally ill-typed (e.g. unbound variable use)."""


class UnsupportedFormulaError(HTLError):
    """The formula falls outside the class the chosen algorithm supports.

    The paper's retrieval methods cover the *extended conjunctive* subclass
    of HTL; formulas outside it (negated temporal subformulas, temporal
    operators under non-prefix existential quantifiers, ...) are rejected
    with this error rather than silently mis-evaluated.
    """


class ModelError(ReproError):
    """Base class for errors in the hierarchical video model."""


class HierarchyError(ModelError, ValueError):
    """The video hierarchy is malformed (uneven leaf depth, empty levels...)."""


class UnknownLevelError(ModelError, KeyError):
    """A level name or number does not exist in the video hierarchy."""


class MetadataError(ModelError, ValueError):
    """Segment metadata is malformed (bad confidence, duplicate object...)."""


class SQLError(ReproError):
    """Base class for the mini relational engine."""


class SQLSyntaxError(SQLError, ValueError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class SQLCatalogError(SQLError, KeyError):
    """Reference to a missing table/column, or duplicate table creation."""


class SQLExecutionError(SQLError, RuntimeError):
    """A runtime failure while executing a SQL statement."""


class WorkloadError(ReproError, ValueError):
    """A workload generator was given inconsistent parameters."""


class SignatureError(ReproError, ValueError):
    """A content-signature operation failed (:mod:`repro.pictures.signature`).

    Raised for unresolved ``looks_like`` clip references at evaluation
    time, for clips/segments whose signature vectors are degenerate or
    dimensionally incompatible, and for query-by-example requests naming
    segments with no attached signature.
    """


class ResilienceError(ReproError):
    """Base class for the fault-tolerance layer (:mod:`repro.core.resilience`)."""


class BudgetExceededError(ResilienceError, TimeoutError):
    """A query overran its :class:`~repro.core.resilience.QueryBudget`.

    ``site`` names the cooperative checkpoint that noticed the overrun
    (one of the stage names in :mod:`repro.core.instrument`, or a caller
    supplied label), ``steps`` is the cooperative step count consumed so
    far, and ``elapsed_ms`` the wall-clock milliseconds since the budget
    started (0 when the budget has no deadline).
    """

    def __init__(
        self,
        message: str,
        site: str = "",
        steps: int = 0,
        elapsed_ms: float = 0.0,
    ):
        self.site = site
        self.steps = steps
        self.elapsed_ms = elapsed_ms
        if site:
            message = f"{message} (at {site!r})"
        super().__init__(message)


class CircuitOpenError(ResilienceError):
    """A call was refused because its circuit breaker is open.

    ``breaker`` is the breaker's registered name.
    """

    def __init__(self, message: str, breaker: str = ""):
        self.breaker = breaker
        super().__init__(message)


class InjectedFaultError(ResilienceError):
    """A deterministic fault raised by :mod:`repro.testing.faults`.

    ``site`` names the registered fault site that fired; ``sequence`` is
    the 1-based index of this fault within its injector's run, so chaos
    tests can assert exactly which trigger produced an observed failure.
    """

    def __init__(self, message: str, site: str = "", sequence: int = 0):
        self.site = site
        self.sequence = sequence
        super().__init__(message)


class ServeError(ReproError):
    """Base class for the concurrent retrieval service (:mod:`repro.serve`)."""


class ServeRejected(ServeError):
    """A request was refused admission, or shed after admission.

    Raised by :meth:`repro.serve.RetrievalServer.submit` when admission
    control refuses the request outright (queue full, estimated backlog
    past the class deadline, server closing), and by
    :meth:`repro.serve.ServeResult.raise_for_status` for a request that
    was admitted and later shed under pressure.

    ``retry_after_ms`` is the server's hint for when capacity is likely
    to exist again — a well-behaved client backs off at least that long.
    ``reason`` is a stable machine-readable tag (``queue-full``,
    ``backlog``, ``shed``, ``closing``).
    """

    def __init__(
        self,
        message: str,
        retry_after_ms: float = 0.0,
        reason: str = "",
        sla: str = "",
    ):
        self.retry_after_ms = retry_after_ms
        self.reason = reason
        self.sla = sla
        super().__init__(message)


class StoreError(ReproError):
    """Base class for the crash-safe on-disk store (:mod:`repro.store`).

    ``path`` points at the store root (or the specific file) the failure
    concerns, when known.
    """

    def __init__(self, message: str, path: str = ""):
        self.path = path
        super().__init__(message)


class StoreWriteError(StoreError):
    """A snapshot write failed before the manifest commit point.

    The store on disk is untouched by a failed save: the previous
    manifest still names the previous intact snapshot, and only
    unreferenced partial files (cleaned by ``repair``) remain from the
    aborted one.
    """


class StoreCorruptionError(StoreError):
    """No intact snapshot could be loaded (truncation, bit rot, torn write).

    ``artifact`` names the damaged artifact (``<snapshot-id>/<file>``)
    first detected; ``quarantined`` lists where load moved the damaged
    files — they are preserved, never deleted.
    """

    def __init__(
        self,
        message: str,
        path: str = "",
        artifact: str = "",
        quarantined: tuple = (),
    ):
        self.artifact = artifact
        self.quarantined = tuple(quarantined)
        super().__init__(message, path=path)


class StoreVersionError(StoreError):
    """The on-disk store carries a format version this build cannot read."""


class IngestError(ReproError):
    """Base class for the streaming-ingest layer (:mod:`repro.ingest`).

    Raised for structural problems of an ingest directory (missing or
    malformed WAL commit marker, an unreadable delta manifest), for
    operations rejected before they reach the WAL (unknown video, a
    non-flat hierarchy, an annotation past the segment range), and as
    the base of :class:`WALCorruptionError`.  ``path`` points at the
    ingest root (or the specific file) the failure concerns, when known.
    """

    def __init__(self, message: str, path: str = ""):
        self.path = path
        super().__init__(message)


class WALCorruptionError(IngestError):
    """A committed WAL record failed its CRC or framing check.

    Damage *past* the commit point is a torn tail — recovery quarantines
    and truncates it silently.  Damage *inside* the committed prefix is
    real corruption: the recovered state could no longer equal the
    committed prefix, so recovery quarantines the damaged bytes (never
    deletes) and raises this.  ``offset`` is the byte offset of the
    damaged record in the log; ``record`` its 0-based record number;
    ``quarantined`` where the damaged bytes were preserved.
    """

    def __init__(
        self,
        message: str,
        path: str = "",
        offset: int = 0,
        record: int = 0,
        quarantined: tuple = (),
    ):
        self.offset = offset
        self.record = record
        self.quarantined = tuple(quarantined)
        super().__init__(message, path=path)


class ShardError(StoreError):
    """A sharded-corpus operation failed (:mod:`repro.shard`).

    Raised for structural problems of a shard layout — a malformed or
    missing ``SHARDS.json``, overlapping video ownership, an unknown
    shard id — and, in strict mode, for a shard that could not be
    loaded at query time (the original load failure is chained as
    ``__cause__``).  ``shard`` names the offending shard when known.
    """

    def __init__(self, message: str, path: str = "", shard: str = ""):
        self.shard = shard
        super().__init__(message, path=path)
