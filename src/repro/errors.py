"""Exception hierarchy for the ``repro`` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class.  Sub-systems add
their own subclasses (e.g. the HTL parser raises :class:`HTLSyntaxError`,
the relational engine raises :class:`SQLError` subclasses).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the ``repro`` library."""


class InvalidIntervalError(ReproError, ValueError):
    """An interval was constructed with ``begin > end`` or a non-positive id."""


class InvalidSimilarityError(ReproError, ValueError):
    """A similarity value violates ``0 <= actual <= maximum``."""


class SimilarityListInvariantError(ReproError, ValueError):
    """A similarity list violates sortedness/disjointness/shared-max invariants."""


class HTLError(ReproError):
    """Base class for errors concerning the HTL language."""


class HTLSyntaxError(HTLError, ValueError):
    """The HTL query text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class HTLTypeError(HTLError, TypeError):
    """A formula is structurally ill-typed (e.g. unbound variable use)."""


class UnsupportedFormulaError(HTLError):
    """The formula falls outside the class the chosen algorithm supports.

    The paper's retrieval methods cover the *extended conjunctive* subclass
    of HTL; formulas outside it (negated temporal subformulas, temporal
    operators under non-prefix existential quantifiers, ...) are rejected
    with this error rather than silently mis-evaluated.
    """


class ModelError(ReproError):
    """Base class for errors in the hierarchical video model."""


class HierarchyError(ModelError, ValueError):
    """The video hierarchy is malformed (uneven leaf depth, empty levels...)."""


class UnknownLevelError(ModelError, KeyError):
    """A level name or number does not exist in the video hierarchy."""


class MetadataError(ModelError, ValueError):
    """Segment metadata is malformed (bad confidence, duplicate object...)."""


class SQLError(ReproError):
    """Base class for the mini relational engine."""


class SQLSyntaxError(SQLError, ValueError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class SQLCatalogError(SQLError, KeyError):
    """Reference to a missing table/column, or duplicate table creation."""


class SQLExecutionError(SQLError, RuntimeError):
    """A runtime failure while executing a SQL statement."""


class WorkloadError(ReproError, ValueError):
    """A workload generator was given inconsistent parameters."""
