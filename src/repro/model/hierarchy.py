"""The hierarchical video model (paper §2.1).

A video is a tree: the root (level 1) is the whole video, each level is a
temporally ordered decomposition of the previous one (sub-plots, scenes,
shots, frames...), and all leaves lie at the same depth.  Levels may carry
names ("scene level", "frame level") used by the named level modal
operators.

A *video segment* is a node of the tree; a *proper sequence* is the
left-to-right sequence of descendants of one node at one level, which is
what temporal operators quantify over.  Segments within a sequence are
numbered from 1, matching the similarity-list convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import HierarchyError, UnknownLevelError
from repro.model.metadata import SegmentMetadata

if TYPE_CHECKING:  # model is a lower layer than pictures
    from repro.pictures.retrieval import PictureRetrievalSystem


class VideoNode:
    """One video segment in the hierarchy tree."""

    __slots__ = ("metadata", "children", "parent", "level", "index", "_pictures")

    def __init__(
        self,
        metadata: Optional[SegmentMetadata] = None,
        children: Sequence["VideoNode"] = (),
    ):
        self.metadata = metadata if metadata is not None else SegmentMetadata()
        self.children: List[VideoNode] = list(children)
        self.parent: Optional[VideoNode] = None
        self.level: int = 0  # assigned when attached to a Video
        self.index: int = 0  # 1-based position among siblings
        # level -> PictureRetrievalSystem over the descendants at that
        # level; built lazily by pictures_at_level and dropped whenever the
        # subtree grows.  Hanging the system off the node (instead of the
        # engine's throwaway sequence context) is what lets repeated
        # queries skip re-building the metadata index and scorer.
        self._pictures: Optional[Dict[int, object]] = None

    def add_child(self, child: "VideoNode") -> "VideoNode":
        """Append a child segment and return it (builder convenience)."""
        self.children.append(child)
        node: Optional[VideoNode] = self
        while node is not None:
            node._pictures = None
            node = node.parent
        return child

    def pictures_at_level(self, level: int) -> "PictureRetrievalSystem":
        """The (cached) picture-retrieval system over the proper sequence of
        descendants at an absolute level.

        The system is a pure function of the descendants' metadata;
        ``add_child`` invalidates the cache up the ancestor chain.  Mutating
        a segment's metadata in place does *not* invalidate — rebuild the
        node (or call ``invalidate_pictures``) after such edits.
        """
        if self._pictures is None:
            self._pictures = {}
        system = self._pictures.get(level)
        if system is None:
            # Imported here: model is a lower layer than pictures.
            from repro.pictures.retrieval import PictureRetrievalSystem

            system = PictureRetrievalSystem(
                [node.metadata for node in self.descendants_at_level(level)]
            )
            self._pictures[level] = system
        return system

    def invalidate_pictures(self) -> None:
        """Drop cached picture systems on this node and all descendants."""
        for node in self.walk():
            node._pictures = None

    def install_pictures(
        self, level: int, system: "PictureRetrievalSystem"
    ) -> None:
        """Install a prebuilt picture system for one level (warm start).

        The store's load path uses this to hand a restored metadata
        index to the engine without re-deriving it.  The caller
        guarantees the system was built over exactly the metadata of
        ``descendants_at_level(level)``; ``add_child`` invalidates it
        like any cached system.
        """
        if self._pictures is None:
            self._pictures = {}
        self._pictures[level] = system

    def is_leaf(self) -> bool:
        return not self.children

    def descendants_at_level(self, level: int) -> List["VideoNode"]:
        """The proper sequence of descendants at an absolute level.

        ``level`` must be at or below this node's own level; the node itself
        is returned for its own level.
        """
        if level < self.level:
            raise UnknownLevelError(
                f"node at level {self.level} has no ancestors-as-descendants "
                f"at level {level}"
            )
        current: List[VideoNode] = [self]
        for __ in range(level - self.level):
            current = [child for node in current for child in node.children]
        return current

    def walk(self) -> Iterator["VideoNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return (
            f"VideoNode(level={self.level}, index={self.index}, "
            f"children={len(self.children)})"
        )


@dataclass
class Video:
    """A video: name, hierarchy root, and level naming.

    ``level_names`` maps a level number (1-based, root = 1) to a name such
    as ``"scene"`` or ``"frame"``; names must be unique.  Construction
    validates the hierarchy: every leaf at the same depth, so "all the
    leaves in the tree lie at the same level" (paper §2.1).
    """

    name: str
    root: VideoNode
    level_names: Dict[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._assign_levels()
        self.depth = self._validate_uniform_depth()
        seen: Dict[str, int] = {}
        for level, level_name in self.level_names.items():
            if level < 1 or level > self.depth:
                raise UnknownLevelError(
                    f"level name {level_name!r} maps to level {level}, "
                    f"but the video has levels 1..{self.depth}"
                )
            if level_name in seen:
                raise HierarchyError(
                    f"duplicate level name {level_name!r} for levels "
                    f"{seen[level_name]} and {level}"
                )
            seen[level_name] = level
        self._name_to_level = seen

    def _assign_levels(self) -> None:
        self.root.level = 1
        self.root.index = 1
        self.root.parent = None
        stack = [self.root]
        while stack:
            node = stack.pop()
            for position, child in enumerate(node.children, start=1):
                child.level = node.level + 1
                child.index = position
                child.parent = node
                stack.append(child)

    def _validate_uniform_depth(self) -> int:
        depths = {node.level for node in self.root.walk() if node.is_leaf()}
        if len(depths) != 1:
            raise HierarchyError(
                f"video {self.name!r} has leaves at levels "
                f"{sorted(depths)}; all leaves must lie at the same level"
            )
        return depths.pop()

    # -- level resolution -----------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Number of levels; leaves (frames) live at level ``n_levels``."""
        return self.depth

    def level_of(self, name: str) -> int:
        """Resolve a level name to its number."""
        try:
            return self._name_to_level[name]
        except KeyError:
            raise UnknownLevelError(
                f"video {self.name!r} has no level named {name!r}; "
                f"known: {sorted(self._name_to_level)}"
            ) from None

    def nodes_at_level(self, level: int) -> List[VideoNode]:
        """All segments at an absolute level, in temporal order."""
        if level < 1 or level > self.depth:
            raise UnknownLevelError(
                f"video {self.name!r} has levels 1..{self.depth}, "
                f"asked for {level}"
            )
        return self.root.descendants_at_level(level)

    def segments(self) -> Iterator[VideoNode]:
        """All segments of the video, pre-order."""
        return self.root.walk()

    def object_universe(self) -> List[str]:
        """All universal object ids appearing anywhere in the video."""
        seen: Dict[str, None] = {}
        for node in self.root.walk():
            for object_id in node.metadata.object_ids():
                seen.setdefault(object_id, None)
        return list(seen)

    # -- incremental growth -----------------------------------------------
    def append_segments(
        self, segments: Sequence[SegmentMetadata]
    ) -> List[VideoNode]:
        """Append leaf segments to a flat (≤ two-level) video in place.

        The streaming-ingest mutation primitive.  Unlike raw
        ``root.add_child`` calls — which drop every cached picture system
        up the ancestor chain — this keeps the root's installed systems
        warm: the level-1 system covers only the root's own metadata
        (unaffected), and the level-2 system is extended incrementally via
        :meth:`~repro.pictures.retrieval.PictureRetrievalSystem.
        append_segments`.  Deeper hierarchies have no well-defined "append
        at the end" (which subtree grows?), so only the paper's flat shape
        is supported.
        """
        if self.depth > 2:
            raise HierarchyError(
                f"video {self.name!r} has {self.depth} levels; segments "
                "can only be appended to a flat (two-level) video"
            )
        if not segments:
            return []
        root = self.root
        pictures = root._pictures
        root._pictures = None
        added: List[VideoNode] = []
        for position, metadata in enumerate(
            segments, start=len(root.children) + 1
        ):
            child = VideoNode(metadata=metadata)
            child.level = 2
            child.index = position
            child.parent = root
            root.children.append(child)
            added.append(child)
        self.depth = 2
        # A video born empty had no leaf level to name yet.
        if 2 not in self.level_names:
            self.level_names[2] = "shot"
            self._name_to_level["shot"] = 2
        if pictures:
            level_one = pictures.get(1)
            if level_one is not None:
                root.install_pictures(1, level_one)
            level_two = pictures.get(2)
            if level_two is not None:
                level_two.append_segments(
                    [child.metadata for child in added]
                )
                root.install_pictures(2, level_two)
        return added


def flat_video(
    name: str,
    segments: Sequence[SegmentMetadata],
    root_metadata: Optional[SegmentMetadata] = None,
    child_level_name: str = "shot",
) -> Video:
    """Build the paper's two-level video: a root with a flat child sequence.

    This is the shape §3 assumes ("each video has only two levels, the root
    node and its children") and the shape the experiments use, with every
    child a shot.
    """
    root = VideoNode(metadata=root_metadata)
    for metadata in segments:
        root.add_child(VideoNode(metadata=metadata))
    level_names = {1: "video"}
    if segments:
        level_names[2] = child_level_name
    return Video(name=name, root=root, level_names=level_names)


def standard_level_names(depth: int) -> Dict[int, str]:
    """The paper's canonical naming for a ``depth``-level hierarchy.

    Five levels: video / subplot / scene / shot / frame; shallower videos
    take a suffix of that list (the leaf level is always the finest name).
    """
    canonical = ["video", "subplot", "scene", "shot", "frame"]
    if depth < 1 or depth > len(canonical):
        raise HierarchyError(
            f"standard naming covers 1..{len(canonical)} levels, got {depth}"
        )
    names = ["video"] + canonical[len(canonical) - depth + 1 :]
    return {level: name for level, name in enumerate(names, start=1)}
