"""Meta-data associated with video segments (paper §2.1).

The paper attaches meta-data to every video segment in the hierarchy, in an
extended E-R style: the *objects* appearing in the segment (each with a
universal object id — "the same object in different pictures is given the
same id"), their *attributes*, the *relationships* among them, and
segment-level attributes (a shot's type, a movie's title...).

Every fact carries a *confidence* in ``(0, 1]``: the image-analysis
algorithms producing meta-data are imperfect (paper §1), and the
picture-retrieval scoring scales a matched condition's weight by the fact's
confidence — this is how non-integral similarity values such as the paper's
``9.787`` arise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.errors import MetadataError

#: Values attributes may take.
AttrValue = Union[str, int, float]

#: Relationship arguments are object ids or constant values.
RelArg = Union[str, int, float]


@dataclass(frozen=True)
class Fact:
    """An attribute value together with the analyzer's confidence."""

    value: AttrValue
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise MetadataError(
                f"confidence must be in (0, 1], got {self.confidence}"
            )


def as_fact(value: Union[AttrValue, Fact]) -> Fact:
    """Coerce a plain value to a full-confidence :class:`Fact`."""
    if isinstance(value, Fact):
        return value
    return Fact(value)


@dataclass
class ObjectInstance:
    """An object appearing in one segment: id, type, attributes, confidence.

    ``object_id`` is the universal id shared across segments; ``confidence``
    is the detection confidence of the object itself.
    """

    object_id: str
    type: str
    attributes: Dict[str, Fact] = field(default_factory=dict)
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence <= 1.0:
            raise MetadataError(
                f"object confidence must be in (0, 1], got {self.confidence}"
            )
        self.attributes = {
            name: as_fact(value) for name, value in self.attributes.items()
        }

    def attribute(self, name: str) -> Optional[Fact]:
        """The attribute fact, or None when undefined.

        ``type`` and ``name`` resolve specially: ``type`` always falls back
        to the object's type so queries like ``type(x) = 'airplane'`` work
        without duplicating it into the attribute map.
        """
        fact = self.attributes.get(name)
        if fact is not None:
            return fact
        if name == "type":
            return Fact(self.type, self.confidence)
        return None


@dataclass(frozen=True)
class Relationship:
    """A named k-ary relationship among objects/constants in one segment."""

    name: str
    args: Tuple[RelArg, ...]
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not self.args:
            raise MetadataError(f"relationship {self.name!r} needs arguments")
        if not 0.0 < self.confidence <= 1.0:
            raise MetadataError(
                f"relationship confidence must be in (0, 1], got "
                f"{self.confidence}"
            )


def _validated_signature(
    signature: Optional[Iterable[float]],
) -> Optional[Tuple[float, ...]]:
    """Coerce and validate an optional content signature.

    Signatures are normalised colour-histogram vectors produced by the
    analyzer (:mod:`repro.analyzer.features`); the metadata layer only
    enforces the domain — finite, non-negative numbers — so corrupt store
    artifacts cannot smuggle NaNs or negative mass into signature scoring.
    """
    if signature is None:
        return None
    values = tuple(signature)
    if not values:
        raise MetadataError("a content signature needs at least one bin")
    for position, bin_value in enumerate(values):
        if (
            not isinstance(bin_value, (int, float))
            or isinstance(bin_value, bool)
            or not math.isfinite(bin_value)
            or bin_value < 0
        ):
            raise MetadataError(
                f"signature bin {position} must be a finite non-negative "
                f"number, got {bin_value!r}"
            )
    return tuple(float(bin_value) for bin_value in values)


class SegmentMetadata:
    """All meta-data of one video segment."""

    __slots__ = ("attributes", "_objects", "relationships", "signature")

    def __init__(
        self,
        attributes: Optional[Mapping[str, Union[AttrValue, Fact]]] = None,
        objects: Iterable[ObjectInstance] = (),
        relationships: Iterable[Relationship] = (),
        signature: Optional[Iterable[float]] = None,
    ):
        self.attributes: Dict[str, Fact] = {
            name: as_fact(value) for name, value in (attributes or {}).items()
        }
        self._objects: Dict[str, ObjectInstance] = {}
        for instance in objects:
            self.add_object(instance)
        self.relationships: List[Relationship] = list(relationships)
        # Optional content signature: the shot-averaged colour histogram
        # the signature backend scores looks_like() atoms against.  None
        # means "no content analysis ran" — annotation-only retrieval.
        self.signature: Optional[Tuple[float, ...]] = _validated_signature(
            signature
        )

    # -- objects ----------------------------------------------------------
    def add_object(self, instance: ObjectInstance) -> None:
        """Register an object appearance; ids are unique per segment."""
        if instance.object_id in self._objects:
            raise MetadataError(
                f"object {instance.object_id!r} appears twice in one segment"
            )
        self._objects[instance.object_id] = instance

    def object(self, object_id: str) -> Optional[ObjectInstance]:
        """The object instance by universal id, or None when absent."""
        return self._objects.get(object_id)

    def objects(self) -> Iterator[ObjectInstance]:
        """Iterate all objects of the segment."""
        return iter(self._objects.values())

    def object_ids(self) -> Iterator[str]:
        """Iterate the universal ids of all objects in the segment."""
        return iter(self._objects.keys())

    def has_object(self, object_id: str) -> bool:
        return object_id in self._objects

    # -- attributes ---------------------------------------------------------
    def segment_attribute(self, name: str) -> Optional[Fact]:
        """A segment-level attribute fact, or None when undefined."""
        return self.attributes.get(name)

    def object_attribute(self, object_id: str, name: str) -> Optional[Fact]:
        """An attribute of an object in this segment, or None."""
        instance = self._objects.get(object_id)
        if instance is None:
            return None
        return instance.attribute(name)

    # -- relationships --------------------------------------------------------
    def add_relationship(self, relationship: Relationship) -> None:
        self.relationships.append(relationship)

    def find_relationship(
        self, name: str, args: Tuple[RelArg, ...]
    ) -> Optional[Relationship]:
        """The relationship with exactly this name and argument tuple."""
        for relationship in self.relationships:
            if relationship.name == name and relationship.args == args:
                return relationship
        return None

    def relationships_named(self, name: str) -> Iterator[Relationship]:
        """All relationships with the given name."""
        return (rel for rel in self.relationships if rel.name == name)

    def __repr__(self) -> str:
        return (
            f"SegmentMetadata(attrs={list(self.attributes)}, "
            f"objects={list(self._objects)}, "
            f"rels={[rel.name for rel in self.relationships]})"
        )


def make_object(
    object_id: str,
    type: str,
    confidence: float = 1.0,
    **attributes: Union[AttrValue, Fact],
) -> ObjectInstance:
    """Keyword-friendly :class:`ObjectInstance` constructor."""
    return ObjectInstance(
        object_id=object_id,
        type=type,
        attributes=dict(attributes),
        confidence=confidence,
    )
