"""JSON persistence for videos, meta-data and similarity lists.

The paper assumes a database "that contains the meta-data describing the
contents of the various videos"; this module gives that database a durable
form: plain-JSON documents with stable schemas, round-trip safe
(``loads(dumps(db)) == db`` structurally), so annotated corpora and
precomputed similarity tables can be shipped with experiments.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.core.simlist import SimilarityList, SimilarityValue
from repro.errors import ModelError, ReproError
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode
from repro.model.metadata import (
    Fact,
    ObjectInstance,
    Relationship,
    SegmentMetadata,
)

FORMAT_VERSION = 1

#: JSON values an attribute may carry (bool is admitted as an int).
_SCALAR_TYPES = (str, int, float)


@contextmanager
def _trust_boundary(what: str) -> Iterator[None]:
    """Convert structural junk into a typed :class:`ModelError`.

    The ``*_from_dict`` constructors accept payloads from outside the
    process (files, network); a missing key, wrong type, or malformed
    nesting must surface as a typed error, never as a raw ``KeyError``
    or a silently corrupt object.  Typed :class:`ReproError` subclasses
    (metadata/hierarchy/similarity invariant violations) pass through
    untouched.
    """
    try:
        yield
    except ReproError:
        raise
    except Exception as error:
        raise ModelError(f"malformed {what} payload: {error!r}") from error


# ---------------------------------------------------------------------------
# similarity lists
# ---------------------------------------------------------------------------
def simlist_to_dict(sim: SimilarityList) -> Dict[str, Any]:
    return {
        "maximum": sim.maximum,
        "entries": [
            [entry.begin, entry.end, entry.actual] for entry in sim
        ],
    }


def simlist_from_dict(payload: Dict[str, Any]) -> SimilarityList:
    """Rebuild a similarity list from an untrusted payload.

    Every entry is routed through the :class:`SimilarityValue` range
    gate (so a negative or above-maximum actual raises instead of being
    silently normalised away) and the rebuilt list runs the full
    invariant scan regardless of the global gate.
    """
    with _trust_boundary("similarity-list"):
        maximum = float(payload["maximum"])
        entries = []
        for begin, end, actual in payload["entries"]:
            SimilarityValue(float(actual), maximum)  # range gate
            entries.append(((int(begin), int(end)), float(actual)))
    return SimilarityList.from_entries(entries, maximum).validate()


# ---------------------------------------------------------------------------
# metadata
# ---------------------------------------------------------------------------
def _fact_to_json(fact: Fact) -> Any:
    if fact.confidence == 1.0:
        return fact.value
    return {"value": fact.value, "confidence": fact.confidence}


def _fact_from_json(payload: Any) -> Any:
    if isinstance(payload, dict) and "value" in payload:
        value = payload["value"]
        if not isinstance(value, _SCALAR_TYPES):
            raise ModelError(
                f"attribute value must be a string or number, got "
                f"{type(value).__name__}"
            )
        return Fact(value, float(payload.get("confidence", 1.0)))
    if not isinstance(payload, _SCALAR_TYPES):
        raise ModelError(
            f"attribute value must be a string or number, got "
            f"{type(payload).__name__}"
        )
    return payload


def segment_to_dict(segment: SegmentMetadata) -> Dict[str, Any]:
    document: Dict[str, Any] = {}
    if segment.attributes:
        document["attributes"] = {
            name: _fact_to_json(fact)
            for name, fact in segment.attributes.items()
        }
    objects = []
    for instance in segment.objects():
        item: Dict[str, Any] = {"id": instance.object_id, "type": instance.type}
        if instance.confidence != 1.0:
            item["confidence"] = instance.confidence
        if instance.attributes:
            item["attributes"] = {
                name: _fact_to_json(fact)
                for name, fact in instance.attributes.items()
            }
        objects.append(item)
    if objects:
        document["objects"] = objects
    relationships = []
    for relationship in segment.relationships:
        item = {"name": relationship.name, "args": list(relationship.args)}
        if relationship.confidence != 1.0:
            item["confidence"] = relationship.confidence
        relationships.append(item)
    if relationships:
        document["relationships"] = relationships
    if segment.signature is not None:
        document["signature"] = list(segment.signature)
    return document


def segment_from_dict(document: Dict[str, Any]) -> SegmentMetadata:
    with _trust_boundary("segment-metadata"):
        attributes = {
            str(name): _fact_from_json(value)
            for name, value in document.get("attributes", {}).items()
        }
        objects = [
            ObjectInstance(
                str(item["id"]),
                str(item["type"]),
                {
                    str(name): _fact_from_json(value)
                    for name, value in item.get("attributes", {}).items()
                },
                float(item.get("confidence", 1.0)),
            )
            for item in document.get("objects", [])
        ]
        relationships = [
            Relationship(
                str(item["name"]),
                tuple(item["args"]),
                float(item.get("confidence", 1.0)),
            )
            for item in document.get("relationships", [])
        ]
        signature = document.get("signature")
        if signature is not None:
            if not isinstance(signature, list):
                raise ModelError(
                    f"segment signature must be a list of numbers, got "
                    f"{type(signature).__name__}"
                )
            # SegmentMetadata validates the value domain (finite,
            # non-negative) so a corrupt artifact raises a typed error.
            signature = [float(bin_value) for bin_value in signature]
        return SegmentMetadata(
            attributes=attributes,
            objects=objects,
            relationships=relationships,
            signature=signature,
        )


# ---------------------------------------------------------------------------
# hierarchy
# ---------------------------------------------------------------------------
def _node_to_dict(node: VideoNode) -> Dict[str, Any]:
    document: Dict[str, Any] = {"metadata": segment_to_dict(node.metadata)}
    if node.children:
        document["children"] = [
            _node_to_dict(child) for child in node.children
        ]
    return document


def _node_from_dict(document: Dict[str, Any]) -> VideoNode:
    node = VideoNode(metadata=segment_from_dict(document.get("metadata", {})))
    for child in document.get("children", []):
        node.add_child(_node_from_dict(child))
    return node


def video_to_dict(video: Video) -> Dict[str, Any]:
    return {
        "name": video.name,
        "level_names": {
            str(level): name for level, name in video.level_names.items()
        },
        "root": _node_to_dict(video.root),
    }


def video_from_dict(document: Dict[str, Any]) -> Video:
    with _trust_boundary("video"):
        name = document["name"]
        if not isinstance(name, str) or not name:
            raise ModelError(
                f"video name must be a non-empty string, got {name!r}"
            )
        root = _node_from_dict(document["root"])
        level_names = {
            int(level): str(level_name)
            for level, level_name in document.get("level_names", {}).items()
        }
        # Video construction runs the hierarchy invariant checks
        # (uniform leaf depth, level-name consistency).
        return Video(name=name, root=root, level_names=level_names)


# ---------------------------------------------------------------------------
# whole databases
# ---------------------------------------------------------------------------
def videos_to_list(database: VideoDatabase) -> List[Dict[str, Any]]:
    """The video documents of a database, in insertion order."""
    return [video_to_dict(video) for video in database.videos()]


def atomics_to_list(database: VideoDatabase) -> List[Dict[str, Any]]:
    """The registered atomic similarity lists of a database, as documents."""
    atomics = []
    for name in database.atomic_names():
        for video in database.videos():
            for level in range(1, video.n_levels + 1):
                sim = database.atomic_list(name, video.name, level)
                if sim is not None:
                    atomics.append(
                        {
                            "predicate": name,
                            "video": video.name,
                            "level": level,
                            "list": simlist_to_dict(sim),
                        }
                    )
    return atomics


def database_to_dict(database: VideoDatabase) -> Dict[str, Any]:
    return {
        "format": FORMAT_VERSION,
        "videos": videos_to_list(database),
        "atomics": atomics_to_list(database),
    }


def database_from_parts(
    videos: List[Dict[str, Any]], atomics: List[Dict[str, Any]]
) -> VideoDatabase:
    """Rebuild a database from separate video and atomic documents.

    The store persists the two as independent artifacts (so each can be
    verified and quarantined on its own); this is their common loader.
    """
    database = VideoDatabase()
    with _trust_boundary("video-database"):
        for video_document in videos:
            database.add(video_from_dict(video_document))
        for atomic in atomics:
            database.register_atomic(
                str(atomic["predicate"]),
                str(atomic["video"]),
                simlist_from_dict(atomic["list"]),
                level=int(atomic.get("level", 2)),
            )
    return database


def database_from_dict(document: Dict[str, Any]) -> VideoDatabase:
    with _trust_boundary("video-database"):
        version = document.get("format")
        if version != FORMAT_VERSION:
            raise ModelError(
                f"unsupported database format {version!r}; "
                f"this build reads version {FORMAT_VERSION}"
            )
        videos = document.get("videos", [])
        atomics = document.get("atomics", [])
        if not isinstance(videos, list) or not isinstance(atomics, list):
            raise ModelError(
                "database payload must carry 'videos' and 'atomics' lists"
            )
    return database_from_parts(videos, atomics)


def dump_database(database: VideoDatabase, path: str) -> None:
    """Write a database to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(database_to_dict(database), handle, indent=1)


def load_database(path: str) -> VideoDatabase:
    """Read a database from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return database_from_dict(json.load(handle))
