"""JSON persistence for videos, meta-data and similarity lists.

The paper assumes a database "that contains the meta-data describing the
contents of the various videos"; this module gives that database a durable
form: plain-JSON documents with stable schemas, round-trip safe
(``loads(dumps(db)) == db`` structurally), so annotated corpora and
precomputed similarity tables can be shipped with experiments.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.core.simlist import SimilarityList
from repro.errors import ModelError
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode
from repro.model.metadata import (
    Fact,
    ObjectInstance,
    Relationship,
    SegmentMetadata,
)

FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# similarity lists
# ---------------------------------------------------------------------------
def simlist_to_dict(sim: SimilarityList) -> Dict[str, Any]:
    return {
        "maximum": sim.maximum,
        "entries": [
            [entry.begin, entry.end, entry.actual] for entry in sim
        ],
    }


def simlist_from_dict(payload: Dict[str, Any]) -> SimilarityList:
    return SimilarityList.from_entries(
        [((int(b), int(e)), float(a)) for b, e, a in payload["entries"]],
        float(payload["maximum"]),
    )


# ---------------------------------------------------------------------------
# metadata
# ---------------------------------------------------------------------------
def _fact_to_json(fact: Fact) -> Any:
    if fact.confidence == 1.0:
        return fact.value
    return {"value": fact.value, "confidence": fact.confidence}


def _fact_from_json(payload: Any) -> Any:
    if isinstance(payload, dict) and "value" in payload:
        return Fact(payload["value"], float(payload.get("confidence", 1.0)))
    return payload


def segment_to_dict(segment: SegmentMetadata) -> Dict[str, Any]:
    document: Dict[str, Any] = {}
    if segment.attributes:
        document["attributes"] = {
            name: _fact_to_json(fact)
            for name, fact in segment.attributes.items()
        }
    objects = []
    for instance in segment.objects():
        item: Dict[str, Any] = {"id": instance.object_id, "type": instance.type}
        if instance.confidence != 1.0:
            item["confidence"] = instance.confidence
        if instance.attributes:
            item["attributes"] = {
                name: _fact_to_json(fact)
                for name, fact in instance.attributes.items()
            }
        objects.append(item)
    if objects:
        document["objects"] = objects
    relationships = []
    for relationship in segment.relationships:
        item = {"name": relationship.name, "args": list(relationship.args)}
        if relationship.confidence != 1.0:
            item["confidence"] = relationship.confidence
        relationships.append(item)
    if relationships:
        document["relationships"] = relationships
    return document


def segment_from_dict(document: Dict[str, Any]) -> SegmentMetadata:
    attributes = {
        name: _fact_from_json(value)
        for name, value in document.get("attributes", {}).items()
    }
    objects = [
        ObjectInstance(
            item["id"],
            item["type"],
            {
                name: _fact_from_json(value)
                for name, value in item.get("attributes", {}).items()
            },
            float(item.get("confidence", 1.0)),
        )
        for item in document.get("objects", [])
    ]
    relationships = [
        Relationship(
            item["name"],
            tuple(item["args"]),
            float(item.get("confidence", 1.0)),
        )
        for item in document.get("relationships", [])
    ]
    return SegmentMetadata(
        attributes=attributes, objects=objects, relationships=relationships
    )


# ---------------------------------------------------------------------------
# hierarchy
# ---------------------------------------------------------------------------
def _node_to_dict(node: VideoNode) -> Dict[str, Any]:
    document: Dict[str, Any] = {"metadata": segment_to_dict(node.metadata)}
    if node.children:
        document["children"] = [
            _node_to_dict(child) for child in node.children
        ]
    return document


def _node_from_dict(document: Dict[str, Any]) -> VideoNode:
    node = VideoNode(metadata=segment_from_dict(document.get("metadata", {})))
    for child in document.get("children", []):
        node.add_child(_node_from_dict(child))
    return node


def video_to_dict(video: Video) -> Dict[str, Any]:
    return {
        "name": video.name,
        "level_names": {
            str(level): name for level, name in video.level_names.items()
        },
        "root": _node_to_dict(video.root),
    }


def video_from_dict(document: Dict[str, Any]) -> Video:
    return Video(
        name=document["name"],
        root=_node_from_dict(document["root"]),
        level_names={
            int(level): name
            for level, name in document.get("level_names", {}).items()
        },
    )


# ---------------------------------------------------------------------------
# whole databases
# ---------------------------------------------------------------------------
def database_to_dict(database: VideoDatabase) -> Dict[str, Any]:
    atomics = []
    for name in database.atomic_names():
        for video in database.videos():
            for level in range(1, video.n_levels + 1):
                sim = database.atomic_list(name, video.name, level)
                if sim is not None:
                    atomics.append(
                        {
                            "predicate": name,
                            "video": video.name,
                            "level": level,
                            "list": simlist_to_dict(sim),
                        }
                    )
    return {
        "format": FORMAT_VERSION,
        "videos": [video_to_dict(video) for video in database.videos()],
        "atomics": atomics,
    }


def database_from_dict(document: Dict[str, Any]) -> VideoDatabase:
    version = document.get("format")
    if version != FORMAT_VERSION:
        raise ModelError(
            f"unsupported database format {version!r}; "
            f"this build reads version {FORMAT_VERSION}"
        )
    database = VideoDatabase()
    for video_document in document.get("videos", []):
        database.add(video_from_dict(video_document))
    for atomic in document.get("atomics", []):
        database.register_atomic(
            atomic["predicate"],
            atomic["video"],
            simlist_from_dict(atomic["list"]),
            level=int(atomic.get("level", 2)),
        )
    return database


def dump_database(database: VideoDatabase, path: str) -> None:
    """Write a database to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(database_to_dict(database), handle, indent=1)


def load_database(path: str) -> VideoDatabase:
    """Read a database from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return database_from_dict(json.load(handle))
