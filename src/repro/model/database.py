"""The meta-data database: a named collection of videos (paper §1).

The paper assumes "a database containing the actual videos, and another
database that contains the meta-data"; we model the latter.  The database
also acts as the registry of externally supplied atomic-predicate
similarity tables — the form in which the paper's experiments feed the
picture-retrieval system's output into the video-retrieval system.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.simlist import SimilarityList
from repro.errors import ModelError
from repro.model.hierarchy import Video


class VideoDatabase:
    """A collection of videos plus registered atomic similarity lists."""

    def __init__(self) -> None:
        self._videos: Dict[str, Video] = {}
        # (predicate name, video name, level) -> similarity list
        self._atomic: Dict[Tuple[str, str, int], SimilarityList] = {}
        # Bumped on every mutation; EvaluationCache.sync compares it to
        # decide when memoized results are stale.
        self._generation = 0
        # Per-video stamps: each mutation also stamps the one video it
        # touched with the new global generation, so caches can invalidate
        # only that video's entries (EvaluationCache.sync_video) instead
        # of dropping everything on any change.
        self._video_generations: Dict[str, int] = {}

    @property
    def generation(self) -> int:
        """Mutation counter: changes whenever cached results would be stale."""
        return self._generation

    def video_generation(self, name: str) -> int:
        """The monotonic stamp of one video's last mutation (0 if never).

        Stamps share the global generation's number line, so for any
        video ``video_generation(name) <= generation``, and two distinct
        mutations never reuse a stamp.
        """
        return self._video_generations.get(name, 0)

    def video_generations(self) -> Dict[str, int]:
        """A snapshot of every video's stamp (for checkpoint bookkeeping)."""
        return dict(self._video_generations)

    def touch(self, name: str) -> int:
        """Declare that a video's content changed in place; returns its
        new stamp.

        The ingest path mutates hierarchies directly (appending segments
        to a registered video), which the database cannot observe — this
        is how such a mutation enters the generation bookkeeping.
        """
        if name not in self._videos:
            raise ModelError(f"cannot touch unknown video {name!r}")
        self._generation += 1
        self._video_generations[name] = self._generation
        return self._generation

    # -- videos --------------------------------------------------------------
    def add(self, video: Video) -> Video:
        """Register a video; names are unique."""
        if video.name in self._videos:
            raise ModelError(f"video {video.name!r} already in the database")
        self._videos[video.name] = video
        self._generation += 1
        self._video_generations[video.name] = self._generation
        return video

    def replace(self, video: Video) -> Video:
        """Swap in a newer copy of an already-registered video.

        Recovery applies checkpoint deltas this way: a delta carries the
        full document of every video it covers, which supersedes the
        copy loaded from the base snapshot (or an earlier delta).
        """
        if video.name not in self._videos:
            raise ModelError(
                f"cannot replace unknown video {video.name!r}"
            )
        self._videos[video.name] = video
        self._generation += 1
        self._video_generations[video.name] = self._generation
        return video

    def get(self, name: str) -> Video:
        try:
            return self._videos[name]
        except KeyError:
            raise ModelError(f"no video named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._videos

    def __len__(self) -> int:
        return len(self._videos)

    def videos(self) -> Iterator[Video]:
        """Iterate videos in insertion order."""
        return iter(self._videos.values())

    def names(self) -> List[str]:
        return list(self._videos)

    # -- registered atomic predicates -----------------------------------------
    def register_atomic(
        self,
        predicate: str,
        video: str,
        sim_list: SimilarityList,
        level: int = 2,
    ) -> None:
        """Attach an externally computed similarity list for an atomic
        predicate over one video's segments at one level.

        ``level`` defaults to 2 — the children of the root, which is where
        §3's algorithms (and the paper's experiments) assert formulas.
        """
        if video not in self._videos:
            raise ModelError(
                f"cannot register atomic {predicate!r}: no video {video!r}"
            )
        self._atomic[(predicate, video, level)] = sim_list
        self._generation += 1
        self._video_generations[video] = self._generation

    def atomic_list(
        self, predicate: str, video: str, level: int = 2
    ) -> Optional[SimilarityList]:
        """Look up a registered atomic similarity list (None when absent)."""
        return self._atomic.get((predicate, video, level))

    def max_atomic_actual(
        self, predicate: str, video: str, level: int = 2
    ) -> Optional[float]:
        """Largest actual value on a registered list (None when absent).

        This is the cheap per-video evidence the top-k pruner combines into
        an admissible upper bound: no evaluation of a formula over the
        video can push an atomic's contribution above its list maximum.
        """
        sim = self._atomic.get((predicate, video, level))
        if sim is None:
            return None
        return max((entry.actual for entry in sim.entries), default=0.0)

    def atomic_names(self) -> List[str]:
        """Distinct registered atomic predicate names."""
        return sorted({key[0] for key in self._atomic})

    def video_atomics(
        self, video: str
    ) -> List[Tuple[str, int, SimilarityList]]:
        """Every registered ``(predicate, level, list)`` of one video.

        Checkpoint deltas persist a video's complete annotation set
        alongside its document, so applying the delta needs no diffing.
        """
        return [
            (predicate, level, sim)
            for (predicate, name, level), sim in self._atomic.items()
            if name == video
        ]

    def drop_video_atomics(self, video: str) -> int:
        """Remove every atomic list of one video; returns how many fell.

        Used when a checkpoint delta replaces a video wholesale — its
        annotation set is re-registered from the delta afterwards.
        """
        stale = [key for key in self._atomic if key[1] == video]
        for key in stale:
            del self._atomic[key]
        if stale:
            self._generation += 1
            self._video_generations[video] = self._generation
        return len(stale)
