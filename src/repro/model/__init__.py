"""Hierarchical video model and meta-data database (paper §2.1)."""

from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode, flat_video, standard_level_names
from repro.model.serialize import (
    database_from_dict,
    database_to_dict,
    dump_database,
    load_database,
    video_from_dict,
    video_to_dict,
)
from repro.model.metadata import (
    Fact,
    ObjectInstance,
    Relationship,
    SegmentMetadata,
    make_object,
)

__all__ = [
    "Video",
    "VideoNode",
    "VideoDatabase",
    "flat_video",
    "standard_level_names",
    "SegmentMetadata",
    "ObjectInstance",
    "Relationship",
    "Fact",
    "make_object",
    "dump_database",
    "load_database",
    "database_to_dict",
    "database_from_dict",
    "video_to_dict",
    "video_from_dict",
]
