"""Per-stage timing facade for benchmarks and ad-hoc profiling.

Thin re-export of :mod:`repro.core.instrument` (the engine-side
switchboard) plus a report renderer, so benchmark code can attribute a
regression to atom scoring vs. list algebra vs. top-k without
re-profiling:

    from repro.bench import stages
    stages.enable()
    ...run queries...
    print(stages.stage_report_text())
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.instrument import (
    ATOM_SCORING,
    LIST_ALGEBRA,
    TOP_K,
    StageTotal,
    add,
    disable,
    enable,
    is_enabled,
    reset,
    stage,
    totals,
)

__all__ = [
    "ATOM_SCORING",
    "LIST_ALGEBRA",
    "TOP_K",
    "StageTotal",
    "add",
    "disable",
    "enable",
    "is_enabled",
    "reset",
    "stage",
    "totals",
    "stage_report_text",
]


def stage_report_text(title: str = "Per-stage timing") -> str:
    """The accumulated stage totals as an aligned text table."""
    snapshot = totals()
    rows = [
        (name, f"{total.seconds:.4f}", total.calls)
        for name, total in sorted(snapshot.items())
    ]
    if not rows:
        rows = [("(no stages recorded)", "-", "-")]
    table = format_table(("Stage", "Seconds", "Calls"), rows)
    return f"{title}\n{table}"
