"""Per-stage timing facade for benchmarks and ad-hoc profiling.

Thin re-export of :mod:`repro.core.instrument` (the engine-side
switchboard, itself a facade over the metrics registry of
:mod:`repro.core.trace`) plus report renderers, so benchmark code can
attribute a regression to atom scoring vs. list algebra vs. top-k without
re-profiling:

    from repro.bench import stages
    stages.enable()
    ...run queries...
    print(stages.stage_report_text())
    print(stages.latency_report_text())
"""

from __future__ import annotations

from repro.bench.reporting import format_table
from repro.core.instrument import (
    ATOM_SCORING,
    LIST_ALGEBRA,
    QUERY_LATENCY,
    TOP_K,
    VIDEO_LATENCY,
    HistogramSummary,
    StageTotal,
    add,
    disable,
    drain,
    enable,
    histograms,
    is_enabled,
    observe,
    reset,
    snapshot,
    stage,
    totals,
)

__all__ = [
    "ATOM_SCORING",
    "LIST_ALGEBRA",
    "TOP_K",
    "QUERY_LATENCY",
    "VIDEO_LATENCY",
    "StageTotal",
    "HistogramSummary",
    "add",
    "disable",
    "drain",
    "enable",
    "histograms",
    "is_enabled",
    "observe",
    "reset",
    "snapshot",
    "stage",
    "totals",
    "stage_report_text",
    "latency_report_text",
]


def stage_report_text(title: str = "Per-stage timing") -> str:
    """The accumulated stage totals as an aligned text table."""
    stage_totals = totals()
    rows = [
        (name, f"{total.seconds:.4f}", total.calls)
        for name, total in sorted(stage_totals.items())
    ]
    if not rows:
        rows = [("(no stages recorded)", "-", "-")]
    table = format_table(("Stage", "Seconds", "Calls"), rows)
    return f"{title}\n{table}"


def latency_report_text(title: str = "Latency percentiles (ms)") -> str:
    """The latency histograms as an aligned text table, or "" when none
    have been recorded (histograms collect only while enabled)."""
    summaries = histograms()
    if not summaries:
        return ""
    rows = [
        (
            name,
            summary.count,
            f"{summary.p50 * 1000:.3f}",
            f"{summary.p95 * 1000:.3f}",
            f"{summary.p99 * 1000:.3f}",
            f"{summary.maximum * 1000:.3f}",
        )
        for name, summary in sorted(summaries.items())
    ]
    table = format_table(("Histogram", "Count", "p50", "p95", "p99", "Max"), rows)
    return f"{title}\n{table}"
