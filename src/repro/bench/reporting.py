"""Paper-style report rendering for experiment outputs.

The paper presents similarity tables as ``Start-id / End-id /
Similarity-value`` rows (Tables 1–4) and performance results as ``Size /
Direct Approach / SQL-based`` rows (Tables 5–6); these helpers print the
same shapes so a run of the benchmark harness can be eyeballed against
the paper.
"""

from __future__ import annotations

import json
import os
from typing import (
    TYPE_CHECKING,
    Any,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.simlist import SimilarityList
from repro.core.topk import ranked_entries

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.trace import Span


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Plain aligned ASCII table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[position]) for position, cell in enumerate(cells)
        ).rstrip()

    separator = "  ".join("-" * width for width in widths)
    body = [line(headers), separator]
    body.extend(line(row) for row in materialised)
    return "\n".join(body)


def write_report_json(
    path: Union[str, "os.PathLike[str]"], payload: Any
) -> None:
    """Write a ``BENCH_*.json`` report atomically.

    Benchmarks accumulate into their report file across tests; a crash
    (or a CI timeout) mid-write must never leave a truncated JSON file
    that poisons the next merge-and-rewrite.  Goes through the store's
    temp + rename primitive; reports skip the fsync — they are
    regenerable, the atomicity is what matters.
    """
    from repro.store.atomic import atomic_write_bytes

    data = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode(
        "utf-8"
    )
    atomic_write_bytes(path, data, fsync=False)


def metrics_payload() -> dict:
    """The metrics registry as a JSON-safe dict (for ``BENCH_*.json``).

    One coherent snapshot: per-stage totals, event counters, and latency
    histogram summaries with p50/p95/p99 (DESIGN.md §10).
    """
    from repro.core import instrument

    snapshot = instrument.snapshot()
    return {
        "stages": {
            name: {"seconds": total.seconds, "calls": total.calls}
            for name, total in snapshot["stages"].items()
        },
        "counters": dict(snapshot["counters"]),
        "histograms": {
            name: {
                "count": summary.count,
                "total": summary.total,
                "mean": summary.mean,
                "min": summary.minimum,
                "max": summary.maximum,
                "p50": summary.p50,
                "p95": summary.p95,
                "p99": summary.p99,
            }
            for name, summary in snapshot["histograms"].items()
        },
    }


def trace_payload(root: "Span") -> dict:
    """One span tree as a JSON-safe dict, with its per-stage rollup."""
    return {
        "spans": root.to_dict(),
        "stage_breakdown": {
            name: {"seconds": total.seconds, "calls": total.calls}
            for name, total in root.stage_totals().items()
        },
    }


def observability_payload(root: Optional["Span"] = None) -> dict:
    """The full observability export: registry metrics + optional trace."""
    payload = {"metrics": metrics_payload()}
    if root is not None:
        payload["trace"] = trace_payload(root)
    return payload


def similarity_table_text(
    sim: SimilarityList, title: str = "", ranked: bool = False
) -> str:
    """A similarity list in the paper's table layout.

    ``ranked=True`` orders rows by descending similarity (the Table 4
    presentation); otherwise rows appear in id order (Tables 1–3).
    """
    if ranked:
        triples = ranked_entries(sim)
    else:
        triples = [(entry.begin, entry.end, entry.actual) for entry in sim]
    rows = [
        (begin, end, f"{actual:.3f}".rstrip("0").rstrip("."))
        for begin, end, actual in triples
    ]
    table = format_table(("Start-id", "End-id", "Similarity-value"), rows)
    if title:
        return f"{title}\n{table}"
    return table


def perf_table_text(
    title: str,
    rows: Sequence[Tuple[int, float, float]],
    direct_label: str = "Direct Approach",
    sql_label: str = "SQL-based",
) -> str:
    """A Table 5/6-style performance table (seconds)."""
    formatted = [
        (size, f"{direct_time:.4f}", f"{sql_time:.4f}")
        for size, direct_time, sql_time in rows
    ]
    table = format_table(("Size", direct_label, sql_label), formatted)
    return f"{title}\n{table}"
