"""Experiment harness: run one query on both systems and time it.

Mirrors the paper's §4.2 measurement: the inputs are the similarity tables
of the atomic predicates; the direct time covers sorting plus the list
algorithms, the SQL time covers translation plus execution of the
generated statement sequence ("the time required is the time for
executing the sequence of SQL queries").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.engine import EngineConfig, RetrievalEngine
from repro.core.simlist import SimilarityList
from repro.htl import ast, parse
from repro.sqlbaseline.system import SQLRetrievalSystem


@dataclass
class Measurement:
    """One timed evaluation."""

    seconds: float
    result: SimilarityList


@dataclass
class ComparisonRow:
    """One row of a Table 5/6-style comparison."""

    size: int
    direct_seconds: float
    sql_seconds: float
    results_equal: bool

    @property
    def speedup(self) -> float:
        if self.direct_seconds == 0:
            return float("inf")
        return self.sql_seconds / self.direct_seconds


def time_call(
    fn: Callable[[], SimilarityList], repeat: int = 3
) -> Measurement:
    """Best-of-``repeat`` wall-clock timing."""
    best: Optional[float] = None
    result: Optional[SimilarityList] = None
    for __ in range(max(repeat, 1)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    assert result is not None and best is not None
    return Measurement(best, result)


def run_direct(
    formula: ast.Formula,
    lists: Dict[str, SimilarityList],
    repeat: int = 3,
    config: Optional[EngineConfig] = None,
) -> Measurement:
    """Time the direct (list-algorithm) system on precomputed atom lists."""
    engine = RetrievalEngine(config)
    return time_call(lambda: engine.combine_lists(formula, lists), repeat)


def run_sql(
    formula: ast.Formula,
    lists: Dict[str, SimilarityList],
    n_segments: int,
    repeat: int = 1,
) -> Measurement:
    """Time the SQL-based system (loading excluded, per the paper)."""
    system = SQLRetrievalSystem()
    system.load_segments(n_segments)
    for name, sim in lists.items():
        system.load_atomic(name, sim)
    return time_call(lambda: system.evaluate(formula), repeat)


def compare_systems(
    formula_text: str,
    lists: Dict[str, SimilarityList],
    n_segments: int,
    direct_repeat: int = 3,
    sql_repeat: int = 1,
) -> ComparisonRow:
    """Run both systems on one workload and cross-check the results."""
    formula = parse(formula_text)
    direct = run_direct(formula, lists, repeat=direct_repeat)
    sql = run_sql(formula, lists, n_segments, repeat=sql_repeat)
    return ComparisonRow(
        size=n_segments,
        direct_seconds=direct.seconds,
        sql_seconds=sql.seconds,
        results_equal=direct.result == sql.result,
    )
