"""Benchmark harness, per-stage timers and paper-style reporting."""

from repro.bench import stages
from repro.bench.harness import (
    ComparisonRow,
    Measurement,
    compare_systems,
    run_direct,
    run_sql,
    time_call,
)
from repro.bench.reporting import (
    format_table,
    perf_table_text,
    similarity_table_text,
)

__all__ = [
    "Measurement",
    "ComparisonRow",
    "time_call",
    "run_direct",
    "run_sql",
    "compare_systems",
    "format_table",
    "similarity_table_text",
    "perf_table_text",
    "stages",
]
