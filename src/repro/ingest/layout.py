"""On-disk layout of one ingest directory (DESIGN.md §15).

Everything the crash-safe ingest path persists lives under a single
root::

    <root>/
      base/             # a repro.store.Store: the seed snapshot corpus
      wal.log           # framed, CRC-checksummed append-only records
      wal.commit.json   # the WAL's strict commit point (atomic replace)
      deltas/           # delta-NNNNNN.json checkpoint artifacts
      DELTAS.json       # the checkpoint commit point: ordered delta chain
      quarantine/       # damaged bytes are moved here, never deleted

The layout object is pure path arithmetic — construction creates
nothing; each writer creates the directories it needs.
"""

from __future__ import annotations

import os
from typing import Union

PathLike = Union[str, "os.PathLike[str]"]

WAL_LOG_NAME = "wal.log"
WAL_COMMIT_NAME = "wal.commit.json"
DELTAS_DIR_NAME = "deltas"
DELTAS_MANIFEST_NAME = "DELTAS.json"
BASE_DIR_NAME = "base"
QUARANTINE_DIR_NAME = "quarantine"


class IngestLayout:
    """Path arithmetic for one ingest root."""

    __slots__ = ("root",)

    def __init__(self, root: PathLike):
        self.root = os.fspath(root)

    @property
    def base_dir(self) -> str:
        return os.path.join(self.root, BASE_DIR_NAME)

    @property
    def wal_log_path(self) -> str:
        return os.path.join(self.root, WAL_LOG_NAME)

    @property
    def wal_commit_path(self) -> str:
        return os.path.join(self.root, WAL_COMMIT_NAME)

    @property
    def deltas_dir(self) -> str:
        return os.path.join(self.root, DELTAS_DIR_NAME)

    @property
    def deltas_manifest_path(self) -> str:
        return os.path.join(self.root, DELTAS_MANIFEST_NAME)

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR_NAME)

    def quarantine_path(self, name: str) -> str:
        """A fresh path under quarantine/ (suffixed if already taken)."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        candidate = os.path.join(self.quarantine_dir, name)
        attempt = 0
        while os.path.exists(candidate):
            attempt += 1
            candidate = os.path.join(
                self.quarantine_dir, f"{name}.{attempt}"
            )
        return candidate

    def __repr__(self) -> str:
        return f"IngestLayout({self.root!r})"
