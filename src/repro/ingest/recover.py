"""Crash recovery: base snapshot + delta chain + committed WAL replay.

The recovery invariant (DESIGN.md §15): after a crash at *any* instant,
recovery reconstructs **exactly the committed prefix** — every operation
whose WAL record was committed (or already folded into a committed
delta) is present; every operation past the commit point is absent; and
queries against the recovered state rank identically to a database
rebuilt from scratch by re-applying those same operations.

The pipeline, in order:

1. load the base snapshot (``base/`` is a :class:`repro.store.Store`,
   with its own verify/fallback machinery);
2. apply the committed delta chain in manifest order
   (:meth:`~repro.ingest.compact.Compactor.apply_deltas`), noting the
   manifest's ``wal_through`` watermark;
3. quarantine and truncate any WAL bytes past the commit marker (a torn
   tail is *expected* debris, not corruption);
4. replay committed WAL records, skipping sequences at or below the
   watermark (already folded into a delta — this makes replay
   idempotent), applying the rest through the same
   :func:`repro.ingest.ops.apply` path the live ingester uses.

Recovery never deletes bytes: tails and damaged records move to
``quarantine/``.  Damage *inside* the committed prefix — a CRC failure,
a record that will not decode or apply — is unrecoverable-by-truncation
and surfaces as a typed error naming the quarantined bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import IngestError, WALCorruptionError
from repro.ingest import ops
from repro.ingest.compact import Compactor
from repro.ingest.layout import IngestLayout, PathLike
from repro.ingest.wal import WriteAheadLog
from repro.model.database import VideoDatabase
from repro.store import Store


@dataclass
class RecoveredState:
    """Everything recovery reconstructed, plus its provenance."""

    database: VideoDatabase
    wal: WriteAheadLog
    snapshot_id: str
    verified: bool
    #: highest WAL sequence already folded into a committed delta
    wal_through: int = 0
    #: committed deltas applied, in manifest order
    deltas: Tuple[str, ...] = ()
    #: WAL records applied live (sequence above the watermark)
    replayed: int = 0
    #: committed records skipped as already folded into a delta
    skipped: int = 0
    #: videos whose WAL records are not yet in any delta — the next
    #: checkpoint must cover exactly these
    dirty: Tuple[str, ...] = ()
    #: quarantine paths recovery created (torn tail, if any)
    quarantined: Tuple[str, ...] = ()
    #: human-readable recovery narration
    actions: List[str] = field(default_factory=list)


def recover(
    root: PathLike,
    verify: bool = True,
    fsync: bool = True,
    keep: int = 2,
) -> RecoveredState:
    """Reconstruct the committed state of one ingest directory.

    Idempotent: its only disk mutation (tail quarantine + truncate) is
    a no-op on re-run, so a crash *during* recovery loses nothing —
    running it again converges to the same state.  The returned
    :class:`RecoveredState` carries an open WAL positioned for appends.
    """
    layout = IngestLayout(root)
    actions: List[str] = []

    loaded = Store(layout.base_dir, keep=keep, fsync=fsync).load(
        verify=verify
    )
    database = loaded.database
    if loaded.actions:
        actions.extend(
            f"base: {action.kind} {action.artifact}"
            for action in loaded.actions
        )
    actions.append(
        f"loaded base {loaded.snapshot_id}: {len(database)} video(s)"
    )

    compactor = Compactor(layout, fsync=fsync)
    delta_load = compactor.apply_deltas(database, verify=verify)
    if delta_load.applied:
        actions.append(
            f"applied {len(delta_load.applied)} delta(s) covering "
            f"{len(delta_load.videos)} video(s), wal_through "
            f"{delta_load.wal_through}"
        )

    wal = WriteAheadLog(root, fsync=fsync)
    quarantined: List[str] = []
    try:
        tail = wal.truncate_tail()
        if tail is not None:
            quarantined.append(tail)
            actions.append(f"quarantined torn WAL tail to {tail}")

        replayed = 0
        skipped = 0
        dirty: List[str] = []
        for sequence, op_document in wal.committed():
            if sequence <= delta_load.wal_through:
                skipped += 1
                continue
            op = ops.decode_op(op_document)
            try:
                name = ops.apply(op, database)
            except IngestError as error:
                # A committed record that validates against replayed
                # state but fails here means the log and the state
                # disagree — surface it as corruption, don't guess.
                raise WALCorruptionError(
                    f"committed WAL record {sequence} does not apply: "
                    f"{error}",
                    path=layout.wal_log_path,
                    record=sequence,
                ) from error
            replayed += 1
            if name not in dirty:
                dirty.append(name)
        if replayed or skipped:
            actions.append(
                f"replayed {replayed} WAL record(s), skipped {skipped} "
                "already folded into deltas"
            )
    except BaseException:
        wal.close()
        raise

    return RecoveredState(
        database=database,
        wal=wal,
        snapshot_id=loaded.snapshot_id,
        verified=loaded.verified,
        wal_through=delta_load.wal_through,
        deltas=tuple(delta_load.applied),
        replayed=replayed,
        skipped=skipped,
        dirty=tuple(dirty),
        quarantined=tuple(quarantined),
        actions=actions,
    )
