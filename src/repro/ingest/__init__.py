"""Crash-safe streaming ingestion (DESIGN.md §15).

The append-oriented mutation path of the corpus: a write-ahead log with
a strict commit point (:mod:`repro.ingest.wal`), typed operations whose
apply path is shared between live ingest and recovery
(:mod:`repro.ingest.ops`), replay that reconstructs exactly the
committed prefix (:mod:`repro.ingest.recover`), and log compaction into
checkpoint deltas (:mod:`repro.ingest.compact`).  The front door is
:class:`~repro.ingest.ingester.Ingester` / :func:`initialise`.
"""

from repro.ingest.compact import CheckpointInfo, Compactor, read_manifest
from repro.ingest.ingester import Ingester, initialise
from repro.ingest.layout import IngestLayout
from repro.ingest.ops import (
    AddAnnotations,
    AddVideo,
    AppendSegments,
    IngestOp,
    apply,
    decode_op,
    encode_op,
    validate,
)
from repro.ingest.recover import RecoveredState, recover
from repro.ingest.wal import WriteAheadLog, decode_record, encode_record

__all__ = [
    "AddAnnotations",
    "AddVideo",
    "AppendSegments",
    "CheckpointInfo",
    "Compactor",
    "IngestLayout",
    "IngestOp",
    "Ingester",
    "RecoveredState",
    "WriteAheadLog",
    "apply",
    "decode_op",
    "decode_record",
    "encode_op",
    "encode_record",
    "initialise",
    "read_manifest",
    "recover",
    "validate",
]
