"""Log compaction: folding the committed WAL into checkpoint deltas.

Replaying a long WAL from the base snapshot is linear in everything that
ever happened; checkpoints bound it.  A checkpoint writes a *delta*
artifact — the full current documents (video hierarchy plus its complete
annotation set) of every video mutated since the previous checkpoint —
and then atomically replaces the delta manifest ``DELTAS.json``, which
is the **single commit point**.  After the manifest lands, the WAL is
reset (marker first, then truncate; see
:meth:`~repro.ingest.wal.WriteAheadLog.reset`).

The base snapshot (a :class:`repro.store.Store` under ``base/``) is
written once when the ingest directory is initialised and never
rewritten: rewriting it at checkpoint time would create a second commit
point, and a crash between "new base" and "new manifest" would leave the
two telling different stories.  Instead a *full* checkpoint
(``full=True``) writes one **merged** delta covering the union of every
video any prior delta touched, and the new manifest references only it —
superseded delta files stay on disk unreferenced (recovery ignores them;
they are litter, not state).

Each manifest entry records the delta's digest and its ``wal_through``
watermark: the highest WAL sequence folded into it.  Recovery replays
only records *above* the manifest's watermark, which is what makes
replay idempotent across repeated crashes during recovery itself.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import instrument, resilience
from repro.errors import IngestError
from repro.ingest.layout import IngestLayout
from repro.model.database import VideoDatabase
from repro.model.serialize import (
    simlist_from_dict,
    simlist_to_dict,
    video_from_dict,
    video_to_dict,
)
from repro.store.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_json_bytes,
    sha256_hex,
)

MANIFEST_FORMAT = 1
DELTA_FORMAT = 1
_DELTA_NAME = re.compile(r"^delta-(\d{6})\.json$")


def _delta_name(sequence: int) -> str:
    return f"delta-{sequence:06d}.json"


@dataclass
class CheckpointInfo:
    """What one checkpoint committed."""

    delta: str
    path: str
    videos: Tuple[str, ...]
    wal_through: int
    full: bool
    superseded: Tuple[str, ...] = ()


@dataclass
class DeltaLoad:
    """The outcome of applying the committed delta chain."""

    applied: List[str] = field(default_factory=list)
    videos: List[str] = field(default_factory=list)
    wal_through: int = 0


def read_manifest(layout: IngestLayout) -> Dict[str, Any]:
    """The delta manifest, or its empty shape when none committed yet."""
    path = layout.deltas_manifest_path
    if not os.path.exists(path):
        return {
            "format": MANIFEST_FORMAT,
            "order": [],
            "entries": {},
            "wal_through": 0,
        }
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        if document.get("format") != MANIFEST_FORMAT:
            raise IngestError(
                f"delta manifest carries format "
                f"{document.get('format')!r}; this build reads "
                f"version {MANIFEST_FORMAT}",
                path=path,
            )
        order = document.get("order")
        entries = document.get("entries")
        if not isinstance(order, list) or not isinstance(entries, dict):
            raise IngestError(
                "delta manifest must carry 'order' and 'entries'",
                path=path,
            )
        for name in order:
            if name not in entries:
                raise IngestError(
                    f"delta manifest orders {name!r} but has no entry "
                    "for it",
                    path=path,
                )
        document["wal_through"] = int(document.get("wal_through", 0))
        return document
    except IngestError:
        raise
    except Exception as error:
        raise IngestError(
            f"delta manifest {path!r} unreadable: {error!r}", path=path
        ) from error


class Compactor:
    """Writes checkpoint deltas and maintains the delta manifest."""

    def __init__(self, layout: IngestLayout, fsync: bool = True):
        self.layout = layout
        self.fsync = fsync

    # -- write side -------------------------------------------------------
    def _next_delta_sequence(self, manifest: Dict[str, Any]) -> int:
        highest = 0
        for name in manifest.get("entries", {}):
            match = _DELTA_NAME.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        try:
            on_disk = os.listdir(self.layout.deltas_dir)
        except OSError:
            on_disk = []
        for name in on_disk:
            match = _DELTA_NAME.match(name)
            if match:
                highest = max(highest, int(match.group(1)))
        return highest + 1

    def checkpoint(
        self,
        database: VideoDatabase,
        dirty: Sequence[str],
        wal_through: int,
        full: bool = False,
    ) -> Optional[CheckpointInfo]:
        """Fold the given videos' current state into a committed delta.

        ``dirty`` names the videos mutated since the last checkpoint
        (every replayed-or-ingested WAL record up to ``wal_through``
        touched one of them).  ``full=True`` additionally folds every
        video covered by prior deltas into one merged artifact and
        drops the chain to length one.

        Returns ``None`` when there is nothing to do.  The artifact
        write happens entirely before the commit point — a crash before
        the manifest replace leaves an unreferenced delta file and an
        unchanged committed state.
        """
        manifest = read_manifest(layout=self.layout)
        covered: List[str] = []
        if full:
            for name in manifest["order"]:
                for video in manifest["entries"][name].get("videos", []):
                    if video not in covered:
                        covered.append(video)
        for video in dirty:
            if video not in covered:
                covered.append(video)
        if not covered:
            return None
        missing = [name for name in covered if name not in database]
        if missing:
            raise IngestError(
                f"cannot checkpoint videos absent from the database: "
                f"{missing!r}"
            )
        # Keep database insertion order for determinism.
        ordered = [v.name for v in database.videos() if v.name in set(covered)]
        payload = {
            "format": DELTA_FORMAT,
            "wal_through": wal_through,
            "videos": [
                video_to_dict(database.get(name)) for name in ordered
            ],
            "atomics": [
                {
                    "predicate": predicate,
                    "video": name,
                    "level": level,
                    "list": simlist_to_dict(sim),
                }
                for name in ordered
                for predicate, level, sim in sorted(
                    database.video_atomics(name),
                    key=lambda item: (item[0], item[1]),
                )
            ],
        }
        os.makedirs(self.layout.deltas_dir, exist_ok=True)
        sequence = self._next_delta_sequence(manifest)
        name = _delta_name(sequence)
        path = os.path.join(self.layout.deltas_dir, name)
        digest, size = atomic_write_bytes(
            path, canonical_json_bytes(payload), fsync=self.fsync
        )
        entry = {
            "sha256": digest,
            "bytes": size,
            "wal_through": wal_through,
            "videos": ordered,
        }
        if full:
            superseded = tuple(manifest["order"])
            order = [name]
            entries = {name: entry}
        else:
            superseded = ()
            order = list(manifest["order"]) + [name]
            entries = dict(manifest["entries"])
            entries[name] = entry
        new_manifest = {
            "format": MANIFEST_FORMAT,
            "order": order,
            "entries": entries,
            "wal_through": max(wal_through, manifest["wal_through"]),
        }
        # THE commit point: everything before this is invisible to
        # recovery; everything after assumes the manifest landed.
        resilience.fault(resilience.SITE_COMPACT_COMMIT)
        atomic_write_json(
            self.layout.deltas_manifest_path, new_manifest, fsync=self.fsync
        )
        instrument.count(instrument.INGEST_CHECKPOINT)
        return CheckpointInfo(
            delta=name,
            path=path,
            videos=tuple(ordered),
            wal_through=wal_through,
            full=full,
            superseded=superseded,
        )

    # -- read side ----------------------------------------------------------
    def _read_delta(
        self, name: str, entry: Dict[str, Any], verify: bool
    ) -> Dict[str, Any]:
        path = os.path.join(self.layout.deltas_dir, name)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as error:
            raise IngestError(
                f"committed delta {name!r} unreadable: {error!r}",
                path=path,
            ) from error
        if verify and (
            len(data) != entry.get("bytes")
            or sha256_hex(data) != entry.get("sha256")
        ):
            # Preserve the damaged bytes (never delete) and refuse:
            # a delta the manifest commits to is load-bearing state.
            destination = self.layout.quarantine_path(name)
            shutil.copyfile(path, destination)
            raise IngestError(
                f"committed delta {name!r} fails its digest; bytes "
                f"preserved at {destination!r}",
                path=path,
            )
        try:
            document = json.loads(data.decode("utf-8"))
        except Exception as error:
            raise IngestError(
                f"committed delta {name!r} is not JSON: {error!r}",
                path=path,
            ) from error
        if document.get("format") != DELTA_FORMAT:
            raise IngestError(
                f"delta {name!r} carries format "
                f"{document.get('format')!r}; this build reads "
                f"version {DELTA_FORMAT}",
                path=path,
            )
        return document

    def apply_deltas(
        self, database: VideoDatabase, verify: bool = True
    ) -> DeltaLoad:
        """Apply the committed delta chain, in manifest order.

        A delta's video document *replaces* the copy already loaded
        (from the base snapshot or an earlier delta), and its annotation
        set replaces the video's registered atomics wholesale.
        """
        manifest = read_manifest(self.layout)
        load = DeltaLoad(wal_through=manifest["wal_through"])
        for name in manifest["order"]:
            document = self._read_delta(
                name, manifest["entries"][name], verify
            )
            try:
                for video_document in document.get("videos", []):
                    video = video_from_dict(video_document)
                    if video.name in database:
                        database.replace(video)
                    else:
                        database.add(video)
                    database.drop_video_atomics(video.name)
                    if video.name not in load.videos:
                        load.videos.append(video.name)
                for atomic in document.get("atomics", []):
                    database.register_atomic(
                        str(atomic["predicate"]),
                        str(atomic["video"]),
                        simlist_from_dict(atomic["list"]),
                        level=int(atomic.get("level", 2)),
                    )
            except IngestError:
                raise
            except Exception as error:
                raise IngestError(
                    f"committed delta {name!r} does not apply: "
                    f"{error!r}",
                    path=os.path.join(self.layout.deltas_dir, name),
                ) from error
            load.applied.append(name)
        return load

    def orphans(self) -> List[str]:
        """Delta files on disk the manifest no longer references.

        Crash litter (artifact written, commit never reached) and
        superseded pre-compaction deltas land here; they are inert and
        reported for observability, never deleted automatically.
        """
        manifest = read_manifest(self.layout)
        referenced = set(manifest["entries"])
        try:
            on_disk = sorted(os.listdir(self.layout.deltas_dir))
        except OSError:
            return []
        return [
            name
            for name in on_disk
            if _DELTA_NAME.match(name) and name not in referenced
        ]
