"""The live ingest front door: WAL-first appends over a recovered state.

Every mutation follows the same discipline:

1. **validate** against the current in-memory state (a poison operation
   must never reach the log — replay has to apply whatever the log
   holds);
2. **append** the record to the WAL (visible, not yet durable);
3. **apply** through the exact code path recovery replays
   (:func:`repro.ingest.ops.apply`), which keeps indexes incremental
   and stamps the video's cache generation.

:meth:`commit` is the durability boundary — records batch in the OS
buffer until one fsync covers them all (the paper-era "group commit").
:meth:`checkpoint` folds everything committed so far into a delta
(:class:`~repro.ingest.compact.Compactor`) and resets the WAL.

Listeners (e.g. a serving pool's ``refresh``) fire after each commit
with the names of the videos that batch touched — commit is when the
data is both visible *and* durable, so it is the earliest point a
serving tier should re-warm against.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.simlist import SimilarityList
from repro.errors import IngestError
from repro.ingest import ops
from repro.ingest.compact import CheckpointInfo, Compactor
from repro.ingest.layout import IngestLayout, PathLike
from repro.ingest.recover import RecoveredState, recover
from repro.model.database import VideoDatabase
from repro.model.metadata import SegmentMetadata
from repro.store import Store

Listener = Callable[[Tuple[str, ...]], None]


def initialise(
    root: PathLike,
    database: Optional[VideoDatabase] = None,
    fsync: bool = True,
    keep: int = 2,
) -> "Ingester":
    """Create a fresh ingest directory seeded with ``database``.

    Writes the base snapshot exactly once — checkpoints never rewrite
    it (see :mod:`repro.ingest.compact` for why).  Refuses a root that
    already holds an ingest directory.
    """
    layout = IngestLayout(root)
    if os.path.exists(layout.wal_commit_path) or os.path.exists(
        layout.base_dir
    ):
        raise IngestError(
            f"{layout.root!r} already holds an ingest directory; "
            "open it with Ingester() instead",
            path=layout.root,
        )
    os.makedirs(layout.root, exist_ok=True)
    Store(layout.base_dir, keep=keep, fsync=fsync).save(
        database if database is not None else VideoDatabase()
    )
    return Ingester(root, fsync=fsync, keep=keep)


class Ingester:
    """Crash-safe streaming mutations over one ingest directory.

    Opening an ingester *is* recovery: the constructor replays the
    committed state (base + deltas + WAL) and resumes from it, so the
    code path a crash exercises is the code path every clean start
    exercises too.
    """

    def __init__(
        self,
        root: PathLike,
        fsync: bool = True,
        keep: int = 2,
        verify: bool = True,
        auto_commit: Optional[int] = None,
    ):
        if auto_commit is not None and auto_commit < 1:
            raise IngestError(
                f"auto_commit must be a positive batch size, got "
                f"{auto_commit!r}"
            )
        self.layout = IngestLayout(root)
        self.fsync = fsync
        self.auto_commit = auto_commit
        self.recovered: RecoveredState = recover(
            root, verify=verify, fsync=fsync, keep=keep
        )
        self.database: VideoDatabase = self.recovered.database
        self._wal = self.recovered.wal
        self._compactor = Compactor(self.layout, fsync=fsync)
        # Videos with committed-but-not-checkpointed WAL records; the
        # next checkpoint must fold exactly these.
        self._dirty: List[str] = list(self.recovered.dirty)
        # Videos touched since the last commit (listener payload).
        self._uncommitted: List[str] = []
        self._listeners: List[Listener] = []
        self._closed = False

    # -- introspection ---------------------------------------------------
    @property
    def dirty(self) -> Tuple[str, ...]:
        """Videos the next checkpoint will fold into a delta."""
        return tuple(self._dirty)

    @property
    def pending(self) -> int:
        """Appended records not yet covered by a commit."""
        return self._wal.uncommitted_records

    @property
    def last_sequence(self) -> int:
        """Sequence of the newest appended record (0 when none)."""
        return self._wal.next_sequence - 1

    def add_listener(self, listener: Listener) -> None:
        """Call ``listener(video_names)`` after each successful commit."""
        self._listeners.append(listener)

    # -- mutations ------------------------------------------------------
    def submit(self, op: ops.IngestOp) -> int:
        """Log then apply one operation; returns its WAL sequence."""
        self._guard()
        ops.validate(op, self.database)
        sequence = self._wal.append(op)
        name = ops.apply(op, self.database)
        if name not in self._dirty:
            self._dirty.append(name)
        if name not in self._uncommitted:
            self._uncommitted.append(name)
        if (
            self.auto_commit is not None
            and self._wal.uncommitted_records >= self.auto_commit
        ):
            self.commit()
        return sequence

    def add_video(
        self,
        name: str,
        segments: Iterable[SegmentMetadata] = (),
        child_level_name: str = "shot",
    ) -> int:
        return self.submit(
            ops.AddVideo(
                name=name,
                segments=tuple(segments),
                child_level_name=child_level_name,
            )
        )

    def append_segments(
        self, video: str, segments: Iterable[SegmentMetadata]
    ) -> int:
        return self.submit(
            ops.AppendSegments(video=video, segments=tuple(segments))
        )

    def add_annotations(
        self,
        video: str,
        predicate: str,
        sim: SimilarityList,
        level: int = 2,
    ) -> int:
        return self.submit(
            ops.AddAnnotations(
                video=video, predicate=predicate, sim=sim, level=level
            )
        )

    # -- durability ----------------------------------------------------
    def commit(self) -> Tuple[str, ...]:
        """Make every appended record durable; returns the videos the
        batch touched (also handed to listeners)."""
        self._guard()
        self._wal.commit()
        batch = tuple(self._uncommitted)
        self._uncommitted = []
        if batch:
            for listener in self._listeners:
                listener(batch)
        return batch

    def checkpoint(self, full: bool = False) -> Optional[CheckpointInfo]:
        """Fold the committed WAL into a delta and reset the log.

        Commits first (a checkpoint must never fold records the WAL has
        not made durable).  ``full=True`` merges the whole delta chain
        into one artifact.  Returns ``None`` when nothing needed doing.
        """
        self._guard()
        self.commit()
        info = self._compactor.checkpoint(
            self.database,
            dirty=self._dirty,
            wal_through=self._wal.last_committed_sequence,
            full=full,
        )
        if info is None:
            return None
        # Only after the manifest committed is it safe to drop the log.
        self._wal.reset()
        self._dirty = []
        return info

    def close(self) -> None:
        """Commit any pending records and release the log handle."""
        if self._closed:
            return
        if self._wal.uncommitted_records:
            self.commit()
        self._wal.close()
        self._closed = True

    def __enter__(self) -> "Ingester":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # On an exception path the WAL may be poisoned; don't let a
        # doomed commit mask the original error.
        if exc_type is None:
            self.close()
        else:
            self._wal.close()
            self._closed = True

    def _guard(self) -> None:
        if self._closed:
            raise IngestError("this ingester is closed")
