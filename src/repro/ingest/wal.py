"""The write-ahead log: framed, checksummed, fsync-batched appends.

Record framing (all integers big-endian)::

    +-------+----------+---------+----------------------+
    | magic | length   | crc32   | payload              |
    | 2 B   | 4 B      | 4 B     | <length> bytes       |
    +-------+----------+---------+----------------------+

The payload is the canonical JSON of ``{"sequence": n, "op": <op doc>}``
(:func:`repro.ingest.ops.encode_op`); sequences are globally monotonic
over the ingest directory's lifetime and survive WAL truncation at
checkpoints.  The CRC covers the payload; the length field is implicitly
validated by the CRC (a corrupted length yields a CRC mismatch or runs
past the committed region, both detected).

**The commit point is the sidecar marker**, not the log file: appends go
to ``wal.log`` with a flush (visible, not durable); :meth:`commit`
fsyncs the log and then atomically replaces ``wal.commit.json`` naming
the committed byte offset, record count and next sequence.  Bytes past
the marker's offset are by definition a torn tail — recovery quarantines
and truncates them without ceremony.  Damage *inside* the committed
prefix is real corruption and surfaces as the typed
:class:`~repro.errors.WALCorruptionError` (the damaged bytes are
quarantined first, never deleted).

Fault sites: :data:`~repro.core.resilience.SITE_WAL_APPEND` fires before
each record write (``short_write`` mode leaves a genuinely torn record),
:data:`~repro.core.resilience.SITE_WAL_FSYNC` before the commit fsync,
and :data:`~repro.core.resilience.SITE_WAL_REPLAY` on every committed
record read (``corrupt`` mode models rot in committed bytes).

A WAL whose append or commit raised mid-write is *poisoned*: the bytes
on "disk" no longer match the writer's bookkeeping, so every further
mutation raises until the directory goes through recovery — exactly
what a crashed process would be forced into.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.core import instrument, resilience
from repro.errors import IngestError, InjectedFaultError, WALCorruptionError
from repro.ingest.layout import IngestLayout, PathLike
from repro.ingest.ops import IngestOp, encode_op
from repro.store.atomic import atomic_write_json, canonical_json_bytes

MAGIC = b"WL"
_HEADER = struct.Struct(">2sII")
HEADER_SIZE = _HEADER.size  # 10 bytes
FORMAT_VERSION = 1


def encode_record(sequence: int, op: IngestOp) -> bytes:
    """One framed record: header + canonical-JSON payload."""
    payload = canonical_json_bytes({"sequence": sequence, "op": encode_op(op)})
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def decode_record(frame: bytes) -> Tuple[int, Dict[str, Any]]:
    """Parse one full frame back to ``(sequence, op document)``.

    Raises :class:`~repro.errors.WALCorruptionError` on any framing or
    checksum violation — a flipped bit anywhere in the frame fails
    either the magic, the length bound, or the CRC.
    """
    import json

    if len(frame) < HEADER_SIZE:
        raise WALCorruptionError(
            f"record frame of {len(frame)} bytes is shorter than the "
            f"{HEADER_SIZE}-byte header"
        )
    magic, length, crc = _HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise WALCorruptionError(f"bad record magic {magic!r}")
    payload = frame[HEADER_SIZE : HEADER_SIZE + length]
    if len(payload) != length or len(frame) != HEADER_SIZE + length:
        raise WALCorruptionError(
            f"record frame carries {len(frame) - HEADER_SIZE} payload "
            f"bytes, header promises {length}"
        )
    if zlib.crc32(payload) != crc:
        raise WALCorruptionError("record payload fails its CRC")
    try:
        document = json.loads(payload.decode("utf-8"))
        return int(document["sequence"]), document["op"]
    except WALCorruptionError:
        raise
    except Exception as error:
        raise WALCorruptionError(
            f"record payload is not a WAL document: {error!r}"
        ) from error


class WriteAheadLog:
    """One directory's append-only ingest log plus its commit marker."""

    def __init__(self, root: PathLike, fsync: bool = True):
        self.layout = IngestLayout(root)
        os.makedirs(self.layout.root, exist_ok=True)
        self.fsync = fsync
        self._handle = None
        self._poisoned = False
        marker = self._read_marker()
        self.committed_offset: int = marker["offset"]
        self.committed_records: int = marker["records"]
        self.next_sequence: int = marker["next_sequence"]
        self._end_offset = self._log_size()
        self._pending_records = 0

    # -- marker ------------------------------------------------------------
    def _read_marker(self) -> Dict[str, int]:
        import json

        path = self.layout.wal_commit_path
        if not os.path.exists(path):
            return {"offset": 0, "records": 0, "next_sequence": 1}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            return {
                "offset": int(document["offset"]),
                "records": int(document["records"]),
                "next_sequence": int(document["next_sequence"]),
            }
        except Exception as error:
            raise IngestError(
                f"WAL commit marker {path!r} unreadable: {error!r}",
                path=path,
            ) from error

    def _write_marker(self) -> None:
        atomic_write_json(
            self.layout.wal_commit_path,
            {
                "format": FORMAT_VERSION,
                "offset": self.committed_offset,
                "records": self.committed_records,
                "next_sequence": self.next_sequence,
            },
            fsync=self.fsync,
        )

    def _log_size(self) -> int:
        try:
            return os.path.getsize(self.layout.wal_log_path)
        except OSError:
            return 0

    def _ensure_handle(self):
        if self._handle is None:
            self._handle = open(self.layout.wal_log_path, "ab")
        return self._handle

    def _guard(self) -> None:
        if self._poisoned:
            raise IngestError(
                "this WAL failed mid-write and must be recovered before "
                "further appends",
                path=self.layout.wal_log_path,
            )

    # -- introspection -------------------------------------------------------
    @property
    def uncommitted_records(self) -> int:
        return self._pending_records

    @property
    def last_committed_sequence(self) -> int:
        """Sequence of the newest durable record (0 when none)."""
        return self.next_sequence - self._pending_records - 1

    # -- append / commit ------------------------------------------------------
    def append(self, op: IngestOp) -> int:
        """Frame and write one record; returns its sequence.

        Appended records are *visible* (flushed) but not *durable* —
        durability is :meth:`commit`'s contract.  An injected raise
        fires before any byte lands; an injected short write flushes a
        strict prefix of the frame and then dies, leaving a real torn
        record for recovery to truncate.
        """
        self._guard()
        sequence = self.next_sequence
        frame = encode_record(sequence, op)
        try:
            resilience.fault(resilience.SITE_WAL_APPEND)
            handle = self._ensure_handle()
            cut = resilience.fault_short_write(
                resilience.SITE_WAL_APPEND, frame
            )
            if cut is not None:
                handle.write(cut)
                handle.flush()
                raise InjectedFaultError(
                    f"short write: {len(cut)} of {len(frame)} bytes at "
                    f"{resilience.SITE_WAL_APPEND!r}",
                    site=resilience.SITE_WAL_APPEND,
                )
            handle.write(frame)
            handle.flush()
        except Exception:
            self._poisoned = True
            raise
        self.next_sequence += 1
        self._pending_records += 1
        self._end_offset += len(frame)
        instrument.count(instrument.WAL_RECORD_APPENDED)
        return sequence

    def commit(self) -> None:
        """Make every appended record durable and advance the marker.

        Durability order is the crash-safety argument: the log is
        fsynced *before* the marker atomically replaces — so the marker
        never names bytes that could still be lost, and a crash between
        the two steps merely leaves durable bytes uncommitted (a tail
        recovery truncates).
        """
        self._guard()
        if self._pending_records == 0 and os.path.exists(
            self.layout.wal_commit_path
        ):
            return
        try:
            if self._handle is not None:
                self._handle.flush()
                resilience.fault(resilience.SITE_WAL_FSYNC)
                if self.fsync:
                    os.fsync(self._handle.fileno())
            self.committed_offset = self._end_offset
            self.committed_records += self._pending_records
            self._write_marker()
        except Exception:
            self._poisoned = True
            raise
        self._pending_records = 0
        instrument.count(instrument.WAL_COMMITTED)

    def reset(self) -> None:
        """Empty the log after a checkpoint folded its committed prefix.

        Marker first, then truncate: a crash between the two leaves log
        bytes beyond committed offset 0, which recovery treats as a torn
        tail and quarantines — those records are already folded into the
        checkpoint, so no committed state is lost either way.
        """
        self._guard()
        if self._pending_records:
            raise IngestError(
                f"cannot reset a WAL with {self._pending_records} "
                "uncommitted records; commit first",
                path=self.layout.wal_log_path,
            )
        self.committed_offset = 0
        self.committed_records = 0
        try:
            self._write_marker()
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            with open(self.layout.wal_log_path, "wb"):
                pass
        except Exception:
            self._poisoned = True
            raise
        self._end_offset = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery-side reads ----------------------------------------------
    def truncate_tail(self) -> Optional[str]:
        """Quarantine and drop every byte past the commit point.

        Returns the quarantine path when a tail existed (``None``
        otherwise).  Idempotent: a second call finds nothing to do.  A
        log *shorter* than the committed offset means committed bytes
        vanished — that is corruption, not a tail.
        """
        size = self._log_size()
        if size < self.committed_offset:
            raise WALCorruptionError(
                f"log holds {size} bytes but {self.committed_offset} "
                "are committed; committed bytes are missing",
                path=self.layout.wal_log_path,
                offset=size,
            )
        if size == self.committed_offset:
            return None
        self.close()
        with open(self.layout.wal_log_path, "rb") as handle:
            handle.seek(self.committed_offset)
            tail = handle.read()
        destination = self.layout.quarantine_path(
            f"wal-tail-{self.committed_offset}.bin"
        )
        with open(destination, "wb") as handle:
            handle.write(tail)
        with open(self.layout.wal_log_path, "r+b") as handle:
            handle.truncate(self.committed_offset)
        self._end_offset = self.committed_offset
        instrument.count(instrument.WAL_TAIL_TRUNCATED)
        return destination

    def committed(self) -> Iterator[Tuple[int, Dict[str, Any]]]:
        """Iterate ``(sequence, op document)`` over the committed prefix.

        Every record passes the replay fault site (a raise models a
        crash mid-replay; ``corrupt`` rots the committed bytes).  Any
        framing or CRC violation inside the prefix quarantines the
        damaged region and raises
        :class:`~repro.errors.WALCorruptionError`.
        """
        if self.committed_offset == 0:
            return
        with open(self.layout.wal_log_path, "rb") as handle:
            data = handle.read(self.committed_offset)
        if len(data) < self.committed_offset:
            raise WALCorruptionError(
                f"log holds {len(data)} bytes but "
                f"{self.committed_offset} are committed",
                path=self.layout.wal_log_path,
                offset=len(data),
            )
        offset = 0
        record = 0
        while offset < len(data):
            resilience.fault(resilience.SITE_WAL_REPLAY)
            try:
                if offset + HEADER_SIZE > len(data):
                    raise WALCorruptionError(
                        "committed prefix ends inside a record header"
                    )
                header = data[offset : offset + HEADER_SIZE]
                __, length, __ = _HEADER.unpack(header)
                end = offset + HEADER_SIZE + length
                if end > len(data):
                    raise WALCorruptionError(
                        "committed prefix ends inside a record payload"
                    )
                frame = resilience.fault_value(
                    resilience.SITE_WAL_REPLAY, data[offset:end]
                )
                sequence, op_document = decode_record(bytes(frame))
            except WALCorruptionError as error:
                destination = self._quarantine_region(data, offset, record)
                instrument.count(instrument.WAL_RECORD_QUARANTINED)
                raise WALCorruptionError(
                    f"committed record {record} at byte {offset} is "
                    f"damaged ({error}); bytes preserved at "
                    f"{destination!r}",
                    path=self.layout.wal_log_path,
                    offset=offset,
                    record=record,
                    quarantined=(destination,),
                ) from error
            instrument.count(instrument.WAL_RECORD_REPLAYED)
            yield sequence, op_document
            offset = end
            record += 1

    def _quarantine_region(
        self, data: bytes, offset: int, record: int
    ) -> str:
        destination = self.layout.quarantine_path(
            f"wal-record-{record}-at-{offset}.bin"
        )
        with open(destination, "wb") as handle:
            handle.write(data[offset:])
        return destination
