"""Typed ingest operations: the WAL's payload vocabulary.

Three operations cover everything the streaming path can do to a
corpus — register a new flat video, append segments to one, and attach
an atomic-predicate similarity list:

* validation (:func:`validate`) runs *before* a record reaches the WAL,
  so the log never persists a poison operation that replay would choke
  on;
* application (:func:`apply`) is the single mutation path shared by the
  live ingester and crash recovery, so a replayed log reproduces the
  in-memory state byte-for-byte;
* encoding (:func:`encode_op` / :func:`decode_op`) reuses the store's
  JSON serializers, is round-trip exact (property-tested), and decodes
  through a trust boundary — structural junk surfaces as a typed
  :class:`~repro.errors.IngestError`, never a ``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple, Union

from repro.core.simlist import SimilarityList
from repro.errors import IngestError, ReproError
from repro.model.database import VideoDatabase
from repro.model.hierarchy import flat_video
from repro.model.metadata import SegmentMetadata
from repro.model.serialize import (
    segment_from_dict,
    segment_to_dict,
    simlist_from_dict,
    simlist_to_dict,
)

OP_ADD_VIDEO = "add-video"
OP_APPEND_SEGMENTS = "append-segments"
OP_ADD_ANNOTATIONS = "add-annotations"


@dataclass(frozen=True)
class AddVideo:
    """Register a new flat video (optionally already carrying segments)."""

    name: str
    segments: Tuple[SegmentMetadata, ...] = ()
    child_level_name: str = "shot"

    kind = OP_ADD_VIDEO


@dataclass(frozen=True)
class AppendSegments:
    """Append leaf segments to the end of an existing flat video."""

    video: str
    segments: Tuple[SegmentMetadata, ...]

    kind = OP_APPEND_SEGMENTS


@dataclass(frozen=True)
class AddAnnotations:
    """Attach an atomic-predicate similarity list to one video level."""

    video: str
    predicate: str
    sim: SimilarityList
    level: int = 2

    kind = OP_ADD_ANNOTATIONS


IngestOp = Union[AddVideo, AppendSegments, AddAnnotations]


# ---------------------------------------------------------------------------
# encode / decode
# ---------------------------------------------------------------------------
def encode_op(op: IngestOp) -> Dict[str, Any]:
    """A JSON-safe document of one operation (the WAL record payload)."""
    if isinstance(op, AddVideo):
        return {
            "kind": OP_ADD_VIDEO,
            "name": op.name,
            "segments": [segment_to_dict(s) for s in op.segments],
            "child_level_name": op.child_level_name,
        }
    if isinstance(op, AppendSegments):
        return {
            "kind": OP_APPEND_SEGMENTS,
            "video": op.video,
            "segments": [segment_to_dict(s) for s in op.segments],
        }
    if isinstance(op, AddAnnotations):
        return {
            "kind": OP_ADD_ANNOTATIONS,
            "video": op.video,
            "predicate": op.predicate,
            "level": op.level,
            "list": simlist_to_dict(op.sim),
        }
    raise IngestError(f"unknown ingest operation {type(op).__name__!r}")


def decode_op(document: Dict[str, Any]) -> IngestOp:
    """Rebuild an operation from an untrusted document.

    Structural junk — a missing key, a wrong type, a malformed nested
    payload — raises :class:`~repro.errors.IngestError`; model-level
    invariant violations inside the nested serializers keep their own
    typed errors.
    """
    try:
        kind = document["kind"]
        if kind == OP_ADD_VIDEO:
            return AddVideo(
                name=str(document["name"]),
                segments=tuple(
                    segment_from_dict(s) for s in document["segments"]
                ),
                child_level_name=str(document["child_level_name"]),
            )
        if kind == OP_APPEND_SEGMENTS:
            return AppendSegments(
                video=str(document["video"]),
                segments=tuple(
                    segment_from_dict(s) for s in document["segments"]
                ),
            )
        if kind == OP_ADD_ANNOTATIONS:
            return AddAnnotations(
                video=str(document["video"]),
                predicate=str(document["predicate"]),
                sim=simlist_from_dict(document["list"]),
                level=int(document["level"]),
            )
    except ReproError:
        raise
    except Exception as error:
        raise IngestError(
            f"malformed ingest-op payload: {error!r}"
        ) from error
    raise IngestError(f"unknown ingest-op kind {document.get('kind')!r}")


# ---------------------------------------------------------------------------
# validate / apply
# ---------------------------------------------------------------------------
def validate(op: IngestOp, database: VideoDatabase) -> None:
    """Reject an operation *before* it reaches the WAL.

    Anything that passes here is guaranteed to :func:`apply` cleanly
    against the state the database will be in when the record replays —
    the WAL must never persist an operation recovery cannot apply.
    """
    if isinstance(op, AddVideo):
        if not op.name:
            raise IngestError("a video needs a non-empty name")
        if op.name in database:
            raise IngestError(
                f"video {op.name!r} already in the database"
            )
        return
    if isinstance(op, AppendSegments):
        if not op.segments:
            raise IngestError(
                f"append to {op.video!r} carries no segments"
            )
        if op.video not in database:
            raise IngestError(f"no video named {op.video!r}")
        video = database.get(op.video)
        if video.depth > 2:
            raise IngestError(
                f"video {op.video!r} has {video.depth} levels; streaming "
                "appends support the paper's flat (two-level) shape only"
            )
        return
    if isinstance(op, AddAnnotations):
        if op.video not in database:
            raise IngestError(f"no video named {op.video!r}")
        video = database.get(op.video)
        if op.level < 1 or op.level > video.n_levels:
            raise IngestError(
                f"video {op.video!r} has levels 1..{video.n_levels}, "
                f"annotation targets level {op.level}"
            )
        n_segments = len(video.nodes_at_level(op.level))
        last = max((entry.end for entry in op.sim), default=0)
        if last > n_segments:
            raise IngestError(
                f"annotation {op.predicate!r} covers segments up to "
                f"{last}, but video {op.video!r} has {n_segments} at "
                f"level {op.level}"
            )
        return
    raise IngestError(f"unknown ingest operation {type(op).__name__!r}")


def apply(op: IngestOp, database: VideoDatabase) -> str:
    """Apply one operation to the live database; returns the video name.

    The single mutation path of both the ingester and recovery replay.
    Index maintenance is incremental throughout: appends extend the
    installed picture systems in place
    (:meth:`~repro.model.hierarchy.Video.append_segments`) and stamp the
    video's generation so caches invalidate only its entries.
    """
    validate(op, database)
    if isinstance(op, AddVideo):
        database.add(
            flat_video(
                op.name,
                list(op.segments),
                child_level_name=op.child_level_name,
            )
        )
        return op.name
    if isinstance(op, AppendSegments):
        video = database.get(op.video)
        video.append_segments(list(op.segments))
        database.touch(op.video)
        return op.video
    database.register_atomic(
        op.predicate, op.video, op.sim, level=op.level
    )
    return op.video
