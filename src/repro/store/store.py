"""The crash-safe snapshot store for video databases (DESIGN.md §9).

The paper assumes a persistent database of per-video meta-data and
precomputed similarity tables that the retrieval algorithms read (§1,
§3); this module gives that database a durable home with one contract —
**a typed error or a correct answer, never silent corruption** —
extended down to disk:

* :meth:`Store.save` writes a *snapshot*: one directory holding the
  video metadata, the registered atomic similarity tables, and the
  derived metadata indices as separate artifacts, each written
  atomically (temp + fsync + rename) and named in a checksummed
  per-snapshot manifest.  The save commits by atomically replacing the
  top-level ``MANIFEST.json``; a crash at any earlier step leaves the
  previous snapshot current and intact.
* :meth:`Store.load` verifies every artifact against the manifest chain
  (``MANIFEST.json`` → ``snapshot.json`` → artifact digests).  Damage —
  truncation, bit rot, a torn write — is *quarantined* (moved aside,
  never deleted) and load falls back along the snapshot chain to the
  newest intact one; a damaged derived index is instead rebuilt from
  the surviving metadata.  Every recovery action is surfaced through
  :mod:`repro.core.instrument` counters and the returned
  :class:`StoreLoad.actions`.
* :meth:`Store.verify` is the read-only version of the same checks;
  :meth:`Store.repair` quarantines everything damaged and rewrites the
  manifest over the snapshots that remain fully intact.

Disk faults are injectable at the registered sites
(:data:`~repro.core.resilience.SITE_STORE_WRITE` /
``SITE_STORE_FSYNC`` / ``SITE_STORE_READ``); the crash-recovery suite
in ``tests/store`` sweeps a fault over every write step and asserts the
central invariant: the store afterwards loads at either the old or the
new snapshot, never a hybrid.
"""

from __future__ import annotations

import json
import os
import re
import shutil
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core import instrument, resilience, trace
from repro.errors import (
    InjectedFaultError,
    ModelError,
    StoreCorruptionError,
    StoreError,
    StoreVersionError,
    StoreWriteError,
)
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video
from repro.model.serialize import (
    atomics_to_list,
    database_from_parts,
    simlist_from_dict,
    videos_to_list,
)
from repro.pictures.index import MetadataIndex
from repro.pictures.retrieval import PictureRetrievalSystem
from repro.store.atomic import (
    atomic_write_json,
    fsync_directory,
    sha256_hex,
)

#: On-disk format version of the store layout and manifest schemas.
STORE_FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
SNAPSHOT_MANIFEST = "snapshot.json"
VIDEOS_ARTIFACT = "videos.json"
ATOMICS_ARTIFACT = "atomics.json"
INDEX_ARTIFACT = "index.json"

#: Artifacts a snapshot cannot be loaded without.
REQUIRED_ARTIFACTS = (VIDEOS_ARTIFACT, ATOMICS_ARTIFACT)
#: Derived artifacts: damage is recovered by rebuilding, not fallback.
DERIVED_ARTIFACTS = (INDEX_ARTIFACT,)

_SNAPSHOT_NAME = re.compile(r"^snap-(\d{6,})$")

#: Read errors that mean "could not get bytes off disk" — the artifact
#: may be fine, so it is skipped, not quarantined.  Injected read faults
#: model exactly this failure.
_READ_ERRORS = (OSError, InjectedFaultError)


def _snapshot_id(sequence: int) -> str:
    return f"snap-{sequence:06d}"


def _sequence_of(snapshot_id: str) -> Optional[int]:
    match = _SNAPSHOT_NAME.match(snapshot_id)
    return int(match.group(1)) if match else None


def default_level(video: Video) -> int:
    """The level the store persists/prime the picture index at.

    Level 2 — the children of the root — is where §3's algorithms and
    the paper's experiments assert formulas; single-level videos fall
    back to the root.
    """
    return min(2, video.n_levels)


# ---------------------------------------------------------------------------
# result records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RecoveryAction:
    """One recovery step taken by load/repair, for provenance.

    ``kind`` is one of ``"quarantined"``, ``"fallback"``,
    ``"index-rebuilt"``, ``"manifest-recovered"``, ``"unreadable"``,
    ``"skipped"``.  ``quarantined_to`` is the preserved path of a moved
    damaged file (empty when nothing was moved).
    """

    kind: str
    snapshot: str = ""
    artifact: str = ""
    detail: str = ""
    quarantined_to: str = ""


@dataclass(frozen=True)
class SnapshotInfo:
    """What :meth:`Store.save` committed."""

    snapshot_id: str
    sequence: int
    path: str
    artifacts: Dict[str, Dict[str, Any]]
    pruned: Tuple[str, ...] = ()


@dataclass
class StoreLoad:
    """A loaded database plus the provenance of how it was recovered."""

    database: VideoDatabase
    snapshot_id: str
    verified: bool
    actions: List[RecoveryAction] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """True when load had to take any recovery action."""
        return bool(self.actions)


@dataclass(frozen=True)
class ArtifactStatus:
    """One artifact's health in a :class:`VerifyReport`.

    ``status`` is ``"ok"``, ``"missing"``, ``"unreadable"``,
    ``"size-mismatch"``, ``"digest-mismatch"``, or ``"malformed"``.
    ``fatal`` is False for derived artifacts (a damaged index is
    rebuilt, not fallen back from).
    """

    snapshot: str
    artifact: str
    status: str
    fatal: bool = True
    detail: str = ""

    @property
    def damaged(self) -> bool:
        return self.status != "ok"


@dataclass
class VerifyReport:
    """Read-only health report of the whole store."""

    manifest_ok: bool
    manifest_detail: str = ""
    statuses: List[ArtifactStatus] = field(default_factory=list)
    unreferenced: List[str] = field(default_factory=list)
    stray_files: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every referenced snapshot is fully intact."""
        return self.manifest_ok and not any(
            status.damaged and status.fatal for status in self.statuses
        )

    def intact_snapshots(self) -> List[str]:
        """Referenced snapshots whose required artifacts all verified."""
        damaged = {
            status.snapshot
            for status in self.statuses
            if status.damaged and status.fatal
        }
        ordered: List[str] = []
        for status in self.statuses:
            if status.snapshot not in damaged:
                if status.snapshot not in ordered:
                    ordered.append(status.snapshot)
        return ordered


@dataclass
class RepairReport:
    """What :meth:`Store.repair` did."""

    actions: List[RecoveryAction] = field(default_factory=list)
    current: Optional[str] = None
    retained: List[str] = field(default_factory=list)
    dropped: List[str] = field(default_factory=list)


# ---------------------------------------------------------------------------
# the store
# ---------------------------------------------------------------------------
class Store:
    """A crash-safe, checksummed snapshot store rooted at one directory."""

    def __init__(self, root: Any, keep: int = 2, fsync: bool = True):
        if keep < 1:
            raise StoreError(f"keep must be >= 1, got {keep}")
        self.root = os.fspath(root)
        self.keep = keep
        self.fsync = fsync

    # -- paths -----------------------------------------------------------
    @property
    def snapshots_dir(self) -> str:
        return os.path.join(self.root, "snapshots")

    @property
    def quarantine_dir(self) -> str:
        return os.path.join(self.root, "quarantine")

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def snapshot_path(self, snapshot_id: str) -> str:
        return os.path.join(self.snapshots_dir, snapshot_id)

    def _on_disk_snapshots(self) -> List[str]:
        """Snapshot directory names present on disk, oldest first."""
        try:
            names = os.listdir(self.snapshots_dir)
        except OSError:
            return []
        found = [
            name
            for name in names
            if _sequence_of(name) is not None
            and os.path.isdir(self.snapshot_path(name))
        ]
        found.sort(key=lambda name: _sequence_of(name) or 0)
        return found

    # -- quarantine ------------------------------------------------------
    def _quarantine(self, path: str, label: str) -> str:
        """Move a damaged file/directory aside; returns the new path.

        Quarantined artifacts are preserved verbatim for post-mortem —
        the store never deletes evidence of corruption.
        """
        os.makedirs(self.quarantine_dir, exist_ok=True)
        base = os.path.join(self.quarantine_dir, label)
        target = base
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{base}.{suffix}"
        shutil.move(path, target)
        instrument.count(instrument.STORE_ARTIFACT_QUARANTINED)
        trace.event(
            instrument.STORE_ARTIFACT_QUARANTINED,
            f"moved {os.path.basename(path)} aside to "
            f"{os.path.basename(target)}",
        )
        return target

    def _quarantine_artifact(
        self,
        actions: List[RecoveryAction],
        snapshot_id: str,
        artifact: str,
        detail: str,
    ) -> None:
        path = (
            os.path.join(self.snapshot_path(snapshot_id), artifact)
            if snapshot_id
            else os.path.join(self.root, artifact)
        )
        label = f"{snapshot_id}__{artifact}" if snapshot_id else artifact
        quarantined_to = ""
        if os.path.exists(path):
            quarantined_to = self._quarantine(path, label)
        actions.append(
            RecoveryAction(
                kind="quarantined",
                snapshot=snapshot_id,
                artifact=artifact,
                detail=detail,
                quarantined_to=quarantined_to,
            )
        )

    # -- low-level reads -------------------------------------------------
    def _read_bytes(self, path: str) -> bytes:
        """Read a file through the disk-read fault site.

        The corruption hook sees the raw bytes — the injector's model of
        bit rot is a deterministic flip/truncation of what came off
        disk.
        """
        resilience.fault(resilience.SITE_STORE_READ)
        with open(path, "rb") as handle:
            data = handle.read()
        return resilience.fault_value(resilience.SITE_STORE_READ, data)

    # -- save ------------------------------------------------------------
    def _next_sequence(self) -> int:
        """One past the highest sequence ever allocated.

        Consults both the disk scan and the manifest's ``highest``
        watermark so ids are never reused — not even after repair moves
        a whole snapshot into quarantine (a reused id would make the
        quarantine labels ambiguous).
        """
        highest = 0
        for name in self._on_disk_snapshots():
            highest = max(highest, _sequence_of(name) or 0)
        manifest = self._read_manifest_or_none()
        if manifest is not None:
            try:
                highest = max(highest, int(manifest.get("highest", 0)))
            except (TypeError, ValueError):
                pass
        return highest + 1

    def _index_documents(
        self, database: VideoDatabase
    ) -> Dict[str, Dict[str, Any]]:
        documents: Dict[str, Dict[str, Any]] = {}
        for video in database.videos():
            level = default_level(video)
            system = video.root.pictures_at_level(level)
            documents[video.name] = {
                "level": level,
                "index": system.index.to_dict(),
            }
        return documents

    def save(self, database: VideoDatabase) -> SnapshotInfo:
        """Write a new snapshot and commit it atomically.

        Write order is the crash-safety argument: every artifact and the
        per-snapshot manifest are atomically written and fsynced inside
        a fresh snapshot directory *before* the top-level manifest is
        atomically replaced.  The manifest replacement is therefore the
        single commit point — a crash (or injected fault) anywhere
        earlier leaves the store exactly at the previous snapshot, and a
        crash after it leaves it exactly at the new one.  Old snapshots
        beyond ``keep`` are pruned only after the commit.
        """
        try:
            os.makedirs(self.snapshots_dir, exist_ok=True)
        except OSError as error:
            raise StoreWriteError(
                f"cannot create store at {self.root!r}: {error}",
                path=self.root,
            ) from error
        sequence = self._next_sequence()
        snapshot_id = _snapshot_id(sequence)
        directory = self.snapshot_path(snapshot_id)
        try:
            os.makedirs(directory)
        except OSError as error:
            raise StoreWriteError(
                f"cannot create snapshot directory {directory!r}: {error}",
                path=directory,
            ) from error

        payloads = {
            VIDEOS_ARTIFACT: {
                "format": STORE_FORMAT_VERSION,
                "videos": videos_to_list(database),
            },
            ATOMICS_ARTIFACT: {
                "format": STORE_FORMAT_VERSION,
                "atomics": atomics_to_list(database),
            },
            INDEX_ARTIFACT: {
                "format": STORE_FORMAT_VERSION,
                "indices": self._index_documents(database),
            },
        }
        artifacts: Dict[str, Dict[str, Any]] = {}
        for name, payload in payloads.items():
            digest, size = atomic_write_json(
                os.path.join(directory, name), payload, fsync=self.fsync
            )
            artifacts[name] = {"sha256": digest, "bytes": size}
        snapshot_manifest = {
            "format": STORE_FORMAT_VERSION,
            "id": snapshot_id,
            "sequence": sequence,
            "artifacts": artifacts,
        }
        manifest_digest, manifest_size = atomic_write_json(
            os.path.join(directory, SNAPSHOT_MANIFEST),
            snapshot_manifest,
            fsync=self.fsync,
        )
        if self.fsync:
            fsync_directory(directory)
            fsync_directory(self.snapshots_dir)

        previous = self._read_manifest_or_none()
        order: List[str] = []
        digests: Dict[str, Dict[str, Any]] = {}
        if previous is not None:
            for old_id in previous.get("order", []):
                entry = previous.get("snapshots", {}).get(old_id)
                if entry is not None and os.path.isdir(
                    self.snapshot_path(old_id)
                ):
                    order.append(old_id)
                    digests[old_id] = entry
        order.append(snapshot_id)
        digests[snapshot_id] = {
            "sha256": manifest_digest,
            "bytes": manifest_size,
        }
        pruned = tuple(order[: -self.keep]) if len(order) > self.keep else ()
        retained = order[-self.keep :]
        manifest = {
            "format": STORE_FORMAT_VERSION,
            "current": snapshot_id,
            "order": retained,
            "snapshots": {name: digests[name] for name in retained},
            "highest": sequence,
        }
        atomic_write_json(self.manifest_path, manifest, fsync=self.fsync)
        if self.fsync:
            fsync_directory(self.root)
        instrument.count(instrument.STORE_SNAPSHOT_SAVED)
        trace.event(instrument.STORE_SNAPSHOT_SAVED, snapshot_id)
        # Retention, after the commit: dropped snapshots are unreferenced
        # by the new manifest, so removing them can never lose the
        # current or fallback state.  Best-effort — a failure here only
        # leaves an unreferenced directory for repair to report.
        for dropped in pruned:
            shutil.rmtree(self.snapshot_path(dropped), ignore_errors=True)
        return SnapshotInfo(
            snapshot_id=snapshot_id,
            sequence=sequence,
            path=directory,
            artifacts=artifacts,
            pruned=pruned,
        )

    # -- manifest --------------------------------------------------------
    def _read_manifest_or_none(self) -> Optional[Dict[str, Any]]:
        """The parsed top manifest, or None when missing/unusable.

        Used on the save path, which only needs the previous order; the
        load path goes through :meth:`_load_manifest` for full recovery.
        """
        try:
            with open(self.manifest_path, "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def _recovered_manifest(
        self, actions: List[RecoveryAction], detail: str
    ) -> Dict[str, Any]:
        on_disk = self._on_disk_snapshots()
        if not on_disk:
            raise StoreError(
                f"no snapshot store at {self.root!r}", path=self.root
            )
        instrument.count(instrument.STORE_MANIFEST_RECOVERED)
        trace.event(
            instrument.STORE_MANIFEST_RECOVERED,
            "manifest missing or damaged; recovered by disk scan",
        )
        actions.append(
            RecoveryAction(
                kind="manifest-recovered",
                artifact=MANIFEST_NAME,
                detail=detail,
            )
        )
        return {
            "format": STORE_FORMAT_VERSION,
            "current": on_disk[-1],
            "order": on_disk,
            "snapshots": {},
        }

    def _validate_manifest(self, manifest: Any) -> Dict[str, Any]:
        if not isinstance(manifest, dict):
            raise ValueError("manifest must be a JSON object")
        version = manifest.get("format")
        if version != STORE_FORMAT_VERSION:
            raise StoreVersionError(
                f"store manifest carries format {version!r}; this build "
                f"reads version {STORE_FORMAT_VERSION}",
                path=self.manifest_path,
            )
        order = manifest.get("order")
        snapshots = manifest.get("snapshots")
        if not isinstance(order, list) or not isinstance(snapshots, dict):
            raise ValueError("manifest must carry 'order' and 'snapshots'")
        for name in order:
            if _sequence_of(str(name)) is None:
                raise ValueError(f"manifest lists malformed id {name!r}")
        return manifest

    def _load_manifest(
        self, actions: List[RecoveryAction]
    ) -> Dict[str, Any]:
        path = self.manifest_path
        if not os.path.exists(path):
            return self._recovered_manifest(
                actions, "top manifest missing; recovered from disk scan"
            )
        try:
            data = self._read_bytes(path)
        except _READ_ERRORS as error:
            actions.append(
                RecoveryAction(
                    kind="unreadable",
                    artifact=MANIFEST_NAME,
                    detail=repr(error),
                )
            )
            return self._recovered_manifest(
                actions, "top manifest unreadable; recovered from disk scan"
            )
        try:
            return self._validate_manifest(json.loads(data.decode("utf-8")))
        except StoreVersionError:
            raise
        except Exception as error:
            self._quarantine_artifact(
                actions, "", MANIFEST_NAME, f"corrupt manifest: {error!r}"
            )
            return self._recovered_manifest(
                actions, "top manifest corrupt; recovered from disk scan"
            )

    # -- snapshot loading ------------------------------------------------
    def _read_snapshot_manifest(
        self,
        snapshot_id: str,
        manifest: Dict[str, Any],
        verify: bool,
        actions: List[RecoveryAction],
    ) -> Optional[Dict[str, Any]]:
        path = os.path.join(self.snapshot_path(snapshot_id), SNAPSHOT_MANIFEST)
        if not os.path.exists(path):
            actions.append(
                RecoveryAction(
                    kind="skipped",
                    snapshot=snapshot_id,
                    artifact=SNAPSHOT_MANIFEST,
                    detail="snapshot manifest missing",
                )
            )
            return None
        try:
            data = self._read_bytes(path)
        except _READ_ERRORS as error:
            actions.append(
                RecoveryAction(
                    kind="unreadable",
                    snapshot=snapshot_id,
                    artifact=SNAPSHOT_MANIFEST,
                    detail=repr(error),
                )
            )
            return None
        expected = manifest.get("snapshots", {}).get(snapshot_id)
        if verify and isinstance(expected, dict):
            if len(data) != expected.get("bytes") or sha256_hex(
                data
            ) != expected.get("sha256"):
                self._quarantine_artifact(
                    actions,
                    snapshot_id,
                    SNAPSHOT_MANIFEST,
                    "snapshot manifest digest mismatch",
                )
                return None
        try:
            document = json.loads(data.decode("utf-8"))
            if not isinstance(document, dict):
                raise ValueError("snapshot manifest must be a JSON object")
            version = document.get("format")
            if version != STORE_FORMAT_VERSION:
                raise StoreVersionError(
                    f"snapshot {snapshot_id} carries format {version!r}; "
                    f"this build reads version {STORE_FORMAT_VERSION}",
                    path=path,
                )
            artifacts = document.get("artifacts")
            if not isinstance(artifacts, dict):
                raise ValueError("snapshot manifest lists no artifacts")
            return document
        except StoreVersionError:
            raise
        except Exception as error:
            self._quarantine_artifact(
                actions,
                snapshot_id,
                SNAPSHOT_MANIFEST,
                f"corrupt snapshot manifest: {error!r}",
            )
            return None

    def _read_artifact(
        self,
        snapshot_id: str,
        name: str,
        snapshot_manifest: Dict[str, Any],
        verify: bool,
        actions: List[RecoveryAction],
    ) -> Optional[Dict[str, Any]]:
        """One verified artifact payload, or None after quarantine/skip."""
        path = os.path.join(self.snapshot_path(snapshot_id), name)
        entry = snapshot_manifest["artifacts"].get(name)
        if not isinstance(entry, dict):
            actions.append(
                RecoveryAction(
                    kind="skipped",
                    snapshot=snapshot_id,
                    artifact=name,
                    detail="artifact not listed in snapshot manifest",
                )
            )
            return None
        if not os.path.exists(path):
            actions.append(
                RecoveryAction(
                    kind="skipped",
                    snapshot=snapshot_id,
                    artifact=name,
                    detail="artifact file missing",
                )
            )
            return None
        try:
            data = self._read_bytes(path)
        except _READ_ERRORS as error:
            actions.append(
                RecoveryAction(
                    kind="unreadable",
                    snapshot=snapshot_id,
                    artifact=name,
                    detail=repr(error),
                )
            )
            return None
        if verify:
            if len(data) != entry.get("bytes"):
                self._quarantine_artifact(
                    actions,
                    snapshot_id,
                    name,
                    f"size mismatch: manifest says {entry.get('bytes')}, "
                    f"read {len(data)} bytes (truncation/torn write)",
                )
                return None
            if sha256_hex(data) != entry.get("sha256"):
                self._quarantine_artifact(
                    actions, snapshot_id, name, "SHA-256 digest mismatch"
                )
                return None
        try:
            payload = json.loads(data.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("artifact payload must be a JSON object")
            return payload
        except Exception as error:
            self._quarantine_artifact(
                actions, snapshot_id, name, f"unparseable artifact: {error!r}"
            )
            return None

    def _install_indices(
        self,
        database: VideoDatabase,
        snapshot_id: str,
        index_payload: Optional[Dict[str, Any]],
        actions: List[RecoveryAction],
    ) -> None:
        """Prime every video's picture system from the index artifact.

        A damaged or missing index is *derived* state: recovery is a
        rebuild from the (already verified) metadata, never a snapshot
        fallback.
        """
        documents = (
            index_payload.get("indices", {})
            if isinstance(index_payload, dict)
            else {}
        )
        for video in database.videos():
            level = default_level(video)
            metadata = [
                node.metadata
                for node in video.root.descendants_at_level(level)
            ]
            system: Optional[PictureRetrievalSystem] = None
            document = documents.get(video.name)
            if (
                isinstance(document, dict)
                and document.get("level") == level
            ):
                try:
                    prebuilt = MetadataIndex.from_dict(document["index"])
                    if prebuilt.n_segments != len(metadata):
                        raise ModelError(
                            f"index covers {prebuilt.n_segments} segments, "
                            f"video has {len(metadata)}"
                        )
                    system = PictureRetrievalSystem(metadata, index=prebuilt)
                except ModelError as error:
                    actions.append(
                        RecoveryAction(
                            kind="index-rebuilt",
                            snapshot=snapshot_id,
                            artifact=INDEX_ARTIFACT,
                            detail=f"restored index for {video.name!r} "
                            f"rejected: {error}",
                        )
                    )
            if system is None:
                if document is None or not isinstance(document, dict):
                    actions.append(
                        RecoveryAction(
                            kind="index-rebuilt",
                            snapshot=snapshot_id,
                            artifact=INDEX_ARTIFACT,
                            detail=f"no persisted index for {video.name!r}; "
                            "rebuilt from surviving metadata",
                        )
                    )
                instrument.count(instrument.STORE_INDEX_REBUILT)
                trace.event(
                    instrument.STORE_INDEX_REBUILT,
                    f"rebuilt derived index for {video.name!r}",
                )
                system = PictureRetrievalSystem(metadata)
            video.root.install_pictures(level, system)

    def _load_snapshot(
        self,
        snapshot_id: str,
        manifest: Dict[str, Any],
        verify: bool,
        actions: List[RecoveryAction],
    ) -> Optional[VideoDatabase]:
        snapshot_manifest = self._read_snapshot_manifest(
            snapshot_id, manifest, verify, actions
        )
        if snapshot_manifest is None:
            return None
        payloads: Dict[str, Dict[str, Any]] = {}
        for name in REQUIRED_ARTIFACTS:
            payload = self._read_artifact(
                snapshot_id, name, snapshot_manifest, verify, actions
            )
            if payload is None:
                return None
            payloads[name] = payload
        try:
            videos = payloads[VIDEOS_ARTIFACT]["videos"]
            if not isinstance(videos, list):
                raise ModelError("videos artifact must carry a list")
            database = database_from_parts(videos, [])
        except (ModelError, KeyError) as error:
            self._quarantine_artifact(
                actions,
                snapshot_id,
                VIDEOS_ARTIFACT,
                f"metadata failed model validation: {error!r}",
            )
            return None
        try:
            atomics = payloads[ATOMICS_ARTIFACT]["atomics"]
            if not isinstance(atomics, list):
                raise ModelError("atomics artifact must carry a list")
            for atomic in atomics:
                database.register_atomic(
                    str(atomic["predicate"]),
                    str(atomic["video"]),
                    simlist_from_dict(atomic["list"]),
                    level=int(atomic.get("level", 2)),
                )
        except (ModelError, KeyError, TypeError, ValueError) as error:
            self._quarantine_artifact(
                actions,
                snapshot_id,
                ATOMICS_ARTIFACT,
                f"similarity tables failed validation: {error!r}",
            )
            return None
        # The index artifact last: damage here never disqualifies the
        # snapshot.
        index_payload = None
        if INDEX_ARTIFACT in snapshot_manifest["artifacts"]:
            index_payload = self._read_artifact(
                snapshot_id, INDEX_ARTIFACT, snapshot_manifest, verify, actions
            )
        self._install_indices(database, snapshot_id, index_payload, actions)
        return database

    def load(self, verify: bool = True) -> StoreLoad:
        """Load the newest intact snapshot, recovering as needed.

        ``verify=False`` skips the digest checks (the benchmark's
        unverified baseline) but keeps the structural gates — a torn
        JSON file still surfaces as quarantine-and-fallback, never as a
        half-built database.
        """
        actions: List[RecoveryAction] = []
        manifest = self._load_manifest(actions)
        candidates: List[str] = []
        for name in reversed(manifest.get("order", [])):
            if name not in candidates:
                candidates.append(name)
        current = manifest.get("current")
        if isinstance(current, str) and current not in candidates:
            candidates.insert(0, current)
        for name in reversed(self._on_disk_snapshots()):
            if name not in candidates:
                candidates.append(name)
        if not candidates:
            raise StoreError(
                f"store at {self.root!r} has no snapshots", path=self.root
            )
        for position, snapshot_id in enumerate(candidates):
            database = self._load_snapshot(
                snapshot_id, manifest, verify, actions
            )
            if database is None:
                continue
            if position > 0:
                instrument.count(instrument.STORE_SNAPSHOT_FALLBACK)
                trace.event(
                    instrument.STORE_SNAPSHOT_FALLBACK,
                    f"fell back past {position} damaged snapshot(s) "
                    f"to {snapshot_id}",
                )
                actions.append(
                    RecoveryAction(
                        kind="fallback",
                        snapshot=snapshot_id,
                        detail=f"fell back past {position} damaged "
                        f"snapshot(s) to {snapshot_id}",
                    )
                )
            instrument.count(instrument.STORE_SNAPSHOT_LOADED)
            trace.event(instrument.STORE_SNAPSHOT_LOADED, snapshot_id)
            return StoreLoad(
                database=database,
                snapshot_id=snapshot_id,
                verified=verify,
                actions=actions,
            )
        quarantined = tuple(
            action.quarantined_to for action in actions if action.quarantined_to
        )
        first_damage = next(
            (
                f"{action.snapshot}/{action.artifact}"
                if action.snapshot
                else action.artifact
                for action in actions
                if action.kind in ("quarantined", "unreadable", "skipped")
            ),
            "",
        )
        raise StoreCorruptionError(
            f"no intact snapshot in store at {self.root!r}; tried "
            f"{', '.join(candidates)}; first damage at {first_damage or '?'}; "
            f"quarantined {len(quarantined)} file(s)",
            path=self.root,
            artifact=first_damage,
            quarantined=quarantined,
        )

    # -- verify ----------------------------------------------------------
    def _artifact_status(
        self, snapshot_id: str, name: str, entry: Any, fatal: bool
    ) -> ArtifactStatus:
        path = os.path.join(self.snapshot_path(snapshot_id), name)
        if not isinstance(entry, dict):
            return ArtifactStatus(
                snapshot_id, name, "malformed", fatal,
                "no digest entry in snapshot manifest",
            )
        if not os.path.exists(path):
            return ArtifactStatus(snapshot_id, name, "missing", fatal)
        try:
            data = self._read_bytes(path)
        except _READ_ERRORS as error:
            return ArtifactStatus(
                snapshot_id, name, "unreadable", fatal, repr(error)
            )
        if len(data) != entry.get("bytes"):
            return ArtifactStatus(
                snapshot_id, name, "size-mismatch", fatal,
                f"manifest says {entry.get('bytes')}, file has {len(data)}",
            )
        if sha256_hex(data) != entry.get("sha256"):
            return ArtifactStatus(snapshot_id, name, "digest-mismatch", fatal)
        return ArtifactStatus(snapshot_id, name, "ok", fatal)

    def verify(self) -> VerifyReport:
        """Check every referenced artifact against the manifest chain.

        Strictly read-only: nothing is quarantined, moved, or rewritten
        — :meth:`load` and :meth:`repair` act on what this reports.
        """
        report = VerifyReport(manifest_ok=True)
        manifest = self._read_manifest_or_none()
        if manifest is None:
            if not self._on_disk_snapshots():
                raise StoreError(
                    f"no snapshot store at {self.root!r}", path=self.root
                )
            report.manifest_ok = False
            report.manifest_detail = "top manifest missing or unparseable"
            order: List[str] = []
        else:
            try:
                self._validate_manifest(manifest)
                order = list(manifest.get("order", []))
            except StoreVersionError:
                raise
            except Exception as error:
                report.manifest_ok = False
                report.manifest_detail = f"malformed manifest: {error!r}"
                order = []
        listed = set(order)
        for snapshot_id in order:
            directory = self.snapshot_path(snapshot_id)
            manifest_entry = (
                manifest.get("snapshots", {}).get(snapshot_id)
                if manifest
                else None
            )
            if not os.path.isdir(directory):
                report.statuses.append(
                    ArtifactStatus(
                        snapshot_id, SNAPSHOT_MANIFEST, "missing", True,
                        "snapshot directory missing",
                    )
                )
                continue
            path = os.path.join(directory, SNAPSHOT_MANIFEST)
            try:
                data = self._read_bytes(path)
            except FileNotFoundError:
                report.statuses.append(
                    ArtifactStatus(snapshot_id, SNAPSHOT_MANIFEST, "missing")
                )
                continue
            except _READ_ERRORS as error:
                report.statuses.append(
                    ArtifactStatus(
                        snapshot_id, SNAPSHOT_MANIFEST, "unreadable", True,
                        repr(error),
                    )
                )
                continue
            if isinstance(manifest_entry, dict) and (
                len(data) != manifest_entry.get("bytes")
                or sha256_hex(data) != manifest_entry.get("sha256")
            ):
                report.statuses.append(
                    ArtifactStatus(
                        snapshot_id, SNAPSHOT_MANIFEST, "digest-mismatch"
                    )
                )
                continue
            try:
                snapshot_manifest = json.loads(data.decode("utf-8"))
                artifacts = snapshot_manifest["artifacts"]
                if not isinstance(artifacts, dict):
                    raise ValueError("artifacts must be an object")
            except Exception as error:
                report.statuses.append(
                    ArtifactStatus(
                        snapshot_id, SNAPSHOT_MANIFEST, "malformed", True,
                        repr(error),
                    )
                )
                continue
            report.statuses.append(
                ArtifactStatus(snapshot_id, SNAPSHOT_MANIFEST, "ok")
            )
            for name in REQUIRED_ARTIFACTS:
                report.statuses.append(
                    self._artifact_status(
                        snapshot_id, name, artifacts.get(name), fatal=True
                    )
                )
            for name in DERIVED_ARTIFACTS:
                if name in artifacts:
                    report.statuses.append(
                        self._artifact_status(
                            snapshot_id, name, artifacts.get(name), fatal=False
                        )
                    )
        for name in self._on_disk_snapshots():
            if name not in listed:
                report.unreferenced.append(name)
        for directory, __, files in os.walk(self.root):
            if os.path.commonpath(
                [directory, self.quarantine_dir]
            ) == self.quarantine_dir:
                continue
            for file_name in files:
                if file_name.endswith(".tmp"):
                    report.stray_files.append(
                        os.path.join(directory, file_name)
                    )
        return report

    # -- repair ----------------------------------------------------------
    def repair(self) -> RepairReport:
        """Quarantine all damage and rewrite the manifest over what's left.

        After a successful repair, :meth:`verify` reports ``ok`` and
        :meth:`load` succeeds without any recovery action (or raises the
        empty-store error when no snapshot survived).  Damaged files and
        whole torn snapshots are moved to quarantine — never deleted.
        """
        report = self.verify()
        outcome = RepairReport()
        damaged_snapshots = set()
        for status in report.statuses:
            if not status.damaged:
                continue
            if status.artifact == SNAPSHOT_MANIFEST or status.fatal:
                damaged_snapshots.add(status.snapshot)
            elif status.status != "missing":
                # Non-fatal (derived) damage: quarantine just the file.
                self._quarantine_artifact(
                    outcome.actions,
                    status.snapshot,
                    status.artifact,
                    f"repair: {status.status}",
                )
        for snapshot_id in sorted(damaged_snapshots):
            directory = self.snapshot_path(snapshot_id)
            if os.path.isdir(directory):
                quarantined_to = self._quarantine(
                    directory, f"{snapshot_id}__snapshot"
                )
                outcome.actions.append(
                    RecoveryAction(
                        kind="quarantined",
                        snapshot=snapshot_id,
                        artifact="*",
                        detail="repair: snapshot failed verification",
                        quarantined_to=quarantined_to,
                    )
                )
            outcome.dropped.append(snapshot_id)
        for stray in report.stray_files:
            label = "stray__" + os.path.basename(stray)
            quarantined_to = self._quarantine(stray, label)
            outcome.actions.append(
                RecoveryAction(
                    kind="quarantined",
                    artifact=os.path.basename(stray),
                    detail="repair: orphaned temp file (torn write)",
                    quarantined_to=quarantined_to,
                )
            )
        # Rebuild the manifest over every remaining intact snapshot,
        # recomputing the snapshot-manifest digests from disk.
        intact: List[Tuple[int, str, Dict[str, Any]]] = []
        for name in self._on_disk_snapshots():
            path = os.path.join(self.snapshot_path(name), SNAPSHOT_MANIFEST)
            try:
                data = self._read_bytes(path)
                document = json.loads(data.decode("utf-8"))
                artifacts = document["artifacts"]
                healthy = all(
                    self._artifact_status(
                        name, artifact, artifacts.get(artifact), True
                    ).status
                    == "ok"
                    for artifact in REQUIRED_ARTIFACTS
                )
            except Exception:
                healthy = False
                data = b""
            if healthy:
                sequence = _sequence_of(name) or 0
                intact.append(
                    (
                        sequence,
                        name,
                        {"sha256": sha256_hex(data), "bytes": len(data)},
                    )
                )
        intact.sort()
        retained = intact[-self.keep :]
        highest = self._next_sequence() - 1
        manifest = {
            "format": STORE_FORMAT_VERSION,
            "current": retained[-1][1] if retained else None,
            "order": [name for __, name, ___ in retained],
            "snapshots": {name: entry for __, name, entry in retained},
            "highest": highest,
        }
        atomic_write_json(self.manifest_path, manifest, fsync=self.fsync)
        if self.fsync:
            fsync_directory(self.root)
        outcome.current = manifest["current"]
        outcome.retained = list(manifest["order"])
        for __, name, ___ in intact[: -self.keep]:
            outcome.dropped.append(name)
        return outcome
