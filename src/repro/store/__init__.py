"""Crash-safe persistence for video databases (DESIGN.md §9).

Public surface:

* :class:`Store` — atomic checksummed snapshots with
  ``save`` / ``load`` / ``verify`` / ``repair``.
* :func:`atomic_write_bytes` / :func:`atomic_write_json` — the
  temp + fsync + rename primitive every durable artifact goes through
  (also used by the benchmark reports).
* The result records (:class:`StoreLoad`, :class:`VerifyReport`,
  :class:`RepairReport`, :class:`SnapshotInfo`, :class:`RecoveryAction`,
  :class:`ArtifactStatus`) carrying recovery provenance.
"""

from repro.store.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_json_bytes,
    fsync_directory,
    sha256_hex,
)
from repro.store.store import (
    ATOMICS_ARTIFACT,
    DERIVED_ARTIFACTS,
    INDEX_ARTIFACT,
    MANIFEST_NAME,
    REQUIRED_ARTIFACTS,
    SNAPSHOT_MANIFEST,
    STORE_FORMAT_VERSION,
    VIDEOS_ARTIFACT,
    ArtifactStatus,
    RecoveryAction,
    RepairReport,
    SnapshotInfo,
    Store,
    StoreLoad,
    VerifyReport,
    default_level,
)

__all__ = [
    "ATOMICS_ARTIFACT",
    "DERIVED_ARTIFACTS",
    "INDEX_ARTIFACT",
    "MANIFEST_NAME",
    "REQUIRED_ARTIFACTS",
    "SNAPSHOT_MANIFEST",
    "STORE_FORMAT_VERSION",
    "VIDEOS_ARTIFACT",
    "ArtifactStatus",
    "RecoveryAction",
    "RepairReport",
    "SnapshotInfo",
    "Store",
    "StoreLoad",
    "VerifyReport",
    "atomic_write_bytes",
    "atomic_write_json",
    "canonical_json_bytes",
    "default_level",
    "fsync_directory",
    "sha256_hex",
]
