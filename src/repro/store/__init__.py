"""Crash-safe persistence for video databases (DESIGN.md §9).

Public surface:

* :class:`Store` — atomic checksummed snapshots with
  ``save`` / ``load`` / ``verify`` / ``repair``.
* :func:`atomic_write_bytes` / :func:`atomic_write_json` — the
  temp + fsync + rename primitive every durable artifact goes through
  (also used by the benchmark reports).
* The result records (:class:`StoreLoad`, :class:`VerifyReport`,
  :class:`RepairReport`, :class:`SnapshotInfo`, :class:`RecoveryAction`,
  :class:`ArtifactStatus`) carrying recovery provenance.
* The per-shard layout (:mod:`repro.store.sharding`):
  :func:`save_sharded` / :func:`load_layout` partition a corpus into N
  shard stores under one ``SHARDS.json`` manifest (DESIGN.md §12).
"""

from repro.store.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_json_bytes,
    fsync_directory,
    sha256_hex,
)
from repro.store.store import (
    ATOMICS_ARTIFACT,
    DERIVED_ARTIFACTS,
    INDEX_ARTIFACT,
    MANIFEST_NAME,
    REQUIRED_ARTIFACTS,
    SNAPSHOT_MANIFEST,
    STORE_FORMAT_VERSION,
    VIDEOS_ARTIFACT,
    ArtifactStatus,
    RecoveryAction,
    RepairReport,
    SnapshotInfo,
    Store,
    StoreLoad,
    VerifyReport,
    default_level,
)
from repro.store.sharding import (
    SCHEME_ROUND_ROBIN,
    SHARD_FORMAT_VERSION,
    SHARDS_MANIFEST,
    ShardLayout,
    ShardSpec,
    load_layout,
    partition_names,
    save_sharded,
    split_database,
)

__all__ = [
    "ATOMICS_ARTIFACT",
    "DERIVED_ARTIFACTS",
    "INDEX_ARTIFACT",
    "MANIFEST_NAME",
    "REQUIRED_ARTIFACTS",
    "SCHEME_ROUND_ROBIN",
    "SHARDS_MANIFEST",
    "SHARD_FORMAT_VERSION",
    "SNAPSHOT_MANIFEST",
    "STORE_FORMAT_VERSION",
    "VIDEOS_ARTIFACT",
    "ArtifactStatus",
    "RecoveryAction",
    "RepairReport",
    "ShardLayout",
    "ShardSpec",
    "SnapshotInfo",
    "Store",
    "StoreLoad",
    "VerifyReport",
    "atomic_write_bytes",
    "atomic_write_json",
    "canonical_json_bytes",
    "default_level",
    "fsync_directory",
    "load_layout",
    "partition_names",
    "save_sharded",
    "sha256_hex",
    "split_database",
]
