"""Per-shard snapshot layout: partitioning a corpus across stores.

The sharded corpus (DESIGN.md §12) scales retrieval past what one index
build and one snapshot load can hold: a corpus is partitioned into N
*shards*, each owning a full crash-safe :class:`~repro.store.Store` in
its own subdirectory, under a top-level ``SHARDS.json`` manifest that
records the partitioning so queries (and recovery) know which videos
each shard owns without touching the shard stores themselves::

    <root>/
      SHARDS.json            # scheme + shard ids + per-shard video names
      shard-000/             # a complete Store (MANIFEST.json, snapshots/)
      shard-001/
      ...

The manifest is the authority on *ownership*; the shard stores are the
authority on *content*.  Recording video names in the manifest is what
lets a dead shard surface as named ``failed`` per-video outcomes — the
query layer can say exactly which videos are missing from a ranking even
when the shard's own store is unreadable.

Partitioning is deterministic round-robin over database insertion order,
so a split is reproducible and every shard gets a spread of the corpus
(not a contiguous prefix, which would concentrate hot videos).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ShardError
from repro.model.database import VideoDatabase
from repro.store.atomic import atomic_write_json
from repro.store.store import Store

#: On-disk format version of the shard layout manifest.
SHARD_FORMAT_VERSION = 1

SHARDS_MANIFEST = "SHARDS.json"

#: The (only, for now) partitioning scheme.
SCHEME_ROUND_ROBIN = "round-robin"


def shard_id(position: int) -> str:
    return f"shard-{position:03d}"


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity in a layout: id, directory, owned videos."""

    shard_id: str
    path: str
    videos: Tuple[str, ...]


@dataclass(frozen=True)
class ShardLayout:
    """A parsed, validated ``SHARDS.json``."""

    root: str
    scheme: str
    shards: Tuple[ShardSpec, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def video_names(self) -> List[str]:
        """Every owned video, in shard order then intra-shard order."""
        return [name for spec in self.shards for name in spec.videos]

    def spec_for(self, video: str) -> ShardSpec:
        """The shard owning one video."""
        for spec in self.shards:
            if video in spec.videos:
                return spec
        raise ShardError(
            f"no shard owns video {video!r}", path=self.root
        )

    def store_path(self, spec: ShardSpec) -> str:
        return os.path.join(self.root, spec.path)

    def store(self, spec: ShardSpec, keep: int = 2) -> Store:
        """The shard's snapshot store."""
        return Store(self.store_path(spec), keep=keep)


def partition_names(
    names: Sequence[str], n_shards: int
) -> List[List[str]]:
    """Round-robin split of video names into ``n_shards`` groups.

    Deterministic in input order; every group differs in size by at most
    one.  Shards may be empty when there are fewer videos than shards —
    an empty shard is legal (it simply contributes nothing to a query).
    """
    if n_shards < 1:
        raise ShardError(f"shard count must be >= 1, got {n_shards}")
    groups: List[List[str]] = [[] for __ in range(n_shards)]
    for position, name in enumerate(names):
        groups[position % n_shards].append(name)
    return groups


def split_database(
    database: VideoDatabase, n_shards: int
) -> List[VideoDatabase]:
    """Partition a database into per-shard databases (in memory).

    Video objects are shared (they are read-only under query); the
    registered atomic similarity lists of each video travel with it, at
    every level they were registered at.
    """
    groups = partition_names(database.names(), n_shards)
    parts: List[VideoDatabase] = []
    for group in groups:
        part = VideoDatabase()
        for name in group:
            video = database.get(name)
            part.add(video)
            for predicate in database.atomic_names():
                for level in range(1, video.n_levels + 1):
                    sim = database.atomic_list(predicate, name, level)
                    if sim is not None:
                        part.register_atomic(predicate, name, sim, level)
        parts.append(part)
    return parts


def save_sharded(
    database: VideoDatabase,
    root: Any,
    n_shards: int,
    keep: int = 2,
    fsync: bool = True,
) -> ShardLayout:
    """Split a corpus and snapshot every shard under one layout root.

    Each shard directory is a complete :class:`Store` (atomic writes,
    manifest commit point, quarantine) holding only that shard's videos;
    ``SHARDS.json`` is written last, atomically, so a crash mid-split
    leaves either the previous layout or the new one.  Re-splitting an
    existing root with the same shard count adds new snapshots to the
    existing shard stores.
    """
    root = os.fspath(root)
    parts = split_database(database, n_shards)
    existing = _read_layout_or_none(root)
    if existing is not None and existing.n_shards != n_shards:
        raise ShardError(
            f"layout at {root!r} already has {existing.n_shards} shard(s); "
            f"re-split with the same count or use a fresh directory",
            path=root,
        )
    os.makedirs(root, exist_ok=True)
    specs: List[ShardSpec] = []
    for position, part in enumerate(parts):
        name = shard_id(position)
        store = Store(os.path.join(root, name), keep=keep, fsync=fsync)
        store.save(part)
        specs.append(
            ShardSpec(shard_id=name, path=name, videos=tuple(part.names()))
        )
    manifest = {
        "format": SHARD_FORMAT_VERSION,
        "scheme": SCHEME_ROUND_ROBIN,
        "shards": [
            {
                "id": spec.shard_id,
                "path": spec.path,
                "videos": list(spec.videos),
            }
            for spec in specs
        ],
    }
    atomic_write_json(
        os.path.join(root, SHARDS_MANIFEST), manifest, fsync=fsync
    )
    return ShardLayout(
        root=root, scheme=SCHEME_ROUND_ROBIN, shards=tuple(specs)
    )


def _read_layout_or_none(root: str) -> "ShardLayout | None":
    path = os.path.join(os.fspath(root), SHARDS_MANIFEST)
    if not os.path.exists(path):
        return None
    return load_layout(root)


def load_layout(root: Any) -> ShardLayout:
    """Read and validate ``SHARDS.json``; structural junk is a typed error.

    Validation covers the layout manifest only — shard *stores* are
    loaded (and their damage recovered or surfaced) lazily at query
    time, so a corrupt shard never blocks discovering the layout.
    """
    root = os.fspath(root)
    path = os.path.join(root, SHARDS_MANIFEST)
    try:
        with open(path, "rb") as handle:
            document = json.loads(handle.read().decode("utf-8"))
    except FileNotFoundError:
        raise ShardError(
            f"no shard layout at {root!r} (missing {SHARDS_MANIFEST})",
            path=root,
        ) from None
    except (OSError, ValueError) as error:
        raise ShardError(
            f"unreadable shard manifest at {path!r}: {error}", path=path
        ) from error
    if not isinstance(document, dict):
        raise ShardError(
            f"shard manifest at {path!r} must be a JSON object", path=path
        )
    version = document.get("format")
    if version != SHARD_FORMAT_VERSION:
        raise ShardError(
            f"shard layout carries format {version!r}; this build reads "
            f"version {SHARD_FORMAT_VERSION}",
            path=path,
        )
    entries = document.get("shards")
    if not isinstance(entries, list) or not entries:
        raise ShardError(
            f"shard manifest at {path!r} lists no shards", path=path
        )
    specs: List[ShardSpec] = []
    seen_ids: Dict[str, None] = {}
    owners: Dict[str, str] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            raise ShardError(
                f"malformed shard entry in {path!r}: {entry!r}", path=path
            )
        try:
            identifier = str(entry["id"])
            rel_path = str(entry["path"])
            videos = tuple(str(name) for name in entry["videos"])
        except (KeyError, TypeError) as error:
            raise ShardError(
                f"malformed shard entry in {path!r}: {error!r}", path=path
            ) from error
        if identifier in seen_ids:
            raise ShardError(
                f"duplicate shard id {identifier!r} in {path!r}",
                path=path,
                shard=identifier,
            )
        seen_ids[identifier] = None
        if os.path.isabs(rel_path) or ".." in rel_path.split(os.sep):
            raise ShardError(
                f"shard {identifier!r} path {rel_path!r} escapes the "
                f"layout root",
                path=path,
                shard=identifier,
            )
        for name in videos:
            if name in owners:
                raise ShardError(
                    f"video {name!r} owned by both {owners[name]!r} and "
                    f"{identifier!r}",
                    path=path,
                    shard=identifier,
                )
            owners[name] = identifier
        specs.append(
            ShardSpec(shard_id=identifier, path=rel_path, videos=videos)
        )
    return ShardLayout(
        root=root,
        scheme=str(document.get("scheme", SCHEME_ROUND_ROBIN)),
        shards=tuple(specs),
    )
