"""Atomic, fsynced, checksummed file writes (DESIGN.md §9).

The one write protocol every durable artifact in the repository goes
through: serialize to bytes, write a sibling temp file, fsync it, then
``os.replace`` onto the final name — so a reader never observes a
half-written file, only the old content or the new.  A crash (or an
injected fault) at any step leaves at worst an orphaned ``*.tmp`` next
to an untouched original.

The two disk fault sites of the write path live here:
:data:`~repro.core.resilience.SITE_STORE_WRITE` fires before the temp
file is written and :data:`~repro.core.resilience.SITE_STORE_FSYNC`
before it is made durable, which is how the crash-recovery suite aims a
failure at every step of a snapshot save.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Tuple, Union

from repro.core import resilience
from repro.errors import ReproError, StoreWriteError

PathLike = Union[str, "os.PathLike[str]"]


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of a byte string."""
    return hashlib.sha256(data).hexdigest()


def canonical_json_bytes(payload: Any) -> bytes:
    """The canonical serialized form a manifest digest is computed over.

    Sorted keys and a fixed indent make the byte stream a pure function
    of the payload, so digests are reproducible across runs and
    platforms.
    """
    return (json.dumps(payload, indent=1, sort_keys=True) + "\n").encode(
        "utf-8"
    )


def fsync_directory(path: PathLike) -> None:
    """Flush a directory's entry table (best-effort off POSIX)."""
    try:
        descriptor = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return  # platforms without directory descriptors
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


def atomic_write_bytes(
    path: PathLike, data: bytes, fsync: bool = True
) -> Tuple[str, int]:
    """Write ``data`` to ``path`` atomically; return ``(sha256, size)``.

    Protocol: temp file + flush + fsync + rename, then a directory
    fsync so the rename itself is durable.  A failure part-way leaves
    ``path`` untouched (the temp file stays behind as evidence of the
    torn write; ``Store.repair`` sweeps it into quarantine).  OS
    failures surface as the typed
    :class:`~repro.errors.StoreWriteError`; injected faults propagate
    as themselves.
    """
    target = os.fspath(path)
    temp = target + ".tmp"
    try:
        resilience.fault(resilience.SITE_STORE_WRITE)
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                resilience.fault(resilience.SITE_STORE_FSYNC)
                os.fsync(handle.fileno())
        os.replace(temp, target)
        if fsync:
            fsync_directory(os.path.dirname(target) or ".")
    except ReproError:
        raise
    except OSError as error:
        raise StoreWriteError(
            f"atomic write of {target!r} failed: {error}", path=target
        ) from error
    return sha256_hex(data), len(data)


def atomic_write_json(
    path: PathLike, payload: Any, fsync: bool = True
) -> Tuple[str, int]:
    """Serialize ``payload`` canonically and write it atomically."""
    return atomic_write_bytes(path, canonical_json_bytes(payload), fsync=fsync)
