"""The ``clips`` dataset: an analyzer-produced video with recurring shots.

Every other built-in dataset is hand-annotated and therefore carries no
content signatures; this one is produced end-to-end by the
:class:`~repro.analyzer.annotate.VideoAnalyzer`, so each segment carries
the shot-averaged histogram signature the ``looks_like`` predicate
(DESIGN.md §16) scores against.  The synthetic "broadcast" alternates a
recurring anchor-desk shot with field reports and interviews: the
recurrences are near-duplicates of one underlying signature (within-shot
jitter only), which is exactly the structure query-by-example retrieval
is meant to surface.

Everything is seeded, so the dataset — signatures included — is
bit-stable across runs.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.analyzer.annotate import AnnotationRule, VideoAnalyzer
from repro.analyzer.cutdetect import CutDetectorConfig
from repro.analyzer.features import N_BINS, Frame, FrameStream
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video
from repro.model.metadata import ObjectInstance, Relationship

#: (label, base-signature key, frames) per shot, in broadcast order.  The
#: ``anchor`` base recurs four times; ``field`` twice; the rest are
#: one-offs — so by-example queries have both true repeats and near
#: misses to rank.
_SHOT_PLAN = (
    ("anchor", "anchor", 12),
    ("field-report", "field", 9),
    ("anchor", "anchor", 10),
    ("interview", "interview", 11),
    ("anchor", "anchor", 12),
    ("field-report", "field", 8),
    ("weather", "weather", 9),
    ("anchor", "anchor", 11),
)

_SEED = 97
_NOISE = 0.008


def _base_signature(rng: random.Random) -> List[float]:
    weights = [rng.random() ** 2 for __ in range(N_BINS)]
    total = sum(weights)
    return [weight / total for weight in weights]


def _jittered(base: List[float], rng: random.Random) -> tuple:
    noisy = [
        max(bin_value + rng.uniform(-_NOISE, _NOISE), 0.0)
        for bin_value in base
    ]
    total = sum(noisy) or 1.0
    return tuple(bin_value / total for bin_value in noisy)


def clips_stream() -> FrameStream:
    """The synthetic broadcast stream behind the ``clips`` dataset."""
    rng = random.Random(_SEED)
    bases: Dict[str, List[float]] = {}
    for __, key, ___ in _SHOT_PLAN:
        if key not in bases:
            bases[key] = _base_signature(rng)
    frames: List[Frame] = []
    boundaries: List[int] = []
    labels: List[str] = []
    for label, key, length in _SHOT_PLAN:
        boundaries.append(len(frames))
        labels.append(label)
        for __ in range(length):
            frames.append(Frame(_jittered(bases[key], rng)))
    return FrameStream(frames=frames, boundaries=boundaries, labels=labels)


def _rules() -> Dict[str, AnnotationRule]:
    anchor = ObjectInstance("anchor_1", "person", {"role": "anchor"}, 1.0)
    reporter = ObjectInstance(
        "reporter_1", "person", {"role": "reporter"}, 0.9
    )
    guest = ObjectInstance("guest_1", "person", {"role": "guest"}, 0.8)
    return {
        "anchor": AnnotationRule(
            objects=[anchor], attributes={"setting": "studio"}
        ),
        "field-report": AnnotationRule(
            objects=[reporter], attributes={"setting": "field"}
        ),
        "interview": AnnotationRule(
            objects=[anchor, guest],
            relationships=[Relationship("talks_to", ("anchor_1", "guest_1"))],
            attributes={"setting": "studio"},
        ),
        "weather": AnnotationRule(attributes={"setting": "studio"}),
    }


def clips_video() -> Video:
    """The analyzer-annotated broadcast (segments carry signatures)."""
    analyzer = VideoAnalyzer(config=CutDetectorConfig(), rules=_rules())
    return analyzer.annotate(
        clips_stream(), "clips", root_attributes={"genre": "news"}
    )


def clips_database() -> VideoDatabase:
    database = VideoDatabase()
    database.add(clips_video())
    return database
