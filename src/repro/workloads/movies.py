"""Narrative synthetic videos mirroring the paper's running examples.

Two hand-built hierarchies straight out of §2.1/§2.4 — a western in which
John Wayne shoots a bandit (formula (B)) and a Gulf-war news broadcast
(the bombing sub-plots, formula (A) and the airplane-altitude formula (C))
— plus a seeded random movie generator for bulk tests.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import WorkloadError
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, VideoNode, standard_level_names
from repro.model.metadata import (
    Fact,
    ObjectInstance,
    Relationship,
    SegmentMetadata,
    make_object,
)


def _frame(objects=(), relationships=(), **attributes) -> VideoNode:
    return VideoNode(
        metadata=SegmentMetadata(
            attributes=attributes,
            objects=objects,
            relationships=relationships,
        )
    )


def _group(metadata: SegmentMetadata, children: List[VideoNode]) -> VideoNode:
    node = VideoNode(metadata=metadata)
    for child in children:
        node.add_child(child)
    return node


def _john_wayne():
    return make_object("jw", "person", name="John Wayne")


def _bandit(identifier: str = "bandit_1"):
    # A person whose analysed role overrides the type attribute: queries
    # such as formula (B) test `type(y) = 'bandit'`.
    return ObjectInstance(
        identifier, "person", attributes={"type": "bandit", "name": "Scar"}
    )


def western_video() -> Video:
    """A 4-level western: video → scenes → shots → frames.

    Scene 2 realises formula (B): a frame with John Wayne and the bandit
    both holding guns, later a frame where he fires at that bandit, later
    a frame with the bandit on the floor.
    """
    # Scene 1: bandits approach the village on horses.
    scene1 = _group(
        SegmentMetadata(attributes={"synopsis": "bandits approach"}),
        [
            _group(
                SegmentMetadata(attributes={"camera": "wide"}),
                [
                    _frame(
                        objects=[
                            _bandit(),
                            make_object("horse_1", "horse"),
                        ],
                        relationships=[
                            Relationship("rides", ("bandit_1", "horse_1"))
                        ],
                        time_of_day="noon",
                    ),
                    _frame(
                        objects=[_bandit()],
                        time_of_day="noon",
                    ),
                ],
            )
        ],
    )
    # Scene 2: the shoot-out (formula B's witness).
    shootout_frames = [
        _frame(
            objects=[_john_wayne(), _bandit()],
            relationships=[
                Relationship("holds_gun", ("jw",)),
                Relationship("holds_gun", ("bandit_1",)),
            ],
        ),
        _frame(
            objects=[_john_wayne(), _bandit()],
            relationships=[Relationship("fires_at", ("jw", "bandit_1"))],
        ),
        _frame(
            objects=[_bandit()],
            relationships=[Relationship("on_floor", ("bandit_1",))],
        ),
    ]
    scene2 = _group(
        SegmentMetadata(attributes={"synopsis": "shoot-out"}),
        [
            _group(
                SegmentMetadata(attributes={"camera": "close"}),
                shootout_frames,
            )
        ],
    )
    # Scene 3: John Wayne reunites with his people.
    scene3 = _group(
        SegmentMetadata(attributes={"synopsis": "reunion"}),
        [
            _group(
                SegmentMetadata(attributes={"camera": "wide"}),
                [
                    _frame(
                        objects=[
                            _john_wayne(),
                            make_object("mary", "person", name="Mary"),
                        ],
                        relationships=[Relationship("embraces", ("jw", "mary"))],
                    )
                ],
            )
        ],
    )
    root = _group(
        SegmentMetadata(
            attributes={
                "type": "western",
                "title": "Rio Bravo Reproduction",
                "length_minutes": 90,
            },
            objects=[_john_wayne()],
        ),
        [scene1, scene2, scene3],
    )
    return Video(
        name="western",
        root=root,
        level_names={1: "video", 2: "scene", 3: "shot", 4: "frame"},
    )


def gulf_war_video() -> Video:
    """The §2.1 news hierarchy: bombing → ground war → surrender.

    The bombing sub-plot's first scene carries the airplane frames used by
    formula (C): a plane on the ground, then the same plane in the air at
    increasing heights (captured altitudes 0 → 300 → 900).
    """
    plane = lambda height: make_object(  # noqa: E731 - tiny local factory
        "plane_7", "airplane", height=height
    )
    takeoff_shot = _group(
        SegmentMetadata(attributes={"action": "take-off"}),
        [
            _frame(objects=[plane(0)], location="airbase"),
            _frame(objects=[plane(300)], location="airbase"),
            _frame(objects=[plane(900)], location="sky"),
        ],
    )
    strike_shot = _group(
        SegmentMetadata(attributes={"action": "strike"}),
        [
            _frame(
                objects=[
                    plane(700),
                    make_object("target_c2", "building", role="command"),
                ],
                relationships=[Relationship("bombs", ("plane_7", "target_c2"))],
            ),
            _frame(
                objects=[make_object("target_c2", "building", role="command")],
                relationships=[
                    Relationship("destroyed", ("target_c2",), confidence=0.9)
                ],
            ),
        ],
    )
    return_shot = _group(
        SegmentMetadata(attributes={"action": "return"}),
        [_frame(objects=[plane(400)], location="sky")],
    )
    bombing_scene = _group(
        SegmentMetadata(attributes={"synopsis": "bombing command centers"}),
        [takeoff_shot, strike_shot, return_shot],
    )
    airfield_scene = _group(
        SegmentMetadata(attributes={"synopsis": "bombing airfields"}),
        [
            _group(
                SegmentMetadata(attributes={"action": "strike"}),
                [
                    _frame(
                        objects=[
                            make_object("plane_9", "airplane", height=800),
                            make_object("runway_1", "runway"),
                        ],
                        relationships=[
                            Relationship("bombs", ("plane_9", "runway_1"))
                        ],
                    )
                ],
            )
        ],
    )
    bombing_subplot = _group(
        SegmentMetadata(attributes={"phase": "air campaign"}),
        [bombing_scene, airfield_scene],
    )
    ground_subplot = _group(
        SegmentMetadata(attributes={"phase": "ground war"}),
        [
            _group(
                SegmentMetadata(attributes={"synopsis": "allied advance"}),
                [
                    _group(
                        SegmentMetadata(attributes={"action": "advance"}),
                        [
                            _frame(
                                objects=[make_object("tank_3", "tank")],
                                location="desert",
                            )
                        ],
                    )
                ],
            )
        ],
    )
    surrender_subplot = _group(
        SegmentMetadata(attributes={"phase": "surrender"}),
        [
            _group(
                SegmentMetadata(attributes={"synopsis": "troops surrender"}),
                [
                    _group(
                        SegmentMetadata(attributes={"action": "surrender"}),
                        [
                            _frame(
                                objects=[
                                    make_object("soldiers_1", "crowd"),
                                ],
                                relationships=[
                                    Relationship("surrenders", ("soldiers_1",))
                                ],
                            )
                        ],
                    )
                ],
            )
        ],
    )
    root = _group(
        SegmentMetadata(
            attributes={
                "type": "news",
                "title": "Gulf War Broadcast",
            }
        ),
        [bombing_subplot, ground_subplot, surrender_subplot],
    )
    return Video(
        name="gulf-war",
        root=root,
        level_names=standard_level_names(5),
    )


def random_movie(
    name: str,
    n_scenes: int = 5,
    shots_per_scene: int = 4,
    frames_per_shot: int = 6,
    seed: Optional[int] = None,
    movie_type: str = "western",
) -> Video:
    """A seeded random movie with a plausible object cast and hierarchy."""
    if min(n_scenes, shots_per_scene, frames_per_shot) < 1:
        raise WorkloadError("hierarchy dimensions must be positive")
    rng = random.Random(seed)
    cast = [
        make_object(f"actor_{index}", "person", name=f"Actor {index}")
        for index in range(1, 5)
    ]
    props = [
        make_object("horse_1", "horse"),
        make_object("train_1", "train"),
        make_object("gun_1", "gun"),
    ]
    scenes = []
    for scene_index in range(n_scenes):
        shots = []
        for __ in range(shots_per_scene):
            frames = []
            for __ in range(frames_per_shot):
                population = rng.sample(cast + props, k=rng.randint(1, 3))
                relationships = []
                people = [
                    instance
                    for instance in population
                    if instance.type == "person"
                ]
                if len(people) >= 2 and rng.random() < 0.4:
                    relationships.append(
                        Relationship(
                            "talks_to",
                            (people[0].object_id, people[1].object_id),
                            confidence=rng.choice([1.0, 0.8, 0.6]),
                        )
                    )
                frames.append(
                    _frame(
                        objects=population,
                        relationships=relationships,
                        brightness=rng.randint(10, 90),
                    )
                )
            shots.append(
                _group(
                    SegmentMetadata(
                        attributes={"camera": rng.choice(["wide", "close"])}
                    ),
                    frames,
                )
            )
        scenes.append(
            _group(
                SegmentMetadata(
                    attributes={"synopsis": f"scene {scene_index + 1}"}
                ),
                shots,
            )
        )
    root = _group(
        SegmentMetadata(attributes={"type": movie_type, "title": name}),
        scenes,
    )
    return Video(
        name=name,
        root=root,
        level_names={1: "video", 2: "scene", 3: "shot", 4: "frame"},
    )


def example_database() -> VideoDatabase:
    """The two narrative videos plus a couple of random ones."""
    database = VideoDatabase()
    database.add(western_video())
    database.add(gulf_war_video())
    database.add(random_movie("prairie-dust", seed=7))
    database.add(random_movie("night-train", seed=11, movie_type="noir"))
    return database
