"""Workload generators: Casablanca (paper §4.1), synthetic perf data
(paper §4.2), and narrative example videos."""

from repro.workloads.casablanca import (
    casablanca_database,
    casablanca_video,
    man_woman_list,
    moving_train_list,
    query1,
)
from repro.workloads.movies import (
    example_database,
    gulf_war_video,
    random_movie,
    western_video,
)
from repro.workloads.synthetic import (
    PAPER_SIZES,
    PerfWorkload,
    perf_workload,
    random_similarity_list,
)

__all__ = [
    "casablanca_database",
    "casablanca_video",
    "moving_train_list",
    "man_woman_list",
    "query1",
    "western_video",
    "gulf_war_video",
    "random_movie",
    "example_database",
    "random_similarity_list",
    "perf_workload",
    "PerfWorkload",
    "PAPER_SIZES",
]
