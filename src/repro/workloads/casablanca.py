"""The paper's real-data test case: "The Making of Casablanca" (§4.1).

The paper segments a ~30-minute video into 50 shots by cut detection,
enters meta-data into the picture system, and publishes the similarity
tables of two atomic predicates:

* Table 1, ``Moving-Train``: ``[9, 9] → 9.787``.
* Table 2, ``Man-Woman``: ``[1,4] → 2.595``, ``[6,6] → 1.26``,
  ``[8,8] → 1.26``, ``[10,44] → 1.26``, ``[47,49] → 6.26`` (the low-valued
  rows "correspond to pictures/shots containing two men instead of a man
  and a woman").

This module reconstructs the dataset both ways:

* :func:`moving_train_list` / :func:`man_woman_list` give the published
  tables verbatim — the inputs the paper feeds to the video retrieval
  system;
* :func:`casablanca_video` builds 50 shots of metadata whose
  picture-retrieval scores for the weighted atomic queries
  :data:`MOVING_TRAIN_QUERY` / :data:`MAN_WOMAN_QUERY` equal those tables
  exactly (confidences encode the image-analysis uncertainty), so the full
  pipeline — metadata → picture system → list algorithms — reproduces
  Tables 1–4 end to end.

Expected derived results (verified in tests and benchmarks):

* Table 3, ``eventually Moving-Train``: ``[1, 9] → 9.787``.
* Table 4, Query 1 ``Man-Woman ∧ eventually Moving-Train``, ranked:
  ``[1,4] → 12.382``, ``[6,6]/[8,8] → 11.047``, ``[5,5]/[7,7]/[9,9] →
  9.787``, ``[47,49] → 6.26``, ``[10,44] → 1.26``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.simlist import SimilarityList
from repro.htl import ast, parse
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video, flat_video
from repro.model.metadata import (
    Fact,
    Relationship,
    SegmentMetadata,
    make_object,
)

N_SHOTS = 50

#: Table 1 of the paper.
MOVING_TRAIN_ROWS: List[Tuple[int, int, float]] = [(9, 9, 9.787)]
MOVING_TRAIN_MAX = 10.0

#: Table 2 of the paper.
MAN_WOMAN_ROWS: List[Tuple[int, int, float]] = [
    (1, 4, 2.595),
    (6, 6, 1.26),
    (8, 8, 1.26),
    (10, 44, 1.26),
    (47, 49, 6.26),
]
MAN_WOMAN_MAX = 8.0

#: Table 3 of the paper (result of ``eventually Moving-Train``).
EVENTUALLY_MOVING_TRAIN_ROWS: List[Tuple[int, int, float]] = [(1, 9, 9.787)]

#: Table 4 of the paper (Query 1 final result, ranked by similarity).
QUERY1_RANKED_ROWS: List[Tuple[int, int, float]] = [
    (1, 4, 12.382),
    (6, 6, 11.047),
    (8, 8, 11.047),
    (5, 5, 9.787),
    (7, 7, 9.787),
    (9, 9, 9.787),
    (47, 49, 6.26),
    (10, 44, 1.26),
]

#: Query 1 of §4.1 in HTL concrete syntax.
QUERY1_TEXT = "atomic('Man-Woman') and eventually atomic('Moving-Train')"

#: Atomic queries whose picture-retrieval scores reproduce Tables 1–2 from
#: the reconstructed metadata.  A single weighted relationship condition
#: carries the full weight; the analyzer confidence scales it to the
#: published actual value.
MOVING_TRAIN_QUERY_TEXT = (
    "weight(10.0, exists t . moving_train_scene(t))"
)
MAN_WOMAN_QUERY_TEXT = (
    "weight(8.0, exists x, y . man_woman_pair(x, y))"
)


def moving_train_list() -> SimilarityList:
    """Table 1 verbatim."""
    return SimilarityList.from_entries(
        [((beg, end), act) for beg, end, act in MOVING_TRAIN_ROWS],
        MOVING_TRAIN_MAX,
    )


def man_woman_list() -> SimilarityList:
    """Table 2 verbatim."""
    return SimilarityList.from_entries(
        [((beg, end), act) for beg, end, act in MAN_WOMAN_ROWS],
        MAN_WOMAN_MAX,
    )


def expected_eventually_moving_train() -> SimilarityList:
    """Table 3 verbatim."""
    return SimilarityList.from_entries(
        [((beg, end), act) for beg, end, act in EVENTUALLY_MOVING_TRAIN_ROWS],
        MOVING_TRAIN_MAX,
    )


def expected_query1() -> SimilarityList:
    """Table 4 as a (canonically ordered) similarity list."""
    return SimilarityList.from_entries(
        [((beg, end), act) for beg, end, act in QUERY1_RANKED_ROWS],
        MOVING_TRAIN_MAX + MAN_WOMAN_MAX,
    )


def query1() -> ast.Formula:
    """Query 1 as a formula."""
    return parse(QUERY1_TEXT)


def moving_train_query() -> ast.Formula:
    return parse(MOVING_TRAIN_QUERY_TEXT)


def man_woman_query() -> ast.Formula:
    return parse(MAN_WOMAN_QUERY_TEXT)


def _expand_rows(
    rows: List[Tuple[int, int, float]]
) -> Dict[int, float]:
    values: Dict[int, float] = {}
    for beg, end, act in rows:
        for shot in range(beg, end + 1):
            values[shot] = act
    return values


def casablanca_video() -> Video:
    """The reconstructed 50-shot video with scoring-faithful metadata.

    Each shot with a published ``Moving-Train`` score carries a train
    object and a ``moving_train_scene`` relationship whose confidence is
    ``score / 10``; each shot with a ``Man-Woman`` score carries a pair of
    people and a ``man_woman_pair`` relationship with confidence
    ``score / 8`` (the low-confidence shots being the two-men detections
    the paper describes).  Narrative attributes make the shots usable by
    the browsing examples.
    """
    train_scores = _expand_rows(MOVING_TRAIN_ROWS)
    pair_scores = _expand_rows(MAN_WOMAN_ROWS)
    segments: List[SegmentMetadata] = []
    for shot in range(1, N_SHOTS + 1):
        metadata = SegmentMetadata(
            attributes={"shot_number": shot, "kind": "documentary"}
        )
        if shot in train_scores:
            train = make_object("train_1", "train", wheels=8)
            metadata.add_object(train)
            metadata.add_relationship(
                Relationship(
                    "moving_train_scene",
                    ("train_1",),
                    confidence=train_scores[shot] / MOVING_TRAIN_MAX,
                )
            )
        if shot in pair_scores:
            confidence = pair_scores[shot] / MAN_WOMAN_MAX
            # High-confidence detections are a genuine man/woman pair;
            # the 1.26-valued shots were two men (paper §4.1).
            if pair_scores[shot] > 2.0:
                first = make_object("man_1", "person", gender="male")
                second = make_object("woman_1", "person", gender="female")
            else:
                first = make_object("man_1", "person", gender="male")
                second = make_object("man_2", "person", gender=Fact("female", 0.4))
            metadata.add_object(first)
            metadata.add_object(second)
            metadata.add_relationship(
                Relationship(
                    "man_woman_pair",
                    (first.object_id, second.object_id),
                    confidence=confidence,
                )
            )
        segments.append(metadata)
    root_metadata = SegmentMetadata(
        attributes={
            "title": "The Making of Casablanca",
            "type": "documentary",
            "duration_minutes": 30,
        }
    )
    return flat_video(
        "making-of-casablanca",
        segments,
        root_metadata=root_metadata,
        child_level_name="shot",
    )


def casablanca_database() -> VideoDatabase:
    """The video plus its registered atomic similarity tables."""
    database = VideoDatabase()
    database.add(casablanca_video())
    database.register_atomic(
        "Moving-Train", "making-of-casablanca", moving_train_list()
    )
    database.register_atomic(
        "Man-Woman", "making-of-casablanca", man_woman_list()
    )
    return database
