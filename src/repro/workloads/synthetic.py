"""Randomly generated workloads for the performance study (paper §4.2).

"Since we do not have access to large amount of real world data, we
compared the performance of the two approaches on randomly generated
data."  The stated parameters: the size is the number of shots in the
movie, and "approximately about one tenth of these shots satisfy the
atomic predicates P1 and P2".

:func:`random_similarity_list` draws runs of satisfying shots until the
target density is met; :func:`perf_workload` packages the P1/P2 pair used
by Tables 5 and 6, deterministic under a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.simlist import SimilarityList
from repro.errors import WorkloadError

#: The paper's measured sizes (number of shots).
PAPER_SIZES = (10_000, 50_000, 100_000)

#: Fraction of shots satisfying each atomic predicate (paper: "about one
#: tenth").
DEFAULT_SATISFY_FRACTION = 0.1

#: Mean length of a run of consecutive satisfying shots.  Real videos
#: satisfy predicates in contiguous stretches (that is the point of the
#: interval compression), so runs average a few shots.
DEFAULT_MEAN_RUN_LENGTH = 4.0


def random_similarity_list(
    n_segments: int,
    satisfy_fraction: float = DEFAULT_SATISFY_FRACTION,
    mean_run_length: float = DEFAULT_MEAN_RUN_LENGTH,
    maximum: float = 20.0,
    rng: random.Random = None,
) -> SimilarityList:
    """A random similarity list over ``1..n_segments``.

    Runs are placed left to right with geometric lengths (mean
    ``mean_run_length``) separated by geometric gaps sized so the expected
    covered fraction is ``satisfy_fraction``; actual values are uniform in
    ``(0, maximum]``.
    """
    if n_segments < 0:
        raise WorkloadError(f"negative segment count {n_segments}")
    if not 0.0 < satisfy_fraction < 1.0:
        raise WorkloadError(
            f"satisfy fraction must be in (0, 1), got {satisfy_fraction}"
        )
    if mean_run_length < 1.0:
        raise WorkloadError(
            f"mean run length must be >= 1, got {mean_run_length}"
        )
    rng = rng or random.Random()
    mean_gap = mean_run_length * (1.0 - satisfy_fraction) / satisfy_fraction
    entries: List[Tuple[Tuple[int, int], float]] = []
    position = 1 + _geometric(rng, mean_gap)
    while position <= n_segments:
        length = 1 + _geometric(rng, mean_run_length - 1.0)
        end = min(position + length - 1, n_segments)
        actual = rng.uniform(maximum * 0.05, maximum)
        entries.append(((position, end), actual))
        position = end + 2 + _geometric(rng, mean_gap)
    return SimilarityList.from_entries(entries, maximum)


def _geometric(rng: random.Random, mean: float) -> int:
    """A geometric variate with the given mean (0 when mean <= 0)."""
    if mean <= 0:
        return 0
    success = 1.0 / (mean + 1.0)
    count = 0
    while rng.random() > success:
        count += 1
    return count


@dataclass(frozen=True)
class PerfWorkload:
    """One size point of the §4.2 study: the P1 and P2 lists."""

    size: int
    lists: Dict[str, SimilarityList]

    @property
    def p1(self) -> SimilarityList:
        return self.lists["P1"]

    @property
    def p2(self) -> SimilarityList:
        return self.lists["P2"]


def perf_workload(
    size: int,
    seed: int = 1997,
    satisfy_fraction: float = DEFAULT_SATISFY_FRACTION,
    mean_run_length: float = DEFAULT_MEAN_RUN_LENGTH,
    extra_predicates: int = 0,
) -> PerfWorkload:
    """The P1/P2 pair (plus optional P3... for the complex formulas)."""
    rng = random.Random(seed * 1_000_003 + size)
    names = ["P1", "P2"] + [f"P{k + 3}" for k in range(extra_predicates)]
    lists = {
        name: random_similarity_list(
            size,
            satisfy_fraction=satisfy_fraction,
            mean_run_length=mean_run_length,
            rng=rng,
        )
        for name in names
    }
    return PerfWorkload(size=size, lists=lists)
