"""HTL → SQL translation for type (2) formulas.

The paper's SQL-based system "uses translations into SQL for computation
of the similarity tables for any conjunctive formula" (§4) — only the
*direct* system was restricted to type (1) in their implementation.  This
module covers type (2): similarity *tables* whose rows carry an
evaluation of the free object variables plus an interval list (paper
§3.2), encoded relationally as

    T_h(v_<x1> TEXT, ..., v_<xk> TEXT, beg_id INTEGER, end_id INTEGER, act REAL)

with a companion *evaluation* relation ``E_h(v_<x1>, ..., v_<xk>)``
holding every relevant evaluation — including those whose combined list
came out empty, which the joins must still see (the same subtlety the
in-memory tables handle by keeping empty rows).

Semantics match the engine's ``join_mode="inner"`` (the paper's
algorithm): evaluations join on shared variables; within a joined pair,
segment-level combination follows the §3.1 list algorithms.  The final
prefix-``∃`` projects the variables away with a per-segment ``MAX``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.ops import DEFAULT_UNTIL_THRESHOLD
from repro.core.simlist import SIM_EPS
from repro.core.tables import SimilarityTable
from repro.errors import UnsupportedFormulaError
from repro.htl import ast
from repro.htl.classify import FormulaClass, is_non_temporal, skeleton_class
from repro.htl.variables import free_object_vars

@dataclass(frozen=True)
class LoadedAtom:
    """An atom's relations as loaded by the system: entry rows, evaluation
    rows (including evaluations whose lists are empty), variables in
    column order, and the atom's maximum similarity."""

    entries_table: str
    evals_table: str
    variables: Tuple[str, ...]
    maximum: float


#: Loader callback: a non-temporal atom → its loaded relations.
AtomLoader = Callable[[ast.Formula], LoadedAtom]


@dataclass
class Type2Translation:
    """The generated script plus the output table's shape."""

    statements: List[str]
    output_table: str
    output_vars: Tuple[str, ...]
    maximum: float
    temp_tables: List[str]

    def script(self) -> str:
        return ";\n".join(self.statements) + ";"


def _columns(variables: Sequence[str]) -> List[str]:
    return [f"v_{name}" for name in variables]


class Type2SQLTranslator:
    """Translates type (2) formulas over relationally-loaded atom tables."""

    def __init__(self, threshold: float = DEFAULT_UNTIL_THRESHOLD):
        if threshold <= SIM_EPS:
            raise UnsupportedFormulaError(
                "the until threshold must be strictly positive"
            )
        self.threshold = threshold

    def translate(
        self, formula: ast.Formula, atom_loader: AtomLoader
    ) -> Type2Translation:
        actual_class = skeleton_class(formula)
        if actual_class > FormulaClass.TYPE2:
            raise UnsupportedFormulaError(
                "the type (2) SQL translation covers prefix-∃ conjunctive "
                f"formulas without the freeze operator; this one is "
                f"{actual_class.name}"
            )
        state = _State(atom_loader, self.threshold)
        prefix_vars: List[str] = []
        body = formula
        while isinstance(body, ast.Exists) and not is_non_temporal(body):
            prefix_vars.extend(body.vars)
            body = body.sub
        table = state.emit(body)
        output = state.project_exists(table, prefix_vars)
        return Type2Translation(
            statements=state.statements,
            output_table=output.name,
            output_vars=output.variables,
            maximum=table.maximum,
            temp_tables=state.temp_tables,
        )


@dataclass(frozen=True)
class _Rel:
    """One materialised subformula: entry + evaluation relations."""

    name: str
    evals: str
    variables: Tuple[str, ...]
    maximum: float

    def var_columns(self) -> List[str]:
        return _columns(self.variables)


class _State:
    def __init__(self, atom_loader: AtomLoader, threshold: float):
        self.atom_loader = atom_loader
        self.threshold = threshold
        self.statements: List[str] = []
        self.temp_tables: List[str] = []
        self._counter = 0

    # -- helpers -------------------------------------------------------------
    def _fresh(self, kind: str) -> str:
        self._counter += 1
        name = f"q{self._counter}_{kind}"
        self.temp_tables.append(name)
        return name

    def _create(self, kind: str, variables: Sequence[str], extra: str) -> str:
        name = self._fresh(kind)
        var_decls = "".join(f"{column} TEXT, " for column in _columns(variables))
        self.statements.append(f"CREATE TABLE {name} ({var_decls}{extra})")
        return name

    def _entries_rel(
        self, kind: str, variables: Sequence[str], maximum: float
    ) -> _Rel:
        name = self._create(
            kind, variables, "beg_id INTEGER, end_id INTEGER, act REAL"
        )
        evals = self._create(kind + "_ev", variables, "dummy INTEGER")
        return _Rel(name, evals, tuple(variables), maximum)

    def _expand(self, rel: _Rel) -> str:
        """Per-segment expansion, evaluation columns carried along."""
        expanded = self._create(
            "exp", rel.variables, "id INTEGER, act REAL"
        )
        var_cols = "".join(f"a.{c}, " for c in rel.var_columns())
        self.statements.append(
            f"INSERT INTO {expanded} "
            f"SELECT {var_cols}s.id, a.act FROM {rel.name} a, segments s "
            f"WHERE s.id BETWEEN a.beg_id AND a.end_id"
        )
        return expanded

    # -- dispatch ------------------------------------------------------------
    def emit(self, formula: ast.Formula) -> _Rel:
        if is_non_temporal(formula):
            return self._emit_atom(formula)
        if isinstance(formula, ast.And):
            return self._emit_and(formula)
        if isinstance(formula, ast.Next):
            return self._emit_next(formula)
        if isinstance(formula, ast.Eventually):
            return self._emit_eventually(formula)
        if isinstance(formula, ast.Until):
            return self._emit_until(formula)
        raise UnsupportedFormulaError(
            f"cannot translate {type(formula).__name__} in a type (2) formula"
        )

    # -- atoms ------------------------------------------------------------
    def _emit_atom(self, atom: ast.Formula) -> _Rel:
        loaded = self.atom_loader(atom)
        expected = tuple(sorted(free_object_vars(atom)))
        if loaded.variables != expected:
            raise UnsupportedFormulaError(
                f"atom loaded with variables {loaded.variables}, "
                f"expected {expected}"
            )
        return _Rel(
            loaded.entries_table,
            loaded.evals_table,
            loaded.variables,
            loaded.maximum,
        )

    # -- conjunction -----------------------------------------------------------
    def _emit_and(self, formula: ast.And) -> _Rel:
        left = self.emit(formula.left)
        right = self.emit(formula.right)
        out_vars = _merge_vars(left.variables, right.variables)
        out = self._entries_rel("and", out_vars, left.maximum + right.maximum)

        pairs = self._pairs(left, right, out_vars)
        left_expanded = self._expand(left)
        right_expanded = self._expand(right)

        out_cols_from = _pair_projection(out_vars, "p")

        def eq(alias_a: str, alias_b: str, vars_):
            return " AND ".join(
                f"{alias_a}.v_{v} = {alias_b}.v_{v}" for v in vars_
            )

        # Matched segments: sum.
        conditions = ["x.id = y.id"]
        if left.variables:
            conditions.append(eq("x", "p", left.variables))
        if right.variables:
            conditions.append(eq("y", "p", right.variables))
        self.statements.append(
            f"INSERT INTO {out.name} "
            f"SELECT {out_cols_from}x.id, x.id, x.act + y.act "
            f"FROM {pairs.name} p, {left_expanded} x, {right_expanded} y "
            f"WHERE {' AND '.join(conditions)}"
        )
        # Left-only segments within a pair.
        self._emit_one_sided(
            out, pairs, left, left_expanded, right, right_expanded, out_cols_from
        )
        # Right-only segments within a pair.
        self._emit_one_sided(
            out, pairs, right, right_expanded, left, left_expanded, out_cols_from
        )
        self._copy_evals(out, pairs)
        return out

    def _emit_one_sided(
        self,
        out: _Rel,
        pairs: "_Pairs",
        mine: _Rel,
        mine_expanded: str,
        other: _Rel,
        other_expanded: str,
        out_cols_from: str,
    ) -> None:
        conditions = []
        if mine.variables:
            conditions.append(
                " AND ".join(
                    f"x.v_{v} = p.v_{v}" for v in mine.variables
                )
            )
        else:
            conditions.append("1 = 1")
        anti_conditions = ["y.id = x.id"] + [
            f"y.v_{v} = p.v_{v}" for v in other.variables
        ]
        conditions.append(
            f"NOT EXISTS (SELECT * FROM {other_expanded} y "
            f"WHERE {' AND '.join(anti_conditions)})"
        )
        self.statements.append(
            f"INSERT INTO {out.name} "
            f"SELECT {out_cols_from}x.id, x.id, x.act "
            f"FROM {pairs.name} p, {mine_expanded} x "
            f"WHERE {' AND '.join(conditions)}"
        )

    # -- next -----------------------------------------------------------------
    def _emit_next(self, formula: ast.Next) -> _Rel:
        operand = self.emit(formula.sub)
        out = self._entries_rel("next", operand.variables, operand.maximum)
        var_cols = "".join(f"a.{c}, " for c in operand.var_columns())
        self.statements.append(
            f"INSERT INTO {out.name} "
            f"SELECT {var_cols}GREATEST(a.beg_id - 1, 1), a.end_id - 1, a.act "
            f"FROM {operand.name} a WHERE a.end_id > 1"
        )
        self._copy_eval_rows(out, operand)
        return out

    # -- eventually --------------------------------------------------------------
    def _emit_eventually(self, formula: ast.Eventually) -> _Rel:
        operand = self.emit(formula.sub)
        out = self._entries_rel("ev", operand.variables, operand.maximum)
        var_cols = "".join(f"a.{c}, " for c in operand.var_columns())
        group_eq = " AND ".join(
            f"{{alias}}.v_{v} = a.v_{v}" for v in operand.variables
        )
        prev_eq = (group_eq.format(alias="p") + " AND ") if group_eq else ""
        suff_eq = (group_eq.format(alias="b") + " AND ") if group_eq else ""
        self.statements.append(
            f"INSERT INTO {out.name} "
            f"SELECT {var_cols}"
            f"COALESCE((SELECT MAX(p.end_id) FROM {operand.name} p "
            f"WHERE {prev_eq}p.end_id < a.end_id), 0) + 1, "
            f"a.end_id, "
            f"(SELECT MAX(b.act) FROM {operand.name} b "
            f"WHERE {suff_eq}b.end_id >= a.end_id) "
            f"FROM {operand.name} a"
        )
        self._copy_eval_rows(out, operand)
        return out

    # -- until -----------------------------------------------------------------
    def _emit_until(self, formula: ast.Until) -> _Rel:
        left = self.emit(formula.left)
        right = self.emit(formula.right)
        out_vars = _merge_vars(left.variables, right.variables)
        out = self._entries_rel("until", out_vars, right.maximum)
        bound = self.threshold * left.maximum - SIM_EPS * left.maximum

        # Thresholded g entries, keyed by the g-side evaluation.
        kept = self._create(
            "kept", left.variables, "beg_id INTEGER, end_id INTEGER"
        )
        g_cols = "".join(f"g.{c}, " for c in left.var_columns())
        self.statements.append(
            f"INSERT INTO {kept} SELECT {g_cols}g.beg_id, g.end_id "
            f"FROM {left.name} g WHERE g.act >= {bound!r}"
        )
        group_eq = " AND ".join(
            f"{{a}}.v_{v} = {{b}}.v_{v}" for v in left.variables
        )

        def grp(a: str, b: str) -> str:
            return (group_eq.format(a=a, b=b) + " AND ") if group_eq else ""

        run_ends = self._create("runends", left.variables, "id INTEGER")
        k_cols = "".join(f"k.{c}, " for c in left.var_columns())
        self.statements.append(
            f"INSERT INTO {run_ends} SELECT {k_cols}k.end_id FROM {kept} k "
            f"WHERE NOT EXISTS (SELECT * FROM {kept} n "
            f"WHERE {grp('n', 'k')}n.beg_id = k.end_id + 1)"
        )
        runs = self._create(
            "runs", left.variables, "beg_id INTEGER, end_id INTEGER"
        )
        s_cols = "".join(f"s.{c}, " for c in left.var_columns())
        self.statements.append(
            f"INSERT INTO {runs} "
            f"SELECT {s_cols}s.beg_id, (SELECT MIN(e.id) FROM {run_ends} e "
            f"WHERE {grp('e', 's')}e.id >= s.beg_id) "
            f"FROM {kept} s WHERE NOT EXISTS (SELECT * FROM {kept} p "
            f"WHERE {grp('p', 's')}p.end_id = s.beg_id - 1)"
        )

        # Candidate witnesses per (pair, run): the pair relation aligns
        # the g-side and h-side evaluations on shared variables.
        pairs = self._pairs(left, right, out_vars)
        cand_vars = out_vars
        cand = self._create(
            "cand", cand_vars, "rbeg INTEGER, rend INTEGER, hend INTEGER, act REAL"
        )
        p_cols = "".join(f"p.{c}, " for c in _columns(cand_vars))
        r_eq = "".join(
            f"r.v_{v} = p.v_{v} AND " for v in left.variables
        )
        h_eq = "".join(
            f"h.v_{v} = p.v_{v} AND " for v in right.variables
        )
        self.statements.append(
            f"INSERT INTO {cand} "
            f"SELECT {p_cols}r.beg_id, r.end_id, h.end_id, h.act "
            f"FROM {pairs.name} p, {runs} r, {right.name} h "
            f"WHERE {r_eq}{h_eq}"
            f"h.beg_id >= r.beg_id AND h.beg_id <= r.end_id + 1"
        )
        x_eq = "".join(
            f"x.v_{v} = p.v_{v} AND " for v in right.variables
        )
        self.statements.append(
            f"INSERT INTO {cand} "
            f"SELECT {p_cols}r.beg_id, r.end_id, h.end_id, h.act "
            f"FROM {pairs.name} p, {runs} r, {right.name} h "
            f"WHERE {r_eq}{h_eq}"
            f"h.end_id = (SELECT MIN(x.end_id) FROM {right.name} x "
            f"WHERE {x_eq}x.end_id >= r.beg_id) AND h.beg_id < r.beg_id"
        )

        # In-run pieces per (evaluation, run).
        c_group = "".join(
            f"{{a}}.v_{v} = c.v_{v} AND " for v in cand_vars
        )
        c_cols = "".join(f"c.{col}, " for col in _columns(cand_vars))

        def prev_sub(alias: str) -> str:
            return (
                f"(SELECT MAX({alias}.hend) FROM {cand} {alias} "
                f"WHERE {c_group.format(a=alias)}{alias}.rbeg = c.rbeg "
                f"AND {alias}.hend < c.hend)"
            )

        self.statements.append(
            f"INSERT INTO {out.name} "
            f"SELECT {c_cols}"
            f"GREATEST(c.rbeg, COALESCE({prev_sub('c2')}, 0) + 1), "
            f"LEAST(c.hend, c.rend), "
            f"(SELECT MAX(c3.act) FROM {cand} c3 "
            f"WHERE {c_group.format(a='c3')}c3.rbeg = c.rbeg "
            f"AND c3.hend >= c.hend) "
            f"FROM {cand} c "
            f"WHERE LEAST(c.hend, c.rend) >= "
            f"GREATEST(c.rbeg, COALESCE({prev_sub('c4')}, 0) + 1)"
        )

        # Outside-run pieces per pair: h segments not covered by the
        # paired g-evaluation's runs keep their direct value.
        expanded_h = self._expand(right)
        expanded_runs = self._create("exprun", left.variables, "id INTEGER")
        r_cols = "".join(f"r.{c}, " for c in left.var_columns())
        self.statements.append(
            f"INSERT INTO {expanded_runs} "
            f"SELECT {r_cols}s.id FROM {runs} r, segments s "
            f"WHERE s.id BETWEEN r.beg_id AND r.end_id"
        )
        xh_eq = "".join(
            f"x.v_{v} = p.v_{v} AND " for v in right.variables
        )
        er_eq = "".join(
            f"e.v_{v} = p.v_{v} AND " for v in left.variables
        )
        self.statements.append(
            f"INSERT INTO {out.name} "
            f"SELECT {p_cols}x.id, x.id, x.act "
            f"FROM {pairs.name} p, {expanded_h} x "
            f"WHERE {xh_eq}"
            f"NOT EXISTS (SELECT * FROM {expanded_runs} e "
            f"WHERE {er_eq}e.id = x.id)"
        )
        self._copy_evals(out, pairs)
        return out

    # -- pairs and evaluation bookkeeping -----------------------------------------
    def _pairs(self, left: _Rel, right: _Rel, out_vars: Tuple[str, ...]) -> "_Pairs":
        """The joined evaluation relation (inner join on shared vars)."""
        name = self._create("pairs", out_vars, "dummy INTEGER")
        select_cols = []
        for variable in out_vars:
            source = "a" if variable in left.variables else "b"
            select_cols.append(f"{source}.v_{variable}")
        shared = [v for v in left.variables if v in right.variables]
        join_condition = " AND ".join(
            f"a.v_{v} = b.v_{v}" for v in shared
        )
        where = f" WHERE {join_condition}" if join_condition else ""
        columns = ", ".join(select_cols) if select_cols else "1"
        trailer = ", 1" if select_cols else ""
        self.statements.append(
            f"INSERT INTO {name} "
            f"SELECT DISTINCT {columns}{trailer} "
            f"FROM {left.evals} a, {right.evals} b{where}"
        )
        return _Pairs(name, out_vars)

    def _copy_evals(self, out: _Rel, pairs: "_Pairs") -> None:
        columns = ", ".join(f"p.{c}" for c in _columns(pairs.variables)) or "1"
        trailer = ", 1" if pairs.variables else ""
        self.statements.append(
            f"INSERT INTO {out.evals} SELECT {columns}{trailer} "
            f"FROM {pairs.name} p"
        )

    def _copy_eval_rows(self, out: _Rel, operand: _Rel) -> None:
        columns = ", ".join(f"e.{c}" for c in _columns(operand.variables))
        if columns:
            self.statements.append(
                f"INSERT INTO {out.evals} SELECT {columns}, 1 "
                f"FROM {operand.evals} e"
            )
        else:
            self.statements.append(
                f"INSERT INTO {out.evals} SELECT 1 FROM {operand.evals} e"
            )

    # -- final ∃ projection ------------------------------------------------------
    def project_exists(
        self, rel: _Rel, prefix_vars: Sequence[str]
    ) -> "_Pairs":
        remaining = tuple(
            v for v in rel.variables if v not in set(prefix_vars)
        )
        if remaining:
            raise UnsupportedFormulaError(
                f"free variables {remaining} not bound by the ∃ prefix"
            )
        expanded = self._expand(rel)
        out = self._create("final", (), "beg_id INTEGER, end_id INTEGER, act REAL")
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT x.id, x.id, MAX(x.act) FROM {expanded} x GROUP BY x.id"
        )
        return _Pairs(out, ())


@dataclass(frozen=True)
class _Pairs:
    name: str
    variables: Tuple[str, ...]


def _merge_vars(
    left: Tuple[str, ...], right: Tuple[str, ...]
) -> Tuple[str, ...]:
    merged = list(left)
    for variable in right:
        if variable not in merged:
            merged.append(variable)
    return tuple(merged)


def _pair_projection(
    out_vars: Tuple[str, ...], pairs_alias: str
) -> str:
    """Leading select-list fragment for the evaluation columns ('' or
    'p.v_x, p.v_y, ')."""
    return "".join(f"{pairs_alias}.v_{v}, " for v in out_vars)
