"""HTL → SQL translation (paper §4, second system).

The paper's SQL-based system "first generates a sequence of SQL queries
which take as inputs the tables for g1 and g2 and output the table
corresponding to g, and then executes the sequence of SQL queries"; it
notes the generation is non-trivial (full details were deferred to the
first author's M.S. thesis, ref [22]) and that "the intermediate relations
may become quite large".  This module reconstructs such a translation for
type (1) formulas — the class the experiments measure.

Table convention: every (sub)formula value is a relation
``(beg_id INTEGER, end_id INTEGER, act REAL)`` of disjoint intervals, the
similarity-table shape of §3.1; atomic predicates are loaded in that shape
and a helper relation ``segments(id)`` enumerates the axis.  Per-operator
plans (``m`` is the Python-side maximum of the operand, a function of the
formula):

* conjunction — expand both operands to per-segment rows (the "large
  intermediate relations"), hash-join the ids, then two anti-joins for the
  one-sided partial matches;
* next — interval arithmetic, one linear statement;
* eventually — boundary pieces between consecutive interval ends, each
  valued by a correlated suffix ``MAX``;
* until — threshold filter, gaps-and-islands run coalescing, candidate
  matching of runs against witness intervals, correlated grouped suffix
  ``MAX`` for the in-run pieces, and an expanded anti-join for the
  outside-run pieces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.ops import DEFAULT_UNTIL_THRESHOLD
from repro.core.simlist import SIM_EPS
from repro.errors import UnsupportedFormulaError
from repro.htl import ast
from repro.htl.classify import FormulaClass, skeleton_class


@dataclass
class Translation:
    """The generated SQL script and its bookkeeping."""

    statements: List[str]
    output_table: str
    maximum: float
    temp_tables: List[str] = field(default_factory=list)

    def script(self) -> str:
        return ";\n".join(self.statements) + ";"


class SQLTranslator:
    """Translates type (1) formulas over named atomic predicates."""

    def __init__(self, threshold: float = DEFAULT_UNTIL_THRESHOLD):
        if threshold <= SIM_EPS:
            raise UnsupportedFormulaError(
                "the until threshold must be strictly positive"
            )
        self.threshold = threshold

    def translate(
        self,
        formula: ast.Formula,
        atom_tables: Dict[str, str],
        atom_maxima: Dict[str, float],
    ) -> Translation:
        """Produce the SQL script computing the formula's similarity table.

        ``atom_tables`` maps atomic-predicate names to their relation
        names; ``atom_maxima`` to their max similarity values.
        """
        if skeleton_class(formula) > FormulaClass.TYPE1:
            raise UnsupportedFormulaError(
                "the SQL-based system implements type (1) formulas (as in "
                "the paper's experiments)"
            )
        state = _TranslationState(atom_tables, atom_maxima, self.threshold)
        table, maximum = state.emit(formula)
        return Translation(
            statements=state.statements,
            output_table=table,
            maximum=maximum,
            temp_tables=state.temp_tables,
        )


class _TranslationState:
    def __init__(
        self,
        atom_tables: Dict[str, str],
        atom_maxima: Dict[str, float],
        threshold: float,
    ):
        self.atom_tables = atom_tables
        self.atom_maxima = atom_maxima
        self.threshold = threshold
        self.statements: List[str] = []
        self.temp_tables: List[str] = []
        self._counter = 0

    # -- helpers -------------------------------------------------------------
    def _fresh(self, kind: str) -> str:
        self._counter += 1
        name = f"t{self._counter}_{kind}"
        self.temp_tables.append(name)
        return name

    def _create_entries(self, kind: str) -> str:
        name = self._fresh(kind)
        self.statements.append(
            f"CREATE TABLE {name} (beg_id INTEGER, end_id INTEGER, act REAL)"
        )
        return name

    def _create_ids(self, kind: str, with_act: bool = False) -> str:
        name = self._fresh(kind)
        act = ", act REAL" if with_act else ""
        self.statements.append(f"CREATE TABLE {name} (id INTEGER{act})")
        return name

    def _expand(self, entries: str) -> str:
        """Per-segment expansion — the paper's 'quite large' intermediates."""
        expanded = self._create_ids("exp", with_act=True)
        self.statements.append(
            f"INSERT INTO {expanded} "
            f"SELECT s.id, a.act FROM {entries} a, segments s "
            f"WHERE s.id BETWEEN a.beg_id AND a.end_id"
        )
        return expanded

    # -- dispatch ------------------------------------------------------------
    def emit(self, formula: ast.Formula) -> Tuple[str, float]:
        if isinstance(formula, ast.AtomicRef):
            if formula.name not in self.atom_tables:
                raise UnsupportedFormulaError(
                    f"no similarity table loaded for atomic predicate "
                    f"{formula.name!r}"
                )
            return (
                self.atom_tables[formula.name],
                self.atom_maxima[formula.name],
            )
        if isinstance(formula, ast.And):
            return self._emit_and(formula)
        if isinstance(formula, ast.Next):
            return self._emit_next(formula)
        if isinstance(formula, ast.Eventually):
            return self._emit_eventually(formula)
        if isinstance(formula, ast.Until):
            return self._emit_until(formula)
        raise UnsupportedFormulaError(
            f"the SQL translation covers type (1) operators over named "
            f"atomic predicates; cannot translate {type(formula).__name__} "
            "(evaluate metadata atoms through the picture system first)"
        )

    # -- operators ------------------------------------------------------------
    def _emit_and(self, formula: ast.And) -> Tuple[str, float]:
        left_table, left_max = self.emit(formula.left)
        right_table, right_max = self.emit(formula.right)
        left_expanded = self._expand(left_table)
        right_expanded = self._expand(right_table)
        out = self._create_entries("and")
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT x.id, x.id, x.act + y.act "
            f"FROM {left_expanded} x, {right_expanded} y WHERE x.id = y.id"
        )
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT x.id, x.id, x.act FROM {left_expanded} x "
            f"WHERE NOT EXISTS (SELECT * FROM {right_expanded} y "
            f"WHERE y.id = x.id)"
        )
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT y.id, y.id, y.act FROM {right_expanded} y "
            f"WHERE NOT EXISTS (SELECT * FROM {left_expanded} x "
            f"WHERE x.id = y.id)"
        )
        return out, left_max + right_max

    def _emit_next(self, formula: ast.Next) -> Tuple[str, float]:
        operand, maximum = self.emit(formula.sub)
        out = self._create_entries("next")
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT GREATEST(a.beg_id - 1, 1), a.end_id - 1, a.act "
            f"FROM {operand} a WHERE a.end_id > 1"
        )
        return out, maximum

    def _emit_eventually(self, formula: ast.Eventually) -> Tuple[str, float]:
        operand, maximum = self.emit(formula.sub)
        out = self._create_entries("ev")
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT COALESCE((SELECT MAX(p.end_id) FROM {operand} p "
            f"WHERE p.end_id < a.end_id), 0) + 1, "
            f"a.end_id, "
            f"(SELECT MAX(b.act) FROM {operand} b WHERE b.end_id >= a.end_id) "
            f"FROM {operand} a"
        )
        return out, maximum

    def _emit_until(self, formula: ast.Until) -> Tuple[str, float]:
        left_table, left_max = self.emit(formula.left)
        right_table, right_max = self.emit(formula.right)
        bound = self.threshold * left_max - SIM_EPS * left_max

        kept = self._fresh("kept")
        self.statements.append(
            f"CREATE TABLE {kept} (beg_id INTEGER, end_id INTEGER)"
        )
        self.statements.append(
            f"INSERT INTO {kept} SELECT g.beg_id, g.end_id "
            f"FROM {left_table} g WHERE g.act >= {bound!r}"
        )
        # Gaps-and-islands: coalesce adjacent kept intervals into runs.
        run_ends = self._create_ids("runends")
        self.statements.append(
            f"INSERT INTO {run_ends} SELECT k.end_id FROM {kept} k "
            f"WHERE NOT EXISTS (SELECT * FROM {kept} n "
            f"WHERE n.beg_id = k.end_id + 1)"
        )
        runs = self._fresh("runs")
        self.statements.append(
            f"CREATE TABLE {runs} (beg_id INTEGER, end_id INTEGER)"
        )
        self.statements.append(
            f"INSERT INTO {runs} "
            f"SELECT s.beg_id, (SELECT MIN(e.id) FROM {run_ends} e "
            f"WHERE e.id >= s.beg_id) "
            f"FROM {kept} s WHERE NOT EXISTS (SELECT * FROM {kept} p "
            f"WHERE p.end_id = s.beg_id - 1)"
        )
        # Candidate witnesses per run: h intervals starting inside the run
        # (or one past it), plus the single interval straddling the run's
        # start from the left.
        cand = self._fresh("cand")
        self.statements.append(
            f"CREATE TABLE {cand} "
            f"(rbeg INTEGER, rend INTEGER, hend INTEGER, act REAL)"
        )
        self.statements.append(
            f"INSERT INTO {cand} "
            f"SELECT r.beg_id, r.end_id, h.end_id, h.act "
            f"FROM {runs} r, {right_table} h "
            f"WHERE h.beg_id >= r.beg_id AND h.beg_id <= r.end_id + 1"
        )
        self.statements.append(
            f"INSERT INTO {cand} "
            f"SELECT r.beg_id, r.end_id, h.end_id, h.act "
            f"FROM {runs} r, {right_table} h "
            f"WHERE h.end_id = (SELECT MIN(x.end_id) FROM {right_table} x "
            f"WHERE x.end_id >= r.beg_id) AND h.beg_id < r.beg_id"
        )
        out = self._create_entries("until")
        # In-run pieces: between consecutive candidate ends, valued by the
        # suffix maximum of candidate actuals within the run.
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT GREATEST(c.rbeg, COALESCE((SELECT MAX(c2.hend) "
            f"FROM {cand} c2 WHERE c2.rbeg = c.rbeg AND c2.hend < c.hend), 0) + 1), "
            f"LEAST(c.hend, c.rend), "
            f"(SELECT MAX(c3.act) FROM {cand} c3 "
            f"WHERE c3.rbeg = c.rbeg AND c3.hend >= c.hend) "
            f"FROM {cand} c "
            f"WHERE LEAST(c.hend, c.rend) >= GREATEST(c.rbeg, "
            f"COALESCE((SELECT MAX(c4.hend) FROM {cand} c4 "
            f"WHERE c4.rbeg = c.rbeg AND c4.hend < c.hend), 0) + 1)"
        )
        # Outside-run pieces: witness segments not covered by any run keep
        # their direct value (per-segment expansion + hash anti-join).
        expanded_h = self._expand(right_table)
        expanded_runs = self._create_ids("exprun")
        self.statements.append(
            f"INSERT INTO {expanded_runs} "
            f"SELECT s.id FROM {runs} r, segments s "
            f"WHERE s.id BETWEEN r.beg_id AND r.end_id"
        )
        self.statements.append(
            f"INSERT INTO {out} "
            f"SELECT x.id, x.id, x.act FROM {expanded_h} x "
            f"WHERE NOT EXISTS (SELECT * FROM {expanded_runs} e "
            f"WHERE e.id = x.id)"
        )
        return out, right_max
