"""Mini relational engine: SQL subset lexer, parser, catalog, executor."""

from repro.sqlbaseline.relational.executor import Database, ExecutionStats, ResultSet
from repro.sqlbaseline.relational.relation import Catalog, Relation

__all__ = ["Database", "ResultSet", "ExecutionStats", "Catalog", "Relation"]
