"""AST of the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------
class Expr:
    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    value: Union[str, int, float, None, bool]


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A column reference, optionally qualified: ``alias.column``."""

    table: Optional[str]
    column: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str  # 'NOT', '-'
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    op: str  # comparison, arithmetic, AND, OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar or aggregate function call; ``star`` marks ``COUNT(*)``."""

    name: str
    args: Tuple[Expr, ...]
    star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class CaseWhen(Expr):
    branches: Tuple[Tuple[Expr, Expr], ...]
    otherwise: Optional[Expr]


@dataclass(frozen=True)
class ExistsExpr(Expr):
    query: "Select"
    negated: bool = False


@dataclass(frozen=True)
class InExpr(Expr):
    operand: Expr
    values: Optional[Tuple[Expr, ...]]  # literal list form
    query: Optional["Select"]  # subquery form
    negated: bool = False


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    query: "Select"


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE pattern match (``%`` any run, ``_`` any one char)."""

    operand: Expr
    pattern: Expr
    negated: bool = False


AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG"})
SCALAR_FUNCTIONS = frozenset(
    {"ABS", "COALESCE", "GREATEST", "LEAST", "LENGTH", "UPPER", "LOWER"}
)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------
class Statement:
    __slots__ = ()


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: str  # 'INTEGER', 'REAL', 'TEXT'


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: Tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class InsertValues(Statement):
    table: str
    columns: Tuple[str, ...]  # empty = all, in declared order
    rows: Tuple[Tuple[Expr, ...], ...]


@dataclass(frozen=True)
class InsertSelect(Statement):
    table: str
    columns: Tuple[str, ...]
    query: "SelectLike"


@dataclass(frozen=True)
class Delete(Statement):
    table: str
    where: Optional[Expr]


@dataclass(frozen=True)
class Update(Statement):
    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr]


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class StarItem:
    """``*`` or ``alias.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: str


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Select(Statement):
    items: Tuple[Union[SelectItem, StarItem], ...]
    tables: Tuple[TableRef, ...]
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class UnionAll(Statement):
    parts: Tuple[Select, ...]


SelectLike = Union[Select, UnionAll]
