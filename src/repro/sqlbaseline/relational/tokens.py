"""Tokenizer for the SQL subset of the mini relational engine.

The subset mirrors what the paper's SQL-based system needs (Sybase-era
SQL-92): DDL, INSERT (VALUES and SELECT forms), SELECT with joins,
subqueries, aggregation, set operations and ordering.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Union

from repro.errors import SQLSyntaxError

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
        "ASC", "DESC", "LIMIT", "DISTINCT", "AS", "AND", "OR", "NOT",
        "IN", "EXISTS", "BETWEEN", "IS", "NULL", "LIKE",
        "CREATE", "TABLE", "INDEX", "ON", "DROP", "IF",
        "INSERT", "INTO", "VALUES", "DELETE", "UPDATE", "SET",
        "UNION", "ALL", "CASE", "WHEN", "THEN", "ELSE", "END",
        "INTEGER", "INT", "REAL", "FLOAT", "TEXT", "VARCHAR",
        "TRUE", "FALSE",
    }
)

_TWO_CHAR = ("<=", ">=", "<>", "!=", "||")
_ONE_CHAR = "()*,.+-/<>=;"


@dataclass(frozen=True)
class SQLToken:
    kind: str  # 'keyword', 'ident', 'number', 'string', 'symbol', 'eof'
    value: Union[str, int, float]
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind == "symbol" and self.value == symbol


def tokenize_sql(text: str) -> List[SQLToken]:
    """Tokenize SQL text (keywords case-insensitive, normalised upper)."""
    return list(_scan(text))


def _scan(text: str) -> Iterator[SQLToken]:
    position = 0
    line = 1
    line_start = 0
    length = len(text)
    while position < length:
        char = text[position]
        column = position - line_start + 1
        if char == "\n":
            line += 1
            position += 1
            line_start = position
            continue
        if char.isspace():
            position += 1
            continue
        if text.startswith("--", position):
            while position < length and text[position] != "\n":
                position += 1
            continue
        if char == "'":
            value, position = _scan_string(text, position, line, column)
            yield SQLToken("string", value, line, column)
            continue
        if char.isdigit():
            value, position = _scan_number(text, position)
            yield SQLToken("number", value, line, column)
            continue
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[position:end]
            upper = word.upper()
            if upper in KEYWORDS:
                yield SQLToken("keyword", upper, line, column)
            else:
                yield SQLToken("ident", word, line, column)
            position = end
            continue
        two = text[position : position + 2]
        if two in _TWO_CHAR:
            yield SQLToken("symbol", two, line, column)
            position += 2
            continue
        if char in _ONE_CHAR:
            yield SQLToken("symbol", char, line, column)
            position += 1
            continue
        raise SQLSyntaxError(f"unexpected character {char!r}", line, column)
    yield SQLToken("eof", "", line, length - line_start + 1)


def _scan_string(
    text: str, position: int, line: int, column: int
) -> "tuple[str, int]":
    end = position + 1
    chunks: List[str] = []
    while end < len(text):
        char = text[end]
        if char == "'":
            if end + 1 < len(text) and text[end + 1] == "'":
                chunks.append("'")
                end += 2
                continue
            return "".join(chunks), end + 1
        chunks.append(char)
        end += 1
    raise SQLSyntaxError("unterminated string literal", line, column)


def _scan_number(text: str, position: int) -> "tuple[Union[int, float], int]":
    end = position
    while end < len(text) and text[end].isdigit():
        end += 1
    is_float = False
    if (
        end < len(text)
        and text[end] == "."
        and end + 1 < len(text)
        and text[end + 1].isdigit()
    ):
        is_float = True
        end += 1
        while end < len(text) and text[end].isdigit():
            end += 1
    if end < len(text) and text[end] in "eE":
        probe = end + 1
        if probe < len(text) and text[probe] in "+-":
            probe += 1
        if probe < len(text) and text[probe].isdigit():
            is_float = True
            end = probe
            while end < len(text) and text[end].isdigit():
                end += 1
    literal = text[position:end]
    return (float(literal) if is_float else int(literal)), end
