"""Executor of the mini relational engine.

Row-at-a-time evaluation with the optimisations a Sybase-era system would
apply to the translated HTL queries:

* **hash equi-joins** — equality conjuncts between a new FROM table and the
  already-bound prefix build a hash index probed per partial row;
* **index-range joins** — range conjuncts on a single column of the new
  table (``s.id BETWEEN p.beg AND p.end``, ``k.id >= s.id`` ...) probe a
  sorted view of that column;
* **semi/anti-join decorrelation** — ``[NOT] EXISTS`` subqueries whose only
  correlation is equality probe a precomputed hash of inner keys;
* **correlated-aggregate shortcuts** — scalar ``MIN``/``MAX`` subqueries
  whose correlation is equality plus at most one range predicate probe
  per-group prefix/suffix aggregate arrays.

NULL follows SQL three-valued logic: comparisons with NULL are unknown,
``WHERE`` keeps only definite truths, aggregates skip NULLs.
"""

from __future__ import annotations

import bisect
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import SQLCatalogError, SQLExecutionError, SQLSyntaxError
from repro.sqlbaseline.relational import sql_ast as ast
from repro.sqlbaseline.relational.relation import (
    Catalog,
    Relation,
    Row,
    SQLValue,
)
from repro.sqlbaseline.relational.sql_parser import parse_sql

_RANGE_OPS = {"<", "<=", ">", ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


@dataclass
class ExecutionStats:
    """Work counters, used by the benchmarks to report honest volumes."""

    statements: int = 0
    rows_scanned: int = 0
    rows_output: int = 0
    subquery_evaluations: int = 0

    def reset(self) -> None:
        self.statements = 0
        self.rows_scanned = 0
        self.rows_output = 0
        self.subquery_evaluations = 0


@dataclass
class ResultSet:
    """The rows a SELECT returns."""

    columns: Tuple[str, ...]
    rows: List[Row]

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[SQLValue]:
        position = self.columns.index(name)
        return [row[position] for row in self.rows]


class Database:
    """A self-contained in-memory SQL database."""

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.stats = ExecutionStats()

    # -- public API ---------------------------------------------------------
    def execute(self, sql_text: str) -> Optional[ResultSet]:
        """Run a script; returns the last SELECT's result, if any."""
        result: Optional[ResultSet] = None
        for statement in parse_sql(sql_text):
            outcome = self.execute_statement(statement)
            if isinstance(outcome, ResultSet):
                result = outcome
        return result

    def query(self, sql_text: str) -> ResultSet:
        """Run a single SELECT and return its rows."""
        result = self.execute(sql_text)
        if result is None:
            raise SQLExecutionError("query() expects a SELECT statement")
        return result

    def execute_statement(
        self, statement: ast.Statement
    ) -> Optional[ResultSet]:
        self.stats.statements += 1
        if isinstance(statement, ast.CreateTable):
            self.catalog.create(
                statement.name,
                [column.name for column in statement.columns],
                [column.type for column in statement.columns],
                statement.if_not_exists,
            )
            return None
        if isinstance(statement, ast.CreateIndex):
            self.catalog.get(statement.table)  # existence check
            self.catalog.indexes[statement.name.lower()] = (
                statement.table,
                statement.columns,
            )
            return None
        if isinstance(statement, ast.DropTable):
            self.catalog.drop(statement.name, statement.if_exists)
            return None
        if isinstance(statement, ast.InsertValues):
            return self._insert_values(statement)
        if isinstance(statement, ast.InsertSelect):
            return self._insert_select(statement)
        if isinstance(statement, ast.Delete):
            return self._delete(statement)
        if isinstance(statement, ast.Update):
            return self._update(statement)
        if isinstance(statement, (ast.Select, ast.UnionAll)):
            return self._select_like(statement)
        raise SQLExecutionError(
            f"cannot execute {type(statement).__name__}"
        )

    # -- DML ------------------------------------------------------------------
    def _insert_values(self, statement: ast.InsertValues) -> None:
        relation = self.catalog.get(statement.table)
        evaluator = _Evaluator(self, _Scope(), {})
        for value_row in statement.rows:
            values = [evaluator.eval(expr) for expr in value_row]
            relation.insert(self._reorder(relation, statement.columns, values))
        return None

    def _insert_select(self, statement: ast.InsertSelect) -> None:
        relation = self.catalog.get(statement.table)
        result = self._select_like(statement.query)
        for row in result.rows:
            relation.insert(
                self._reorder(relation, statement.columns, list(row))
            )
        return None

    @staticmethod
    def _reorder(
        relation: Relation,
        columns: Tuple[str, ...],
        values: List[SQLValue],
    ) -> List[SQLValue]:
        if not columns:
            return values
        if len(columns) != len(values):
            raise SQLExecutionError(
                f"INSERT lists {len(columns)} columns but {len(values)} values"
            )
        ordered: List[SQLValue] = [None] * len(relation.columns)
        for column, value in zip(columns, values):
            ordered[relation.column_position(column)] = value
        return ordered

    def _delete(self, statement: ast.Delete) -> None:
        relation = self.catalog.get(statement.table)
        if statement.where is None:
            relation.delete_where(lambda row: False)
            return None
        schema = {statement.table: _schema_of(relation)}
        resolved = _resolve(statement.where, schema, ())
        alias = statement.table

        def keep(row: Row) -> bool:
            scope = _Scope()
            scope.bind(alias, _schema_of(relation), row)
            value = _Evaluator(self, scope, {}).eval_predicate(resolved)
            return value is not True

        relation.delete_where(keep)
        return None

    def _update(self, statement: ast.Update) -> None:
        relation = self.catalog.get(statement.table)
        schema = {statement.table: _schema_of(relation)}
        where = (
            _resolve(statement.where, schema, ())
            if statement.where is not None
            else None
        )
        assignments = [
            (relation.column_position(column), _resolve(expr, schema, ()))
            for column, expr in statement.assignments
        ]
        alias = statement.table
        new_rows = []
        for row in relation.rows:
            scope = _Scope()
            scope.bind(alias, _schema_of(relation), row)
            evaluator = _Evaluator(self, scope, {})
            if where is not None and evaluator.eval_predicate(where) is not True:
                new_rows.append(row)
                continue
            updated = list(row)
            for position, expr in assignments:
                updated[position] = evaluator.eval(expr)
            new_rows.append(relation.coerce_row(updated))
        relation.rows = new_rows
        relation.invalidate_caches()
        return None

    # -- SELECT ----------------------------------------------------------------
    def _select_like(self, statement: ast.SelectLike) -> ResultSet:
        if isinstance(statement, ast.UnionAll):
            parts = [self._select(select, _Scope()) for select in statement.parts]
            first = parts[0]
            width = len(first.columns)
            for part in parts[1:]:
                if len(part.columns) != width:
                    raise SQLExecutionError(
                        "UNION ALL parts have different column counts"
                    )
            rows: List[Row] = []
            for part in parts:
                rows.extend(part.rows)
            return ResultSet(first.columns, rows)
        return self._select(statement, _Scope())

    def _select(self, select: ast.Select, outer: "_Scope") -> ResultSet:
        executor = _SelectExecutor(self, select, outer)
        return executor.run()


# ---------------------------------------------------------------------------
# scopes and column resolution
# ---------------------------------------------------------------------------
Schema = Dict[str, int]


def _schema_of(relation: Relation) -> Schema:
    return {column: position for position, column in enumerate(relation.columns)}


class _Scope:
    """Alias → (schema, current row), chained to outer query scopes."""

    __slots__ = ("frames", "parent")

    def __init__(self, parent: Optional["_Scope"] = None):
        self.frames: Dict[str, Tuple[Schema, Optional[Row]]] = {}
        self.parent = parent

    def bind(self, alias: str, schema: Schema, row: Optional[Row]) -> None:
        self.frames[alias] = (schema, row)

    def lookup(self, alias: str, column: str) -> SQLValue:
        scope: Optional[_Scope] = self
        while scope is not None:
            frame = scope.frames.get(alias)
            if frame is not None:
                schema, row = frame
                if column not in schema:
                    raise SQLCatalogError(
                        f"{alias!r} has no column {column!r}"
                    )
                if row is None:
                    raise SQLExecutionError(
                        f"{alias}.{column} referenced before binding"
                    )
                return row[schema[column]]
            scope = scope.parent
        raise SQLCatalogError(f"unknown table alias {alias!r}")


def _resolve(
    expr: ast.Expr,
    local: Dict[str, Schema],
    outer_schemas: Tuple[Dict[str, Schema], ...],
) -> ast.Expr:
    """Qualify every unqualified column reference.

    Local aliases shadow outer ones; an unqualified name matching several
    visible aliases is ambiguous.
    """
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            return expr
        candidates = [
            alias for alias, schema in local.items() if expr.column in schema
        ]
        if len(candidates) > 1:
            raise SQLSyntaxError(f"ambiguous column {expr.column!r}")
        if candidates:
            return ast.ColumnRef(candidates[0], expr.column)
        for schemas in outer_schemas:
            outer_candidates = [
                alias
                for alias, schema in schemas.items()
                if expr.column in schema
            ]
            if len(outer_candidates) > 1:
                raise SQLSyntaxError(f"ambiguous column {expr.column!r}")
            if outer_candidates:
                return ast.ColumnRef(outer_candidates[0], expr.column)
        raise SQLCatalogError(f"unknown column {expr.column!r}")
    if isinstance(expr, ast.Literal):
        return expr
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _resolve(expr.operand, local, outer_schemas))
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op,
            _resolve(expr.left, local, outer_schemas),
            _resolve(expr.right, local, outer_schemas),
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            _resolve(expr.operand, local, outer_schemas),
            _resolve(expr.low, local, outer_schemas),
            _resolve(expr.high, local, outer_schemas),
            expr.negated,
        )
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(
            _resolve(expr.operand, local, outer_schemas), expr.negated
        )
    if isinstance(expr, ast.Like):
        return ast.Like(
            _resolve(expr.operand, local, outer_schemas),
            _resolve(expr.pattern, local, outer_schemas),
            expr.negated,
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name,
            tuple(_resolve(arg, local, outer_schemas) for arg in expr.args),
            expr.star,
            expr.distinct,
        )
    if isinstance(expr, ast.CaseWhen):
        return ast.CaseWhen(
            tuple(
                (
                    _resolve(condition, local, outer_schemas),
                    _resolve(result, local, outer_schemas),
                )
                for condition, result in expr.branches
            ),
            None
            if expr.otherwise is None
            else _resolve(expr.otherwise, local, outer_schemas),
        )
    if isinstance(expr, ast.ExistsExpr):
        return ast.ExistsExpr(expr.query, expr.negated)
    if isinstance(expr, ast.InExpr):
        return ast.InExpr(
            _resolve(expr.operand, local, outer_schemas),
            None
            if expr.values is None
            else tuple(_resolve(v, local, outer_schemas) for v in expr.values),
            expr.query,
            expr.negated,
        )
    if isinstance(expr, ast.ScalarSubquery):
        return expr
    raise SQLExecutionError(f"cannot resolve {type(expr).__name__}")


def _split_conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    if isinstance(expr, ast.Between) and not expr.negated:
        # Decompose so the planner can use both bounds as range probes.
        return [
            ast.Binary(">=", expr.operand, expr.low),
            ast.Binary("<=", expr.operand, expr.high),
        ]
    return [expr]


def _aliases_in(expr: ast.Expr) -> Set[str]:
    """Aliases a resolved expression references (subqueries excluded —
    their correlation is handled at evaluation time)."""
    found: Set[str] = set()
    _collect_aliases(expr, found)
    return found


def _collect_aliases(expr: ast.Expr, found: Set[str]) -> None:
    if isinstance(expr, ast.ColumnRef):
        if expr.table is not None:
            found.add(expr.table)
    elif isinstance(expr, ast.Unary):
        _collect_aliases(expr.operand, found)
    elif isinstance(expr, ast.Binary):
        _collect_aliases(expr.left, found)
        _collect_aliases(expr.right, found)
    elif isinstance(expr, ast.Between):
        _collect_aliases(expr.operand, found)
        _collect_aliases(expr.low, found)
        _collect_aliases(expr.high, found)
    elif isinstance(expr, ast.IsNull):
        _collect_aliases(expr.operand, found)
    elif isinstance(expr, ast.Like):
        _collect_aliases(expr.operand, found)
        _collect_aliases(expr.pattern, found)
    elif isinstance(expr, ast.FuncCall):
        for arg in expr.args:
            _collect_aliases(arg, found)
    elif isinstance(expr, ast.CaseWhen):
        for condition, result in expr.branches:
            _collect_aliases(condition, found)
            _collect_aliases(result, found)
        if expr.otherwise is not None:
            _collect_aliases(expr.otherwise, found)
    elif isinstance(expr, ast.InExpr):
        _collect_aliases(expr.operand, found)
        if expr.values:
            for value in expr.values:
                _collect_aliases(value, found)
        if expr.query is not None:
            _collect_subquery_aliases(expr.query, found)
    elif isinstance(expr, ast.ExistsExpr):
        _collect_subquery_aliases(expr.query, found)
    elif isinstance(expr, ast.ScalarSubquery):
        _collect_subquery_aliases(expr.query, found)


def _collect_subquery_aliases(query: "ast.Select", found: Set[str]) -> None:
    """Outer aliases a subquery references.

    Qualified references to aliases outside the subquery's own FROM list
    are its correlations.  Unqualified references cannot be attributed
    without the catalog, so their presence adds the conservative marker,
    deferring the containing conjunct until every alias is bound.
    """
    own = {table_ref.alias for table_ref in query.tables}
    inner: Set[str] = set()
    expressions: List[ast.Expr] = []
    for item in query.items:
        if isinstance(item, ast.SelectItem):
            expressions.append(item.expr)
    if query.where is not None:
        expressions.append(query.where)
    expressions.extend(query.group_by)
    if query.having is not None:
        expressions.append(query.having)
    expressions.extend(order.expr for order in query.order_by)
    for expression in expressions:
        _collect_aliases(expression, inner)
        if _has_unqualified_ref(expression):
            inner.add(_SUBQUERY_MARKER)
    found.update(
        alias for alias in inner if alias == _SUBQUERY_MARKER or alias not in own
    )


def _has_unqualified_ref(expr: ast.Expr) -> bool:
    if isinstance(expr, ast.ColumnRef):
        return expr.table is None
    if isinstance(expr, ast.Unary):
        return _has_unqualified_ref(expr.operand)
    if isinstance(expr, ast.Binary):
        return _has_unqualified_ref(expr.left) or _has_unqualified_ref(expr.right)
    if isinstance(expr, ast.Between):
        return (
            _has_unqualified_ref(expr.operand)
            or _has_unqualified_ref(expr.low)
            or _has_unqualified_ref(expr.high)
        )
    if isinstance(expr, ast.IsNull):
        return _has_unqualified_ref(expr.operand)
    if isinstance(expr, ast.FuncCall):
        return any(_has_unqualified_ref(arg) for arg in expr.args)
    if isinstance(expr, ast.CaseWhen):
        return any(
            _has_unqualified_ref(c) or _has_unqualified_ref(r)
            for c, r in expr.branches
        ) or (expr.otherwise is not None and _has_unqualified_ref(expr.otherwise))
    if isinstance(expr, ast.InExpr):
        if _has_unqualified_ref(expr.operand):
            return True
        if expr.values and any(_has_unqualified_ref(v) for v in expr.values):
            return True
        return False  # nested subquery handled by _collect_subquery_aliases
    return False


#: Conjuncts whose subqueries contain unqualified references are applied
#: only once every local alias is bound (conservative fallback).
_SUBQUERY_MARKER = "\0subquery"


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------
class _Evaluator:
    """Evaluates resolved expressions against a scope."""

    def __init__(
        self,
        database: Database,
        scope: _Scope,
        plan_cache: Dict[int, object],
        outer_schemas: Tuple[Dict[str, Schema], ...] = (),
    ):
        self.database = database
        self.scope = scope
        self.plan_cache = plan_cache
        self.outer_schemas = outer_schemas

    def eval(self, expr: ast.Expr) -> SQLValue:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ColumnRef):
            assert expr.table is not None
            return self.scope.lookup(expr.table, expr.column)
        if isinstance(expr, ast.Unary):
            value = self.eval(expr.operand)
            if expr.op == "-":
                return None if value is None else -value  # type: ignore[operator]
            if expr.op == "NOT":
                truth = _as_truth(value)
                return None if truth is None else (not truth)
            raise SQLExecutionError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Between):
            value = self.eval(expr.operand)
            low = self.eval(expr.low)
            high = self.eval(expr.high)
            result = _and3(_compare("<=", low, value), _compare("<=", value, high))
            if expr.negated:
                return None if result is None else (not result)
            return result
        if isinstance(expr, ast.IsNull):
            value = self.eval(expr.operand)
            result = value is None
            return (not result) if expr.negated else result
        if isinstance(expr, ast.Like):
            operand = self.eval(expr.operand)
            pattern = self.eval(expr.pattern)
            if operand is None or pattern is None:
                return None
            matched = _like_match(str(operand), str(pattern))
            return (not matched) if expr.negated else matched
        if isinstance(expr, ast.FuncCall):
            return self._eval_scalar_function(expr)
        if isinstance(expr, ast.CaseWhen):
            for condition, result in expr.branches:
                if _as_truth(self.eval(condition)) is True:
                    return self.eval(result)
            return None if expr.otherwise is None else self.eval(expr.otherwise)
        if isinstance(expr, ast.ExistsExpr):
            return self._eval_exists(expr)
        if isinstance(expr, ast.InExpr):
            return self._eval_in(expr)
        if isinstance(expr, ast.ScalarSubquery):
            return self._eval_scalar_subquery(expr)
        raise SQLExecutionError(f"cannot evaluate {type(expr).__name__}")

    def eval_predicate(self, expr: ast.Expr) -> Optional[bool]:
        return _as_truth(self.eval(expr))

    # -- pieces -------------------------------------------------------------
    def _eval_binary(self, expr: ast.Binary) -> SQLValue:
        if expr.op == "AND":
            return _and3(
                _as_truth(self.eval(expr.left)), _as_truth(self.eval(expr.right))
            )
        if expr.op == "OR":
            return _or3(
                _as_truth(self.eval(expr.left)), _as_truth(self.eval(expr.right))
            )
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if expr.op in ("=", "!=", "<", "<=", ">", ">="):
            return _compare(expr.op, left, right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right  # type: ignore[operator]
        if expr.op == "-":
            return left - right  # type: ignore[operator]
        if expr.op == "*":
            return left * right  # type: ignore[operator]
        if expr.op == "/":
            if right == 0:
                raise SQLExecutionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return left // right
            return left / right  # type: ignore[operator]
        if expr.op == "||":
            return str(left) + str(right)
        raise SQLExecutionError(f"unknown operator {expr.op!r}")

    def _eval_scalar_function(self, expr: ast.FuncCall) -> SQLValue:
        if expr.name in ast.AGGREGATE_FUNCTIONS:
            raise SQLExecutionError(
                f"aggregate {expr.name} outside aggregation context"
            )
        args = [self.eval(arg) for arg in expr.args]
        if expr.name == "ABS":
            return None if args[0] is None else abs(args[0])  # type: ignore[arg-type]
        if expr.name == "COALESCE":
            for value in args:
                if value is not None:
                    return value
            return None
        if expr.name == "GREATEST":
            present = [value for value in args if value is not None]
            return max(present) if present else None
        if expr.name == "LEAST":
            present = [value for value in args if value is not None]
            return min(present) if present else None
        if expr.name == "LENGTH":
            return None if args[0] is None else len(str(args[0]))
        if expr.name == "UPPER":
            return None if args[0] is None else str(args[0]).upper()
        if expr.name == "LOWER":
            return None if args[0] is None else str(args[0]).lower()
        raise SQLExecutionError(f"unknown function {expr.name!r}")

    # -- subqueries ---------------------------------------------------------
    def _eval_exists(self, expr: ast.ExistsExpr) -> SQLValue:
        plan = self.plan_cache.get(id(expr))
        if plan is None:
            plan = _build_semi_join_plan(self.database, expr.query, self)
            self.plan_cache[id(expr)] = plan
        self.database.stats.subquery_evaluations += 1
        if isinstance(plan, _SemiJoinPlan):
            found = plan.probe(self)
        else:
            result = self.database._select(expr.query, self.scope)
            found = bool(result.rows)
        return (not found) if expr.negated else found

    def _eval_in(self, expr: ast.InExpr) -> SQLValue:
        operand = self.eval(expr.operand)
        if expr.values is not None:
            if operand is None:
                return None
            saw_null = False
            for value_expr in expr.values:
                value = self.eval(value_expr)
                if value is None:
                    saw_null = True
                elif _compare("=", operand, value) is True:
                    return not expr.negated
            if saw_null:
                return None
            return expr.negated
        assert expr.query is not None
        plan = self.plan_cache.get(id(expr))
        if plan is None:
            plan = _build_in_plan(self.database, expr.query, self)
            self.plan_cache[id(expr)] = plan
        self.database.stats.subquery_evaluations += 1
        if operand is None:
            return None
        if isinstance(plan, _InSetPlan):
            found = plan.contains(operand)
        else:
            result = self.database._select(expr.query, self.scope)
            found = any(
                row[0] is not None and _compare("=", operand, row[0]) is True
                for row in result.rows
            )
        if found is None:
            return None
        return (not found) if expr.negated else found

    def _eval_scalar_subquery(self, expr: ast.ScalarSubquery) -> SQLValue:
        plan = self.plan_cache.get(id(expr))
        if plan is None:
            plan = _build_aggregate_plan(self.database, expr.query, self)
            self.plan_cache[id(expr)] = plan
        self.database.stats.subquery_evaluations += 1
        if isinstance(plan, _CorrelatedAggPlan):
            return plan.probe(self)
        result = self.database._select(expr.query, self.scope)
        if len(result.columns) != 1:
            raise SQLExecutionError("scalar subquery must select one column")
        if not result.rows:
            return None
        if len(result.rows) > 1:
            raise SQLExecutionError("scalar subquery returned several rows")
        return result.rows[0][0]


# ---------------------------------------------------------------------------
# three-valued logic and comparison
# ---------------------------------------------------------------------------
def _as_truth(value: SQLValue) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    return bool(value)


def _and3(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _or3(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE: ``%`` matches any run, ``_`` any single character."""
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern
    )
    return re.fullmatch(regex, value) is not None


def _compare(op: str, left: SQLValue, right: SQLValue) -> Optional[bool]:
    if left is None or right is None:
        return None
    left_num = isinstance(left, (int, float)) and not isinstance(left, bool)
    right_num = isinstance(right, (int, float)) and not isinstance(right, bool)
    if left_num != right_num:
        if op == "=":
            return False
        if op == "!=":
            return True
        raise SQLExecutionError(
            f"cannot order {left!r} against {right!r}"
        )
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    if op == "<":
        return left < right  # type: ignore[operator]
    if op == "<=":
        return left <= right  # type: ignore[operator]
    if op == ">":
        return left > right  # type: ignore[operator]
    return left >= right  # '>='


# ---------------------------------------------------------------------------
# SELECT execution
# ---------------------------------------------------------------------------
class _SelectExecutor:
    """Runs one (possibly correlated) SELECT."""

    def __init__(self, database: Database, select: ast.Select, outer: _Scope):
        self.database = database
        self.select = select
        self.outer = outer
        self.relations: Dict[str, Relation] = {}
        self.schemas: Dict[str, Schema] = {}
        for table_ref in select.tables:
            relation = database.catalog.get(table_ref.name)
            if table_ref.alias in self.relations:
                raise SQLSyntaxError(
                    f"duplicate table alias {table_ref.alias!r}"
                )
            self.relations[table_ref.alias] = relation
            self.schemas[table_ref.alias] = _schema_of(relation)
        self.outer_schemas = _scope_schemas(outer)
        self.plan_cache: Dict[int, object] = {}

    # -- main ----------------------------------------------------------------
    def run(self) -> ResultSet:
        select = self.select
        where = (
            _resolve(select.where, self.schemas, self.outer_schemas)
            if select.where is not None
            else None
        )
        items = self._resolved_items()
        group_by = tuple(
            _resolve(expr, self.schemas, self.outer_schemas)
            for expr in select.group_by
        )
        having = (
            _resolve(select.having, self.schemas, self.outer_schemas)
            if select.having is not None
            else None
        )
        order_by = tuple(
            ast.OrderItem(
                _resolve(item.expr, self.schemas, self.outer_schemas),
                item.descending,
            )
            for item in select.order_by
        )

        scopes = self._join_pipeline(where)

        aggregated = bool(group_by) or self._has_aggregate(items, having)
        if aggregated:
            rows, columns = self._aggregate(scopes, items, group_by, having)
        else:
            rows, columns = self._project(scopes, items)

        if select.distinct:
            seen = set()
            unique: List[Row] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            rows = unique
        if order_by:
            rows = self._order(rows, columns, order_by, scopes, aggregated)
        if select.limit is not None:
            rows = rows[: select.limit]
        self.database.stats.rows_output += len(rows)
        return ResultSet(columns, rows)

    # -- select list -----------------------------------------------------------
    def _resolved_items(self) -> List[ast.SelectItem]:
        items: List[ast.SelectItem] = []
        for item in self.select.items:
            if isinstance(item, ast.StarItem):
                aliases = (
                    [item.table]
                    if item.table is not None
                    else [ref.alias for ref in self.select.tables]
                )
                for alias in aliases:
                    if alias not in self.schemas:
                        raise SQLCatalogError(f"unknown alias {alias!r}")
                    for column in self.relations[alias].columns:
                        items.append(
                            ast.SelectItem(
                                ast.ColumnRef(alias, column), column
                            )
                        )
            else:
                items.append(
                    ast.SelectItem(
                        _resolve(item.expr, self.schemas, self.outer_schemas),
                        item.alias,
                    )
                )
        return items

    @staticmethod
    def _column_names(items: Sequence[ast.SelectItem]) -> Tuple[str, ...]:
        names: List[str] = []
        for position, item in enumerate(items):
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expr, ast.ColumnRef):
                names.append(item.expr.column)
            else:
                names.append(f"col{position + 1}")
        return tuple(names)

    # -- join pipeline -----------------------------------------------------------
    def _join_pipeline(self, where: Optional[ast.Expr]) -> List[_Scope]:
        conjuncts = _split_conjuncts(where)
        pending = list(conjuncts)
        bound: Set[str] = set()
        scopes: List[_Scope] = [_Scope(self.outer)]

        for table_ref in self.select.tables:
            alias = table_ref.alias
            relation = self.relations[alias]
            schema = self.schemas[alias]
            applicable: List[ast.Expr] = []
            rest: List[ast.Expr] = []
            for conjunct in pending:
                aliases = _aliases_in(conjunct)
                local_aliases = aliases & (set(self.schemas) | {_SUBQUERY_MARKER})
                if local_aliases <= bound | {alias} and (
                    _SUBQUERY_MARKER not in aliases
                    or bound | {alias} == set(self.schemas)
                ):
                    applicable.append(conjunct)
                else:
                    rest.append(conjunct)
            pending = rest
            scopes = self._extend(scopes, alias, relation, schema, applicable)
            bound.add(alias)

        if pending:
            # Conjuncts referencing no FROM alias at all (constants or only
            # outer references): filter once per scope.
            survivors: List[_Scope] = []
            for scope in scopes:
                evaluator = _Evaluator(
                    self.database, scope, self.plan_cache, self.outer_schemas
                )
                if all(
                    evaluator.eval_predicate(conjunct) is True
                    for conjunct in pending
                ):
                    survivors.append(scope)
            scopes = survivors
        return scopes

    def _extend(
        self,
        scopes: List[_Scope],
        alias: str,
        relation: Relation,
        schema: Schema,
        conjuncts: List[ast.Expr],
    ) -> List[_Scope]:
        equalities, ranges, residual = self._classify(alias, conjuncts)
        if equalities and ranges:
            # Hash probing wins; re-apply the range conjuncts as filters.
            residual = residual + [
                ast.Binary(op, ast.ColumnRef(alias, column), expr)
                for column, op, expr in ranges
            ]
            ranges = []

        hash_index: Optional[Dict[Tuple[SQLValue, ...], List[Row]]] = None
        if equalities:
            positions = [schema[column] for column, __ in equalities]
            hash_index = {}
            for row in relation.rows:
                key = tuple(row[position] for position in positions)
                if any(part is None for part in key):
                    continue
                hash_index.setdefault(key, []).append(row)

        sorted_probe = None
        if hash_index is None and ranges:
            sorted_probe = relation.sorted_column(ranges[0][0])

        out: List[_Scope] = []
        for scope in scopes:
            evaluator = _Evaluator(
                self.database, scope, self.plan_cache, self.outer_schemas
            )
            if hash_index is not None:
                key = tuple(
                    evaluator.eval(expr) for __, expr in equalities
                )
                candidates = (
                    [] if any(part is None for part in key)
                    else hash_index.get(key, [])
                )
            elif sorted_probe is not None:
                candidates = self._range_candidates(
                    sorted_probe, ranges, evaluator
                )
            else:
                candidates = relation.rows
            self.database.stats.rows_scanned += len(candidates)
            for row in candidates:
                child = _Scope(self.outer)
                child.frames.update(scope.frames)
                child.bind(alias, schema, row)
                child_eval = _Evaluator(
                    self.database, child, self.plan_cache, self.outer_schemas
                )
                keep = True
                for conjunct in residual:
                    if child_eval.eval_predicate(conjunct) is not True:
                        keep = False
                        break
                if keep:
                    out.append(child)
        return out

    def _classify(
        self, alias: str, conjuncts: List[ast.Expr]
    ) -> Tuple[
        List[Tuple[str, ast.Expr]],
        List[Tuple[str, str, ast.Expr]],
        List[ast.Expr],
    ]:
        """Split conjuncts into hash keys, range probes and residual filters.

        A *hash key* is ``alias.col = expr-not-referencing-alias``;
        a *range probe* is ``alias.col OP expr-not-referencing-alias``.
        Ranges are grouped on the first ranged column encountered.
        """
        equalities: List[Tuple[str, ast.Expr]] = []
        ranges: List[Tuple[str, str, ast.Expr]] = []
        residual: List[ast.Expr] = []
        range_column: Optional[str] = None
        for conjunct in conjuncts:
            simple = self._as_single_column_predicate(alias, conjunct)
            if simple is None:
                residual.append(conjunct)
                continue
            column, op, expr = simple
            if op == "=":
                equalities.append((column, expr))
            elif op in _RANGE_OPS:
                if range_column is None:
                    range_column = column
                if column == range_column:
                    ranges.append((column, op, expr))
                else:
                    residual.append(conjunct)
            else:
                residual.append(conjunct)
        return equalities, ranges, residual

    def _as_single_column_predicate(
        self, alias: str, conjunct: ast.Expr
    ) -> Optional[Tuple[str, str, ast.Expr]]:
        if not isinstance(conjunct, ast.Binary):
            return None
        if conjunct.op not in _RANGE_OPS | {"="}:
            return None
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if (
            isinstance(left, ast.ColumnRef)
            and left.table == alias
            and alias not in _aliases_in(right)
            and _SUBQUERY_MARKER not in _aliases_in(right)
        ):
            return left.column, op, right
        if (
            isinstance(right, ast.ColumnRef)
            and right.table == alias
            and alias not in _aliases_in(left)
            and _SUBQUERY_MARKER not in _aliases_in(left)
        ):
            return right.column, _FLIP[op], left
        return None

    def _range_candidates(self, sorted_probe, ranges, evaluator) -> List[Row]:
        low: Optional[SQLValue] = None
        high: Optional[SQLValue] = None
        low_inclusive = True
        high_inclusive = True
        for __, op, expr in ranges:
            value = evaluator.eval(expr)
            if value is None:
                return []
            if op in (">", ">="):
                candidate_inclusive = op == ">="
                if low is None or value > low or (
                    value == low and not candidate_inclusive
                ):
                    low = value
                    low_inclusive = candidate_inclusive
            else:
                candidate_inclusive = op == "<="
                if high is None or value < high or (
                    value == high and not candidate_inclusive
                ):
                    high = value
                    high_inclusive = candidate_inclusive
        return sorted_probe.rows_in_range(low, high, low_inclusive, high_inclusive)

    # -- projection / aggregation ------------------------------------------------
    def _project(
        self, scopes: List[_Scope], items: List[ast.SelectItem]
    ) -> Tuple[List[Row], Tuple[str, ...]]:
        rows: List[Row] = []
        for scope in scopes:
            evaluator = _Evaluator(
                self.database, scope, self.plan_cache, self.outer_schemas
            )
            rows.append(tuple(evaluator.eval(item.expr) for item in items))
        return rows, self._column_names(items)

    def _has_aggregate(
        self, items: Sequence[ast.SelectItem], having: Optional[ast.Expr]
    ) -> bool:
        def contains(expr: ast.Expr) -> bool:
            if isinstance(expr, ast.FuncCall):
                if expr.name in ast.AGGREGATE_FUNCTIONS:
                    return True
                return any(contains(arg) for arg in expr.args)
            if isinstance(expr, ast.Unary):
                return contains(expr.operand)
            if isinstance(expr, ast.Binary):
                return contains(expr.left) or contains(expr.right)
            if isinstance(expr, ast.Between):
                return (
                    contains(expr.operand)
                    or contains(expr.low)
                    or contains(expr.high)
                )
            if isinstance(expr, ast.IsNull):
                return contains(expr.operand)
            if isinstance(expr, ast.CaseWhen):
                return any(
                    contains(c) or contains(r) for c, r in expr.branches
                ) or (expr.otherwise is not None and contains(expr.otherwise))
            return False

        if any(contains(item.expr) for item in items):
            return True
        return having is not None and contains(having)

    def _aggregate(
        self,
        scopes: List[_Scope],
        items: List[ast.SelectItem],
        group_by: Tuple[ast.Expr, ...],
        having: Optional[ast.Expr],
    ) -> Tuple[List[Row], Tuple[str, ...]]:
        groups: Dict[Tuple[SQLValue, ...], List[_Scope]] = {}
        order: List[Tuple[SQLValue, ...]] = []
        for scope in scopes:
            evaluator = _Evaluator(
                self.database, scope, self.plan_cache, self.outer_schemas
            )
            key = tuple(evaluator.eval(expr) for expr in group_by)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(scope)
        if not group_by and not groups:
            groups[()] = []
            order.append(())

        rows: List[Row] = []
        for key in order:
            member_scopes = groups[key]
            if having is not None:
                value = self._eval_aggregate_expr(
                    having, member_scopes, group_by, key
                )
                if _as_truth(value) is not True:
                    continue
            rows.append(
                tuple(
                    self._eval_aggregate_expr(
                        item.expr, member_scopes, group_by, key
                    )
                    for item in items
                )
            )
        return rows, self._column_names(items)

    def _eval_aggregate_expr(
        self,
        expr: ast.Expr,
        member_scopes: List[_Scope],
        group_by: Tuple[ast.Expr, ...],
        key: Tuple[SQLValue, ...],
    ) -> SQLValue:
        # Grouped expressions evaluate to their key value.
        for position, group_expr in enumerate(group_by):
            if expr == group_expr:
                return key[position]
        if isinstance(expr, ast.FuncCall) and expr.name in ast.AGGREGATE_FUNCTIONS:
            return self._eval_aggregate_call(expr, member_scopes)
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Unary):
            inner = self._eval_aggregate_expr(
                expr.operand, member_scopes, group_by, key
            )
            if expr.op == "-":
                return None if inner is None else -inner  # type: ignore[operator]
            truth = _as_truth(inner)
            return None if truth is None else (not truth)
        if isinstance(expr, ast.Binary):
            left = self._eval_aggregate_expr(
                expr.left, member_scopes, group_by, key
            )
            right = self._eval_aggregate_expr(
                expr.right, member_scopes, group_by, key
            )
            return _Evaluator(
                self.database, _Scope(self.outer), self.plan_cache
            )._eval_binary(
                ast.Binary(expr.op, ast.Literal(left), ast.Literal(right))
            )
        if isinstance(expr, ast.FuncCall):
            args = tuple(
                ast.Literal(
                    self._eval_aggregate_expr(a, member_scopes, group_by, key)
                )
                for a in expr.args
            )
            return _Evaluator(
                self.database, _Scope(self.outer), self.plan_cache
            )._eval_scalar_function(ast.FuncCall(expr.name, args))
        if isinstance(expr, ast.ColumnRef):
            raise SQLExecutionError(
                f"column {expr.table}.{expr.column} is neither grouped nor "
                "aggregated"
            )
        raise SQLExecutionError(
            f"unsupported expression in aggregation: {type(expr).__name__}"
        )

    def _eval_aggregate_call(
        self, expr: ast.FuncCall, member_scopes: List[_Scope]
    ) -> SQLValue:
        if expr.star:
            if expr.name != "COUNT":
                raise SQLExecutionError(f"{expr.name}(*) is not valid")
            return len(member_scopes)
        if len(expr.args) != 1:
            raise SQLExecutionError(
                f"aggregate {expr.name} takes exactly one argument"
            )
        values: List[SQLValue] = []
        for scope in member_scopes:
            evaluator = _Evaluator(
                self.database, scope, self.plan_cache, self.outer_schemas
            )
            value = evaluator.eval(expr.args[0])
            if value is not None:
                values.append(value)
        if expr.distinct:
            values = list(dict.fromkeys(values))
        if expr.name == "COUNT":
            return len(values)
        if not values:
            return None
        if expr.name == "SUM":
            return sum(values)  # type: ignore[arg-type]
        if expr.name == "MIN":
            return min(values)  # type: ignore[type-var]
        if expr.name == "MAX":
            return max(values)  # type: ignore[type-var]
        if expr.name == "AVG":
            return sum(values) / len(values)  # type: ignore[arg-type]
        raise SQLExecutionError(f"unknown aggregate {expr.name}")

    # -- ordering -----------------------------------------------------------
    def _order(
        self,
        rows: List[Row],
        columns: Tuple[str, ...],
        order_by: Tuple[ast.OrderItem, ...],
        scopes: List[_Scope],
        aggregated: bool,
    ) -> List[Row]:
        # ORDER BY may reference output columns by name (common case) or,
        # for non-aggregated queries, any expression over the source rows.
        def sort_key(indexed: Tuple[int, Row]):
            position, row = indexed
            parts = []
            for item in order_by:
                value = self._order_value(item.expr, row, columns, position, scopes, aggregated)
                # None sorts first ascending; invert for DESC via wrapper.
                rank = (value is not None, value)
                parts.append(_Descending(rank) if item.descending else rank)
            return tuple(parts)

        decorated = sorted(enumerate(rows), key=sort_key)
        return [row for __, row in decorated]

    def _order_value(self, expr, row, columns, position, scopes, aggregated):
        if isinstance(expr, ast.ColumnRef) and expr.column in columns:
            # prefer output column
            candidates = [
                index for index, name in enumerate(columns) if name == expr.column
            ]
            if len(candidates) == 1:
                return row[candidates[0]]
        if not aggregated and position < len(scopes):
            evaluator = _Evaluator(
                self.database,
                scopes[position],
                self.plan_cache,
                self.outer_schemas,
            )
            return evaluator.eval(expr)
        raise SQLExecutionError(
            "ORDER BY expression must name an output column"
        )


class _Descending:
    """Inverts comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Descending) and other.value == self.value


def _scope_schemas(scope: _Scope) -> Tuple[Dict[str, Schema], ...]:
    collected: List[Dict[str, Schema]] = []
    current: Optional[_Scope] = scope
    while current is not None:
        if current.frames:
            collected.append(
                {alias: schema for alias, (schema, __) in current.frames.items()}
            )
        current = current.parent
    return tuple(collected)


# ---------------------------------------------------------------------------
# subquery plans (decorrelation)
# ---------------------------------------------------------------------------
class _GenericPlan:
    """Fallback: re-execute the subquery per outer row."""


class _SemiJoinPlan:
    """[NOT] EXISTS with equality-only correlation → hash set probe."""

    __slots__ = ("outer_exprs", "keys")

    def __init__(self, outer_exprs: List[ast.Expr], keys: Set[Tuple[SQLValue, ...]]):
        self.outer_exprs = outer_exprs
        self.keys = keys

    def probe(self, evaluator: _Evaluator) -> bool:
        key = tuple(
            _canonical(evaluator.eval(expr)) for expr in self.outer_exprs
        )
        if any(part is None for part in key):
            return False
        return key in self.keys


class _InSetPlan:
    """Uncorrelated IN subquery → materialised value set."""

    __slots__ = ("numeric", "other", "saw_null")

    def __init__(self, values: Iterable[SQLValue]):
        self.numeric: Set[float] = set()
        self.other: Set[SQLValue] = set()
        self.saw_null = False
        for value in values:
            if value is None:
                self.saw_null = True
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                self.numeric.add(float(value))
            else:
                self.other.add(value)

    def contains(self, operand: SQLValue) -> Optional[bool]:
        if operand is None:
            return None
        if isinstance(operand, (int, float)) and not isinstance(operand, bool):
            found = float(operand) in self.numeric
        else:
            found = operand in self.other
        if found:
            return True
        return None if self.saw_null else False


class _CorrelatedAggPlan:
    """Scalar MIN/MAX with equality + one range correlation.

    Precomputes, per equality-correlation group, the inner rows sorted by
    the ranged column together with running prefix/suffix aggregates; each
    probe is then a dictionary lookup plus a bisection.
    """

    __slots__ = ("outer_eq_exprs", "outer_range_expr", "range_op", "func", "groups")

    def __init__(
        self,
        outer_eq_exprs: List[ast.Expr],
        outer_range_expr: Optional[ast.Expr],
        range_op: Optional[str],
        func: str,
        grouped_rows: Dict[Tuple[SQLValue, ...], List[Tuple[SQLValue, SQLValue]]],
    ):
        self.outer_eq_exprs = outer_eq_exprs
        self.outer_range_expr = outer_range_expr
        self.range_op = range_op  # local-col OP outer-value, local on left
        self.func = func  # MIN or MAX
        self.groups: Dict[Tuple[SQLValue, ...], Tuple[List[SQLValue], List[SQLValue], List[SQLValue]]] = {}
        better = min if func == "MIN" else max
        for key, pairs in grouped_rows.items():
            pairs.sort(key=lambda pair: pair[0])
            keys = [pair[0] for pair in pairs]
            values = [pair[1] for pair in pairs]
            prefix: List[SQLValue] = []
            best: Optional[SQLValue] = None
            for value in values:
                best = value if best is None else better(best, value)
                prefix.append(best)
            suffix: List[SQLValue] = [None] * len(values)
            best = None
            for position in range(len(values) - 1, -1, -1):
                best = (
                    values[position]
                    if best is None
                    else better(best, values[position])
                )
                suffix[position] = best
            self.groups[key] = (keys, prefix, suffix)

    def probe(self, evaluator: _Evaluator) -> SQLValue:
        key = tuple(
            _canonical(evaluator.eval(expr)) for expr in self.outer_eq_exprs
        )
        group = self.groups.get(key)
        if group is None:
            return None
        keys, prefix, suffix = group
        if self.outer_range_expr is None:
            return suffix[0] if suffix else None
        bound = evaluator.eval(self.outer_range_expr)
        if bound is None:
            return None
        op = self.range_op
        if op in (">", ">="):
            # qualifying rows: keys OP bound → suffix from first index
            start = (
                bisect.bisect_left(keys, bound)
                if op == ">="
                else bisect.bisect_right(keys, bound)
            )
            if start >= len(keys):
                return None
            return suffix[start]
        # '<' or '<=': prefix up to last qualifying index
        stop = (
            bisect.bisect_right(keys, bound)
            if op == "<="
            else bisect.bisect_left(keys, bound)
        )
        if stop <= 0:
            return None
        return prefix[stop - 1]


def _canonical(value: SQLValue) -> SQLValue:
    """Numeric values compare across int/float in SQL; canonicalise keys."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return value


def _analyse_simple_subquery(
    database: Database, query: ast.Select, evaluator: _Evaluator
):
    """Common analysis for the decorrelation plans.

    Returns ``None`` when the query is outside the simple shape (single
    table, conjunctive WHERE, no nested subqueries/aggregation clauses), or
    ``(alias, relation, local_conjuncts, eq_pairs, range_pairs)`` where
    ``eq_pairs``/``range_pairs`` hold ``(local_column, outer_expr[, op])``.
    """
    if (
        len(query.tables) != 1
        or query.group_by
        or query.having is not None
        or query.order_by
        or query.limit is not None
        or query.distinct
    ):
        return None
    table_ref = query.tables[0]
    try:
        relation = database.catalog.get(table_ref.name)
    except SQLCatalogError:
        return None
    alias = table_ref.alias
    local_schema = {alias: _schema_of(relation)}
    outer_schemas = _scope_schemas(evaluator.scope)
    try:
        where = (
            _resolve(query.where, local_schema, outer_schemas)
            if query.where is not None
            else None
        )
    except (SQLCatalogError, SQLSyntaxError):
        return None
    local_conjuncts: List[ast.Expr] = []
    eq_pairs: List[Tuple[str, ast.Expr]] = []
    range_pairs: List[Tuple[str, str, ast.Expr]] = []
    for conjunct in _split_conjuncts(where):
        aliases = _aliases_in(conjunct)
        if _SUBQUERY_MARKER in aliases:
            return None
        if aliases <= {alias}:
            local_conjuncts.append(conjunct)
            continue
        if alias not in aliases:
            # purely outer condition: treat as a residual correlation we
            # cannot hash; bail to the generic path.
            return None
        if not isinstance(conjunct, ast.Binary):
            return None
        op = conjunct.op
        if op not in _RANGE_OPS | {"="}:
            return None
        left, right = conjunct.left, conjunct.right
        if (
            isinstance(left, ast.ColumnRef)
            and left.table == alias
            and alias not in _aliases_in(right)
        ):
            column, outer_expr = left.column, right
        elif (
            isinstance(right, ast.ColumnRef)
            and right.table == alias
            and alias not in _aliases_in(left)
        ):
            column, outer_expr, op = right.column, left, _FLIP[op]
        else:
            return None
        if op == "=":
            eq_pairs.append((column, outer_expr))
        else:
            range_pairs.append((column, op, outer_expr))
    return alias, relation, local_conjuncts, eq_pairs, range_pairs, where


def _filtered_rows(
    database: Database,
    relation: Relation,
    alias: str,
    local_conjuncts: List[ast.Expr],
) -> List[Row]:
    schema = _schema_of(relation)
    if not local_conjuncts:
        database.stats.rows_scanned += len(relation.rows)
        return list(relation.rows)
    kept: List[Row] = []
    for row in relation.rows:
        scope = _Scope()
        scope.bind(alias, schema, row)
        evaluator = _Evaluator(database, scope, {})
        if all(
            evaluator.eval_predicate(conjunct) is True
            for conjunct in local_conjuncts
        ):
            kept.append(row)
    database.stats.rows_scanned += len(relation.rows)
    return kept


def _build_semi_join_plan(
    database: Database, query: ast.Select, evaluator: _Evaluator
):
    analysis = _analyse_simple_subquery(database, query, evaluator)
    if analysis is None:
        return _GenericPlan()
    alias, relation, local_conjuncts, eq_pairs, range_pairs, __ = analysis
    if range_pairs:
        return _GenericPlan()
    schema = _schema_of(relation)
    rows = _filtered_rows(database, relation, alias, local_conjuncts)
    keys: Set[Tuple[SQLValue, ...]] = set()
    positions = [schema[column] for column, __ in eq_pairs]
    for row in rows:
        key = tuple(_canonical(row[position]) for position in positions)
        if any(part is None for part in key):
            continue
        keys.add(key)
    return _SemiJoinPlan([expr for __, expr in eq_pairs], keys)


def _build_in_plan(
    database: Database, query: ast.Select, evaluator: _Evaluator
):
    analysis = _analyse_simple_subquery(database, query, evaluator)
    if analysis is None:
        return _GenericPlan()
    alias, relation, local_conjuncts, eq_pairs, range_pairs, __ = analysis
    if eq_pairs or range_pairs:
        return _GenericPlan()
    if len(query.items) != 1 or isinstance(query.items[0], ast.StarItem):
        return _GenericPlan()
    item = query.items[0]
    schema = _schema_of(relation)
    local_schema = {alias: schema}
    try:
        expr = _resolve(item.expr, local_schema, ())
    except (SQLCatalogError, SQLSyntaxError):
        return _GenericPlan()
    rows = _filtered_rows(database, relation, alias, local_conjuncts)
    values: List[SQLValue] = []
    for row in rows:
        scope = _Scope()
        scope.bind(alias, schema, row)
        values.append(_Evaluator(database, scope, {}).eval(expr))
    return _InSetPlan(values)


def _build_aggregate_plan(
    database: Database, query: ast.Select, evaluator: _Evaluator
):
    analysis = _analyse_simple_subquery(database, query, evaluator)
    if analysis is None:
        return _GenericPlan()
    alias, relation, local_conjuncts, eq_pairs, range_pairs, __ = analysis
    if len(range_pairs) > 1:
        return _GenericPlan()
    if len(query.items) != 1 or isinstance(query.items[0], ast.StarItem):
        return _GenericPlan()
    item = query.items[0]
    expr = item.expr
    if not (
        isinstance(expr, ast.FuncCall)
        and expr.name in ("MIN", "MAX")
        and not expr.star
        and len(expr.args) == 1
        and isinstance(expr.args[0], ast.ColumnRef)
    ):
        return _GenericPlan()
    schema = _schema_of(relation)
    agg_ref = expr.args[0]
    agg_column = agg_ref.column
    if agg_ref.table not in (None, alias) or agg_column not in schema:
        return _GenericPlan()
    agg_position = schema[agg_column]

    rows = _filtered_rows(database, relation, alias, local_conjuncts)
    eq_positions = [schema[column] for column, __ in eq_pairs]
    if range_pairs:
        range_column, range_op, range_expr = range_pairs[0]
        range_position = schema[range_column]
    else:
        range_op, range_expr, range_position = None, None, None

    grouped: Dict[Tuple[SQLValue, ...], List[Tuple[SQLValue, SQLValue]]] = {}
    for row in rows:
        agg_value = row[agg_position]
        if agg_value is None:
            continue
        key = tuple(_canonical(row[position]) for position in eq_positions)
        if any(part is None for part in key):
            continue
        if range_position is not None:
            range_key = row[range_position]
            if range_key is None:
                continue
        else:
            range_key = 0
        grouped.setdefault(key, []).append((range_key, agg_value))
    return _CorrelatedAggPlan(
        [outer for __, outer in eq_pairs],
        range_expr,
        range_op,
        expr.name,
        grouped,
    )
