"""Relations (tables/results) and the catalog of the mini engine."""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import SQLCatalogError, SQLExecutionError

SQLValue = Union[str, int, float, bool, None]
Row = Tuple[SQLValue, ...]

_TYPE_CHECKS = {
    "INTEGER": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "REAL": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "TEXT": lambda v: isinstance(v, str),
}


@dataclass
class Relation:
    """A named bag of rows with typed columns."""

    name: str
    columns: Tuple[str, ...]
    types: Tuple[str, ...]
    rows: List[Row] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.types):
            raise SQLExecutionError(
                f"table {self.name!r}: {len(self.columns)} columns but "
                f"{len(self.types)} types"
            )
        if len(set(self.columns)) != len(self.columns):
            raise SQLCatalogError(
                f"table {self.name!r} has duplicate column names"
            )
        self._position: Dict[str, int] = {
            column: position for position, column in enumerate(self.columns)
        }
        self._sorted_cache: Dict[str, "SortedColumn"] = {}

    def column_position(self, column: str) -> int:
        try:
            return self._position[column]
        except KeyError:
            raise SQLCatalogError(
                f"table {self.name!r} has no column {column!r}"
            ) from None

    def coerce_row(self, values: Sequence[SQLValue]) -> Row:
        """Validate arity and types (NULL always allowed); coerce ints to
        float for REAL columns."""
        if len(values) != len(self.columns):
            raise SQLExecutionError(
                f"table {self.name!r} expects {len(self.columns)} values, "
                f"got {len(values)}"
            )
        coerced: List[SQLValue] = []
        for value, type_name, column in zip(values, self.types, self.columns):
            if value is None:
                coerced.append(None)
                continue
            if type_name == "REAL" and isinstance(value, int):
                value = float(value)
            if not _TYPE_CHECKS[type_name](value):
                raise SQLExecutionError(
                    f"value {value!r} is not a {type_name} "
                    f"(column {self.name}.{column})"
                )
            coerced.append(value)
        return tuple(coerced)

    def insert(self, values: Sequence[SQLValue]) -> None:
        self.rows.append(self.coerce_row(values))
        self._sorted_cache.clear()

    def insert_many(self, rows: Iterable[Sequence[SQLValue]]) -> int:
        count = 0
        for values in rows:
            self.rows.append(self.coerce_row(values))
            count += 1
        self._sorted_cache.clear()
        return count

    def delete_where(self, keep) -> int:
        """Remove rows failing ``keep(row) -> bool``; returns removed count."""
        before = len(self.rows)
        self.rows = [row for row in self.rows if keep(row)]
        self._sorted_cache.clear()
        return before - len(self.rows)

    def invalidate_caches(self) -> None:
        """Drop derived structures after direct row mutation."""
        self._sorted_cache.clear()

    def sorted_column(self, column: str) -> "SortedColumn":
        """A (cached) sorted view of one column for range probes."""
        cached = self._sorted_cache.get(column)
        if cached is None:
            cached = SortedColumn(self, self.column_position(column))
            self._sorted_cache[column] = cached
        return cached


class SortedColumn:
    """Rows of a relation ordered by one column (NULLs excluded).

    Supports range probes and running prefix/suffix aggregates, which back
    the executor's index-range joins and correlated-aggregate shortcuts.
    """

    def __init__(self, relation: Relation, position: int):
        decorated = [
            (row[position], row)
            for row in relation.rows
            if row[position] is not None
        ]
        decorated.sort(key=lambda pair: pair[0])
        self.keys: List[SQLValue] = [key for key, __ in decorated]
        self.ordered_rows: List[Row] = [row for __, row in decorated]

    def rows_in_range(
        self,
        low: Optional[SQLValue],
        high: Optional[SQLValue],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[Row]:
        """Rows whose key lies within the (possibly half-open) range."""
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self.keys, low)
        else:
            start = bisect.bisect_right(self.keys, low)
        if high is None:
            stop = len(self.keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self.keys, high)
        else:
            stop = bisect.bisect_left(self.keys, high)
        return self.ordered_rows[start:stop]


class Catalog:
    """Named tables plus declared (advisory) indexes."""

    def __init__(self) -> None:
        self._tables: Dict[str, Relation] = {}
        self.indexes: Dict[str, Tuple[str, Tuple[str, ...]]] = {}

    def create(
        self,
        name: str,
        columns: Sequence[str],
        types: Sequence[str],
        if_not_exists: bool = False,
    ) -> Relation:
        key = name.lower()
        if key in self._tables:
            if if_not_exists:
                return self._tables[key]
            raise SQLCatalogError(f"table {name!r} already exists")
        relation = Relation(name, tuple(columns), tuple(types))
        self._tables[key] = relation
        return relation

    def drop(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise SQLCatalogError(f"no table named {name!r}")
        del self._tables[key]

    def get(self, name: str) -> Relation:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SQLCatalogError(f"no table named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        return [relation.name for relation in self._tables.values()]
