"""Recursive-descent parser for the SQL subset."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import SQLSyntaxError
from repro.sqlbaseline.relational import sql_ast as ast
from repro.sqlbaseline.relational.tokens import SQLToken, tokenize_sql

_TYPE_ALIASES = {
    "INTEGER": "INTEGER",
    "INT": "INTEGER",
    "REAL": "REAL",
    "FLOAT": "REAL",
    "TEXT": "TEXT",
    "VARCHAR": "TEXT",
}

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}


def parse_sql(text: str) -> List[ast.Statement]:
    """Parse a script of ``;``-separated statements."""
    parser = _Parser(tokenize_sql(text))
    statements: List[ast.Statement] = []
    while not parser.at_eof():
        statements.append(parser.parse_statement())
        while parser.accept_symbol(";"):
            pass
    return statements


def parse_one(text: str) -> ast.Statement:
    """Parse exactly one statement."""
    statements = parse_sql(text)
    if len(statements) != 1:
        raise SQLSyntaxError(
            f"expected exactly one statement, got {len(statements)}"
        )
    return statements[0]


class _Parser:
    def __init__(self, tokens: List[SQLToken]):
        self._tokens = tokens
        self._index = 0

    # -- plumbing -----------------------------------------------------------
    @property
    def _current(self) -> SQLToken:
        return self._tokens[self._index]

    def _advance(self) -> SQLToken:
        token = self._current
        if token.kind != "eof":
            self._index += 1
        return token

    def at_eof(self) -> bool:
        return self._current.kind == "eof"

    def _error(self, message: str) -> SQLSyntaxError:
        token = self._current
        return SQLSyntaxError(
            f"{message}, found {token.kind} {token.value!r}",
            token.line,
            token.column,
        )

    def accept_keyword(self, word: str) -> bool:
        if self._current.is_keyword(word):
            self._advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self._error(f"expected {word}")

    def accept_symbol(self, symbol: str) -> bool:
        if self._current.is_symbol(symbol):
            self._advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise self._error(f"expected {symbol!r}")

    def expect_ident(self) -> str:
        if self._current.kind != "ident":
            raise self._error("expected an identifier")
        return str(self._advance().value)

    # -- statements -----------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        if self._current.is_keyword("CREATE"):
            return self._parse_create()
        if self._current.is_keyword("DROP"):
            return self._parse_drop()
        if self._current.is_keyword("INSERT"):
            return self._parse_insert()
        if self._current.is_keyword("DELETE"):
            return self._parse_delete()
        if self._current.is_keyword("UPDATE"):
            return self._parse_update()
        if self._current.is_keyword("SELECT"):
            return self._parse_select_like()
        raise self._error("expected a statement")

    def _parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("INDEX"):
            name = self.expect_ident()
            self.expect_keyword("ON")
            table = self.expect_ident()
            self.expect_symbol("(")
            columns = [self.expect_ident()]
            while self.accept_symbol(","):
                columns.append(self.expect_ident())
            self.expect_symbol(")")
            return ast.CreateIndex(name, table, tuple(columns))
        self.expect_keyword("TABLE")
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            # NOT is a keyword; EXISTS follows
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident()
        self.expect_symbol("(")
        columns = [self._parse_column_def()]
        while self.accept_symbol(","):
            columns.append(self._parse_column_def())
        self.expect_symbol(")")
        return ast.CreateTable(name, tuple(columns), if_not_exists)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        token = self._advance()
        if token.kind != "keyword" or token.value not in _TYPE_ALIASES:
            raise self._error("expected a column type")
        return ast.ColumnDef(name, _TYPE_ALIASES[str(token.value)])

    def _parse_drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return ast.DropTable(self.expect_ident(), if_exists)

    def _parse_insert(self) -> ast.Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: Tuple[str, ...] = ()
        if self.accept_symbol("("):
            names = [self.expect_ident()]
            while self.accept_symbol(","):
                names.append(self.expect_ident())
            self.expect_symbol(")")
            columns = tuple(names)
        if self.accept_keyword("VALUES"):
            rows = [self._parse_value_row()]
            while self.accept_symbol(","):
                rows.append(self._parse_value_row())
            return ast.InsertValues(table, columns, tuple(rows))
        query = self._parse_select_like()
        return ast.InsertSelect(table, columns, query)

    def _parse_value_row(self) -> Tuple[ast.Expr, ...]:
        self.expect_symbol("(")
        values = [self.parse_expr()]
        while self.accept_symbol(","):
            values.append(self.parse_expr())
        self.expect_symbol(")")
        return tuple(values)

    def _parse_delete(self) -> ast.Statement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _parse_update(self) -> ast.Statement:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self._parse_assignment()]
        while self.accept_symbol(","):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _parse_assignment(self) -> "tuple[str, ast.Expr]":
        column = self.expect_ident()
        self.expect_symbol("=")
        return column, self.parse_expr()

    def _parse_select_like(self) -> ast.SelectLike:
        first = self._parse_select()
        parts = [first]
        while self._current.is_keyword("UNION"):
            self.expect_keyword("UNION")
            self.expect_keyword("ALL")
            parts.append(self._parse_select())
        if len(parts) == 1:
            return first
        return ast.UnionAll(tuple(parts))

    def _parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items: List[Union[ast.SelectItem, ast.StarItem]] = [
            self._parse_select_item()
        ]
        while self.accept_symbol(","):
            items.append(self._parse_select_item())
        tables: List[ast.TableRef] = []
        if self.accept_keyword("FROM"):
            tables.append(self._parse_table_ref())
            while self.accept_symbol(","):
                tables.append(self._parse_table_ref())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: Tuple[ast.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            exprs = [self.parse_expr()]
            while self.accept_symbol(","):
                exprs.append(self.parse_expr())
            group_by = tuple(exprs)
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: List[ast.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self.accept_symbol(","):
                order_by.append(self._parse_order_item())
        limit: Optional[int] = None
        if self.accept_keyword("LIMIT"):
            token = self._advance()
            if token.kind != "number" or not isinstance(token.value, int):
                raise self._error("LIMIT expects an integer")
            limit = token.value
        return ast.Select(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_item(self) -> Union[ast.SelectItem, ast.StarItem]:
        if self._current.is_symbol("*"):
            self._advance()
            return ast.StarItem()
        # alias.* form
        if (
            self._current.kind == "ident"
            and self._index + 2 < len(self._tokens)
            and self._tokens[self._index + 1].is_symbol(".")
            and self._tokens[self._index + 2].is_symbol("*")
        ):
            table = self.expect_ident()
            self.expect_symbol(".")
            self.expect_symbol("*")
            return ast.StarItem(table)
        expr = self.parse_expr()
        alias: Optional[str] = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self._current.kind == "ident":
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    def _parse_table_ref(self) -> ast.TableRef:
        name = self.expect_ident()
        alias = name
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self._current.kind == "ident":
            alias = self.expect_ident()
        return ast.TableRef(name, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        return ast.OrderItem(expr, descending)

    # -- expressions ------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self.accept_keyword("OR"):
            expr = ast.Binary("OR", expr, self._parse_and())
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self.accept_keyword("AND"):
            expr = ast.Binary("AND", expr, self._parse_not())
        return expr

    def _parse_not(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            if self._current.is_keyword("EXISTS"):
                exists = self._parse_exists()
                return ast.ExistsExpr(exists.query, negated=True)
            return ast.Unary("NOT", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> ast.Expr:
        if self._current.is_keyword("EXISTS"):
            return self._parse_exists()
        expr = self._parse_additive()
        token = self._current
        if token.kind == "symbol" and token.value in _COMPARISONS:
            op = str(self._advance().value)
            if op == "<>":
                op = "!="
            return ast.Binary(op, expr, self._parse_additive())
        negated = False
        if self._current.is_keyword("NOT"):
            # BETWEEN / IN / LIKE negation
            probe = self._tokens[self._index + 1]
            if (
                probe.is_keyword("BETWEEN")
                or probe.is_keyword("IN")
                or probe.is_keyword("LIKE")
            ):
                self._advance()
                negated = True
        if self.accept_keyword("BETWEEN"):
            low = self._parse_additive()
            self.expect_keyword("AND")
            high = self._parse_additive()
            return ast.Between(expr, low, high, negated)
        if self.accept_keyword("IN"):
            self.expect_symbol("(")
            if self._current.is_keyword("SELECT"):
                query = self._parse_select()
                self.expect_symbol(")")
                return ast.InExpr(expr, None, query, negated)
            values = [self.parse_expr()]
            while self.accept_symbol(","):
                values.append(self.parse_expr())
            self.expect_symbol(")")
            return ast.InExpr(expr, tuple(values), None, negated)
        if self.accept_keyword("LIKE"):
            pattern = self._parse_additive()
            return ast.Like(expr, pattern, negated)
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return ast.IsNull(expr, is_negated)
        return expr

    def _parse_exists(self) -> ast.ExistsExpr:
        self.expect_keyword("EXISTS")
        self.expect_symbol("(")
        query = self._parse_select()
        self.expect_symbol(")")
        return ast.ExistsExpr(query)

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while True:
            if self.accept_symbol("+"):
                expr = ast.Binary("+", expr, self._parse_multiplicative())
            elif self.accept_symbol("-"):
                expr = ast.Binary("-", expr, self._parse_multiplicative())
            elif self.accept_symbol("||"):
                expr = ast.Binary("||", expr, self._parse_multiplicative())
            else:
                return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while True:
            if self.accept_symbol("*"):
                expr = ast.Binary("*", expr, self._parse_unary())
            elif self.accept_symbol("/"):
                expr = ast.Binary("/", expr, self._parse_unary())
            else:
                return expr

    def _parse_unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            return ast.Unary("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current
        if token.kind == "number":
            self._advance()
            return ast.Literal(token.value)
        if token.kind == "string":
            self._advance()
            return ast.Literal(str(token.value))
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_symbol("("):
            self._advance()
            if self._current.is_keyword("SELECT"):
                query = self._parse_select()
                self.expect_symbol(")")
                return ast.ScalarSubquery(query)
            expr = self.parse_expr()
            self.expect_symbol(")")
            return expr
        if token.kind == "ident":
            name = self.expect_ident()
            if self.accept_symbol("("):
                return self._parse_call(name)
            if self.accept_symbol("."):
                column = self.expect_ident()
                return ast.ColumnRef(name, column)
            return ast.ColumnRef(None, name)
        raise self._error("expected an expression")

    def _parse_case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        branches: List[Tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.parse_expr()
            self.expect_keyword("THEN")
            result = self.parse_expr()
            branches.append((condition, result))
        otherwise: Optional[ast.Expr] = None
        if self.accept_keyword("ELSE"):
            otherwise = self.parse_expr()
        self.expect_keyword("END")
        if not branches:
            raise self._error("CASE needs at least one WHEN branch")
        return ast.CaseWhen(tuple(branches), otherwise)

    def _parse_call(self, name: str) -> ast.Expr:
        upper = name.upper()
        if self._current.is_symbol("*"):
            self._advance()
            self.expect_symbol(")")
            return ast.FuncCall(upper, (), star=True)
        distinct = self.accept_keyword("DISTINCT")
        args: List[ast.Expr] = []
        if not self._current.is_symbol(")"):
            args.append(self.parse_expr())
            while self.accept_symbol(","):
                args.append(self.parse_expr())
        self.expect_symbol(")")
        return ast.FuncCall(upper, tuple(args), distinct=distinct)
