"""The SQL-based video retrieval system (paper §4).

Front end shared with the direct system: the conjunctive temporal formula
is parsed, its atomic subformulas identified, and their similarity tables
taken as input; this system then generates a sequence of SQL queries and
executes them on the mini relational engine, reading the final table back
as a similarity list.

Bulk loading of the atomic similarity tables goes straight into the
storage layer (the analogue of Sybase's ``bcp``), so measured query times
cover translation + SQL execution, not data entry.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.core.ops import DEFAULT_UNTIL_THRESHOLD
from repro.core.simlist import SimilarityList
from repro.errors import UnsupportedFormulaError, WorkloadError
from repro.htl import ast
from repro.sqlbaseline.relational.executor import Database
from repro.sqlbaseline.translate import SQLTranslator, Translation
from repro.sqlbaseline.translate_type2 import (
    LoadedAtom,
    Type2SQLTranslator,
)


def _sanitize(name: str) -> str:
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name).lower()
    if not cleaned or cleaned[0].isdigit():
        cleaned = "p_" + cleaned
    return cleaned


class SQLRetrievalSystem:
    """Evaluates type (1) HTL formulas by translation to SQL."""

    def __init__(self, threshold: float = DEFAULT_UNTIL_THRESHOLD):
        self.database = Database()
        self.translator = SQLTranslator(threshold)
        self._atom_tables: Dict[str, str] = {}
        self._atom_maxima: Dict[str, float] = {}
        self._n_segments = 0

    # -- loading ------------------------------------------------------------
    def load_segments(self, n_segments: int) -> None:
        """(Re)create the axis relation ``segments`` with ids 1..n."""
        if n_segments < 0:
            raise WorkloadError(f"negative segment count {n_segments}")
        self.database.execute("DROP TABLE IF EXISTS segments")
        self.database.execute("CREATE TABLE segments (id INTEGER)")
        relation = self.database.catalog.get("segments")
        relation.insert_many((i,) for i in range(1, n_segments + 1))
        self._n_segments = n_segments

    def load_atomic(self, name: str, sim: SimilarityList) -> str:
        """Bulk-load one atomic predicate's similarity table."""
        table = "sim_" + _sanitize(name)
        self.database.execute(f"DROP TABLE IF EXISTS {table}")
        self.database.execute(
            f"CREATE TABLE {table} "
            f"(beg_id INTEGER, end_id INTEGER, act REAL)"
        )
        relation = self.database.catalog.get(table)
        relation.insert_many(
            (entry.begin, entry.end, float(entry.actual)) for entry in sim
        )
        self._atom_tables[name] = table
        self._atom_maxima[name] = sim.maximum
        return table

    def loaded_atoms(self) -> List[str]:
        return sorted(self._atom_tables)

    # -- evaluation ------------------------------------------------------------
    def translate(self, formula: ast.Formula) -> Translation:
        """The SQL script for a formula over the loaded atoms."""
        return self.translator.translate(
            formula, self._atom_tables, self._atom_maxima
        )

    def evaluate(self, formula: ast.Formula) -> SimilarityList:
        """Translate, execute the statement sequence, read back the result."""
        if self._n_segments == 0 and "segments" not in self.database.catalog:
            raise UnsupportedFormulaError(
                "call load_segments() before evaluating queries"
            )
        translation = self.translate(formula)
        try:
            for statement in translation.statements:
                self.database.execute(statement)
            result = self.database.query(
                f"SELECT beg_id, end_id, act FROM {translation.output_table}"
            )
        finally:
            self._drop_temporaries(translation)
        entries = [
            ((beg, end), act)
            for beg, end, act in result.rows
            if act is not None and act > 0
        ]
        return SimilarityList.from_entries(entries, translation.maximum)

    def _drop_temporaries(self, translation: Translation) -> None:
        for table in translation.temp_tables:
            self.database.execute(f"DROP TABLE IF EXISTS {table}")


class Type2SQLSystem:
    """SQL-based evaluation of type (2) formulas over a video.

    The front end matches the direct engine's: the formula's maximal
    non-temporal subformulas go to the picture-retrieval system, whose
    similarity tables (evaluation rows + interval lists) are bulk-loaded
    into relations; the generated SQL then computes the combined table and
    the final prefix-∃ projection.  Results equal the direct engine in its
    default (paper, inner-join) mode — property-tested.
    """

    def __init__(self, threshold: float = DEFAULT_UNTIL_THRESHOLD):
        self.database = Database()
        self.translator = Type2SQLTranslator(threshold)
        self._atom_counter = 0

    def evaluate_on_video(self, formula, video, level: int = 2):
        """Evaluate a closed type (2) formula at a level of one video."""
        from repro.pictures.retrieval import PictureRetrievalSystem
        from repro.pictures.scoring import exists_pool

        nodes = video.nodes_at_level(level)
        pictures = PictureRetrievalSystem([node.metadata for node in nodes])
        universe = exists_pool(video.object_universe())
        self.load_segments(len(nodes))
        cache: Dict[object, LoadedAtom] = {}

        def loader(atom) -> LoadedAtom:
            if atom not in cache:
                table = pictures.similarity_table(atom, universe=universe)
                cache[atom] = self.load_atom_table(atom, table)
            return cache[atom]

        translation = self.translator.translate(formula, loader)
        try:
            for statement in translation.statements:
                self.database.execute(statement)
            result = self.database.query(
                f"SELECT beg_id, end_id, act FROM {translation.output_table}"
            )
        finally:
            for table in translation.temp_tables:
                self.database.execute(f"DROP TABLE IF EXISTS {table}")
        entries = [
            ((beg, end), act)
            for beg, end, act in result.rows
            if act is not None and act > 0
        ]
        return SimilarityList.from_entries(entries, translation.maximum)

    # -- loading ------------------------------------------------------------
    def load_segments(self, n_segments: int) -> None:
        self.database.execute("DROP TABLE IF EXISTS segments")
        self.database.execute("CREATE TABLE segments (id INTEGER)")
        self.database.catalog.get("segments").insert_many(
            (i,) for i in range(1, n_segments + 1)
        )

    def load_atom_table(self, atom, table) -> LoadedAtom:
        """Bulk-load one atom's similarity table into two relations."""
        if table.attr_vars:
            raise UnsupportedFormulaError(
                "type (2) formulas carry no attribute variables; "
                f"atom has columns {table.attr_vars}"
            )
        self._atom_counter += 1
        base = f"atom{self._atom_counter}"
        variables = table.object_vars
        var_decls = "".join(f"v_{name} TEXT, " for name in variables)
        self.database.execute(f"DROP TABLE IF EXISTS {base}")
        self.database.execute(f"DROP TABLE IF EXISTS {base}_ev")
        self.database.execute(
            f"CREATE TABLE {base} "
            f"({var_decls}beg_id INTEGER, end_id INTEGER, act REAL)"
        )
        self.database.execute(
            f"CREATE TABLE {base}_ev ({var_decls}dummy INTEGER)"
        )
        entries_relation = self.database.catalog.get(base)
        evals_relation = self.database.catalog.get(f"{base}_ev")
        for row in table.rows:
            evals_relation.insert(tuple(row.objects) + (1,))
            for entry in row.sim:
                entries_relation.insert(
                    tuple(row.objects)
                    + (entry.begin, entry.end, float(entry.actual))
                )
        return LoadedAtom(
            entries_table=base,
            evals_table=f"{base}_ev",
            variables=variables,
            maximum=table.maximum,
        )
