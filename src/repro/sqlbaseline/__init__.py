"""The SQL-based baseline: mini relational engine + HTL→SQL translation."""

from repro.sqlbaseline.relational.executor import Database, ResultSet
from repro.sqlbaseline.system import SQLRetrievalSystem, Type2SQLSystem
from repro.sqlbaseline.translate import SQLTranslator, Translation
from repro.sqlbaseline.translate_type2 import Type2SQLTranslator

__all__ = [
    "Database",
    "ResultSet",
    "SQLRetrievalSystem",
    "Type2SQLSystem",
    "SQLTranslator",
    "Type2SQLTranslator",
    "Translation",
]
