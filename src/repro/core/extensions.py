"""Extensions beyond the paper (its §5 future-work directions).

The paper closes with: "As part of future research, we would like to
investigate the extension of the above methods to the full language.  It
will also be worthwhile to investigate other similarity functions, other
than the fractional similarity function".  This module supplies both:

* :func:`or_lists` — similarity of a *disjunction*: the best disjunct,
  pointwise (``m = max(m₁, m₂)``, consistent with the atom-level ``∨`` of
  the picture scoring).  With it the engine (``allow_extensions=True``)
  evaluates every HTL formula except negation over temporal subformulas.
* :func:`fuzzy_and_lists` — an alternative similarity function for ``∧``:
  the fuzzy-logic minimum of the *fractional* similarities (output
  maximum 1).  Unlike the paper's sum, an exact conjunction requires both
  conjuncts exact, and a zero conjunct zeroes the result.
* :func:`bounded_eventually` / :func:`bounded_always` — windowed temporal
  operators (``within the next k segments``), natural in video retrieval
  where "later" usually means "soon after".

All operate on interval-compressed lists and are property-tested against
per-segment naive references.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from repro.core.ops import max_merge_lists
from repro.core.simlist import SIM_EPS, SimilarityList
from repro.errors import SimilarityListInvariantError


def or_lists(left: SimilarityList, right: SimilarityList) -> SimilarityList:
    """Similarity list of ``f = g ∨ h``: pointwise maximum of actuals.

    ``m(f) = max(m(g), m(h))``; every actual is bounded by its own
    operand's maximum, hence by the output maximum.
    """
    maximum = max(left.maximum, right.maximum)
    boundaries = sorted(
        {entry.begin for entry in left}
        | {entry.end + 1 for entry in left}
        | {entry.begin for entry in right}
        | {entry.end + 1 for entry in right}
    )
    pieces: List[Tuple[Tuple[int, int], float]] = []
    for start, stop in zip(boundaries, boundaries[1:]):
        value = max(left.actual_at(start), right.actual_at(start))
        if value > SIM_EPS:
            pieces.append(((start, stop - 1), value))
    return SimilarityList.from_entries(pieces, maximum)


def fuzzy_and_lists(
    left: SimilarityList, right: SimilarityList
) -> SimilarityList:
    """Fuzzy conjunction: ``frac(f) = min(frac(g), frac(h))``, ``m = 1``.

    An alternative similarity function (paper §5): conjunctions are only
    as good as their worst conjunct, so partial matches with one missing
    conjunct score zero — exact-match behaviour at the extremes, graded in
    between.
    """
    boundaries = sorted(
        {entry.begin for entry in left}
        | {entry.end + 1 for entry in left}
        | {entry.begin for entry in right}
        | {entry.end + 1 for entry in right}
    )
    pieces: List[Tuple[Tuple[int, int], float]] = []
    for start, stop in zip(boundaries, boundaries[1:]):
        value = min(left.fraction_at(start), right.fraction_at(start))
        if value > SIM_EPS:
            pieces.append(((start, stop - 1), value))
    return SimilarityList.from_entries(pieces, 1.0)


def bounded_eventually(
    operand: SimilarityList, window: int
) -> SimilarityList:
    """``eventually within k``: best value among the next ``k`` segments.

    ``value(u) = max{ a(u″) : u ≤ u″ ≤ u + k }``.  ``window = 0``
    degenerates to the operand itself; the unbounded operator is
    :func:`repro.core.ops.eventually_list`.

    Each entry ``[b, e] → a`` contributes ``a`` to every position in
    ``[b - k, e]``, so the result is the pointwise maximum of the
    stretched entries — computed with one boundary sweep.
    """
    if window < 0:
        raise SimilarityListInvariantError(
            f"window must be non-negative, got {window}"
        )
    stretched = [
        (max(entry.begin - window, 1), entry.end, entry.actual)
        for entry in operand
    ]
    return _pointwise_max_of_spans(stretched, operand.maximum)


def bounded_always(
    operand: SimilarityList, window: int, axis_end: int
) -> SimilarityList:
    """``always within k``: worst value among the next ``k`` segments.

    ``value(u) = min{ a(u″) : u ≤ u″ ≤ min(u + k, axis_end) }``; segments
    beyond ``axis_end`` do not exist and are not quantified over.
    """
    if window < 0:
        raise SimilarityListInvariantError(
            f"window must be non-negative, got {window}"
        )
    if axis_end < 1:
        return SimilarityList.empty(operand.maximum)
    boundaries = set()
    for entry in operand:
        for bound in (
            entry.begin,
            entry.end + 1,
            entry.begin - window,
            entry.end + 1 - window,
        ):
            if 1 <= bound <= axis_end + 1:
                boundaries.add(bound)
    boundaries.add(1)
    boundaries.add(axis_end + 1)
    ordered = sorted(boundaries)
    pieces: List[Tuple[Tuple[int, int], float]] = []
    for start, stop in zip(ordered, ordered[1:]):
        value = _window_min(operand, start, min(start + window, axis_end))
        if value > SIM_EPS:
            pieces.append(((start, stop - 1), value))
    return SimilarityList.from_entries(pieces, operand.maximum)


def _window_min(operand: SimilarityList, lo: int, hi: int) -> float:
    """Minimum actual over ``[lo, hi]`` (0 when any gap intersects)."""
    worst = operand.maximum
    cursor = lo
    entries = operand.entries
    begins = [entry.begin for entry in entries]
    index = bisect.bisect_right(begins, cursor) - 1
    if index < 0:
        return 0.0
    while cursor <= hi:
        if index >= len(entries):
            return 0.0
        entry = entries[index]
        if cursor < entry.begin or cursor > entry.end:
            return 0.0
        worst = min(worst, entry.actual)
        cursor = entry.end + 1
        index += 1
    return worst


def _pointwise_max_of_spans(
    spans: List[Tuple[int, int, float]], maximum: float
) -> SimilarityList:
    """Max over possibly-overlapping weighted spans (heap sweep)."""
    if not spans:
        return SimilarityList.empty(maximum)
    singletons = [
        SimilarityList.from_entries([((begin, end), actual)], maximum)
        for begin, end, actual in spans
    ]
    return max_merge_lists(singletons)
