"""Top-k retrieval and ranked presentation (paper §1).

"Under our similarity based retrieval, the k top video segments that have
the highest similarity values with respect to the user query will be
retrieved; here, k may be a parameter specified by the user."

Multi-video retrieval is the fast path here: :func:`top_k_across_videos`
streams interval entries into a bounded size-k heap (never expanding a
similarity list into per-segment rows), skips videos whose admissible
upper bound (:func:`repro.core.engine.actual_upper_bound`) cannot crack
the current k-th score, and optionally fans the per-video evaluations out
over a thread pool.  All three features preserve the exact ranking of the
naive serial scan: the k best segments under the total order
``(-actual, video, segment_id)`` are a canonical set, independent of
evaluation or merge order, and pruning only ever skips videos whose every
segment ranks strictly below the current k-th.
"""

from __future__ import annotations

import heapq
import threading
import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.core import instrument, resilience, trace
from repro.core.engine import RetrievalEngine, actual_upper_bound
from repro.core.simlist import SIM_EPS, SimilarityList, SimilarityValue
from repro.errors import BudgetExceededError, UnsupportedFormulaError
from repro.htl import ast
from repro.htl.pretty import pretty
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video


@dataclass(frozen=True)
class RetrievedSegment:
    """One ranked answer: which video, which segment, how similar."""

    video: str
    segment_id: int
    actual: float
    maximum: float

    @property
    def fraction(self) -> float:
        return self.actual / self.maximum


def ranked_entries(sim: SimilarityList) -> List[Tuple[int, int, float]]:
    """List entries sorted by descending similarity (the paper's Table 4
    presentation), as ``(begin, end, actual)`` triples."""
    triples = [
        (entry.begin, entry.end, entry.actual) for entry in sim.entries
    ]
    triples.sort(key=lambda triple: (-triple[2], triple[0]))
    return triples


def top_k_segments(
    sim: SimilarityList, k: int, video: str = ""
) -> List[RetrievedSegment]:
    """The k highest-similarity segments of one list.

    Ties break on ascending segment id, so results are deterministic.
    Intervals are expanded lazily in rank order — no full expansion.
    """
    if k <= 0:
        return []
    results: List[RetrievedSegment] = []
    for begin, end, actual in ranked_entries(sim):
        for segment_id in range(begin, end + 1):
            results.append(
                RetrievedSegment(video, segment_id, actual, sim.maximum)
            )
            if len(results) == k:
                return results
    return results


class _DescStr:
    """A string ordered in reverse, so heap tuples can mix ascending actual
    values with descending tie-break columns."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __lt__(self, other: "_DescStr") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescStr) and self.value == other.value


#: A heap item: (actual, reversed video name, negated segment id, maximum).
#: Under the min-heap order, heap[0] is the *worst*-ranked kept segment —
#: lowest actual, then lexicographically largest video, then largest id —
#: exactly the one a better candidate should displace.
_HeapItem = Tuple[float, _DescStr, int, float]


def _stream_entries(
    heap: List[_HeapItem], k: int, sim: SimilarityList, video: str
) -> None:
    """Fold one video's similarity list into the bounded global heap.

    Entries stay interval-compressed: at most ``k`` segments per entry are
    ever materialised (ties within an entry break on ascending id, so its
    best k segments are its first k), and whole entries are skipped when
    they cannot beat the current k-th score.
    """
    name = _DescStr(video)
    for entry in sim.entries:
        if len(heap) == k and entry.actual < heap[0][0]:
            continue
        last = min(entry.end, entry.begin + k - 1)
        for segment_id in range(entry.begin, last + 1):
            item = (entry.actual, name, -segment_id, sim.maximum)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif heap[0] < item:
                heapq.heapreplace(heap, item)
            else:
                # Later segments of this entry rank strictly worse.
                break


def _drain(heap: List[_HeapItem]) -> List[RetrievedSegment]:
    """Best-first results from the bounded heap."""
    return [
        RetrievedSegment(name.value, -neg_id, actual, maximum)
        for actual, name, neg_id, maximum in sorted(heap, reverse=True)
    ]


def _video_bound(
    formula: ast.Formula,
    video: Video,
    level: int,
    database: VideoDatabase,
) -> Optional[float]:
    """Admissible per-video upper bound, or None when none is derivable."""
    try:
        return actual_upper_bound(formula, video, level, database)
    except UnsupportedFormulaError:
        return None


# ---------------------------------------------------------------------------
# cross-shard bound exchange
# ---------------------------------------------------------------------------
class BoundExchange:
    """A shared lower bound on the global k-th-best similarity score.

    The cross-shard gather protocol (DESIGN.md §12): every shard streams
    its evaluated entries into its *local* size-k heap as usual, but also
    publishes the entry values here.  The exchange keeps the k best
    published values in a min-heap, so :meth:`threshold` is the running
    k-th-best score *across all shards* — a sound pruning floor
    everywhere, because the final global k-th score can only be at least
    this good.  A lagging shard therefore prunes videos against the
    leaders' scores long before its own heap fills.

    Only scalar values cross the exchange — never segments — so the
    per-publish cost is O(entries · k) comparisons and the merge step
    stays provenance-preserving (:meth:`TopKResult.merge`).

    Thread-safe: one exchange is shared by every shard worker of a
    scatter-gather query.
    """

    __slots__ = ("k", "_heap", "_lock", "published")

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._heap: List[float] = []
        self._lock = threading.Lock()
        #: Total values folded in, for observability (monotone).
        self.published = 0

    def threshold(self) -> Optional[float]:
        """The k-th-best published value, or None before k are known."""
        with self._lock:
            return self._heap[0] if len(self._heap) == self.k else None

    def publish(self, sim: SimilarityList) -> None:
        """Fold one similarity list's entry values into the exchange.

        An entry spanning ``n`` segments contributes ``min(n, k)``
        candidates at its value — exactly the segments it could place in
        a global top-k.
        """
        k = self.k
        with self._lock:
            heap = self._heap
            for entry in sim.entries:
                count = min(entry.end - entry.begin + 1, k)
                for __ in range(count):
                    if len(heap) < k:
                        heapq.heappush(heap, entry.actual)
                    elif entry.actual > heap[0]:
                        heapq.heapreplace(heap, entry.actual)
                    else:
                        # Further copies of this value cannot improve.
                        break
                self.published += count


# ---------------------------------------------------------------------------
# per-video provenance
# ---------------------------------------------------------------------------
#: Outcome statuses recorded by :func:`top_k_across_videos` per video.
OUTCOME_OK = "ok"
OUTCOME_PRUNED = "pruned"
OUTCOME_FAILED = "failed"
OUTCOME_TIMED_OUT = "timed-out"

#: Merge precedence of conflicting outcomes for one video: an evaluated
#: video (its segments are in hand) beats a degraded one (the damage must
#: stay visible in the merged provenance) beats a pruned one.
_OUTCOME_RANK = {
    OUTCOME_OK: 3,
    OUTCOME_FAILED: 2,
    OUTCOME_TIMED_OUT: 2,
    OUTCOME_PRUNED: 1,
}


@dataclass(frozen=True)
class VideoOutcome:
    """What happened to one video during a multi-video query.

    ``status`` is one of :data:`OUTCOME_OK` (evaluated and ranked),
    :data:`OUTCOME_PRUNED` (skipped because its admissible upper bound
    could not crack the current k-th score — not a degradation),
    :data:`OUTCOME_FAILED` (evaluation failed and, in lenient mode, the
    ranking excludes it) or :data:`OUTCOME_TIMED_OUT` (the query budget
    expired before or during its evaluation).  ``error`` carries the
    triggering exception for the two degraded statuses.
    """

    video: str
    status: str
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.status == OUTCOME_OK

    @property
    def degraded(self) -> bool:
        """True when this video is missing from the ranking abnormally."""
        return self.status in (OUTCOME_FAILED, OUTCOME_TIMED_OUT)


class TopKResult(Sequence):
    """The ranked segments of a multi-video query, plus provenance.

    Behaves as a sequence of :class:`RetrievedSegment` (indexing,
    iteration, ``len``, equality against plain lists), so existing callers
    of :func:`top_k_across_videos` keep working unchanged.  The extras:

    * ``outcomes`` — one :class:`VideoOutcome` per video of the database,
      in database order;
    * ``partial`` — True when at least one video failed or timed out, i.e.
      the ranking is best-effort over the videos that did evaluate (only
      possible in lenient mode — strict mode raises instead);
    * ``profile`` — the query's root :class:`~repro.core.trace.Span` when
      the call ran with tracing on (``profile=True`` or an ambient
      :func:`repro.core.trace.recording`), else None.  Provenance like
      ``outcomes``: never part of ranking equality.
    """

    __slots__ = ("segments", "outcomes", "partial", "profile")

    def __init__(
        self,
        segments: List[RetrievedSegment],
        outcomes: Sequence = (),
        partial: bool = False,
        profile: Optional[trace.Span] = None,
    ):
        self.segments: List[RetrievedSegment] = list(segments)
        self.outcomes: Tuple[VideoOutcome, ...] = tuple(outcomes)
        self.partial = bool(partial)
        self.profile = profile

    # -- sequence protocol over the ranked segments ---------------------
    def __len__(self) -> int:
        return len(self.segments)

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[RetrievedSegment, List[RetrievedSegment]]:
        return self.segments[index]

    def __iter__(self) -> Iterator[RetrievedSegment]:
        return iter(self.segments)

    def __eq__(self, other: object) -> bool:
        """Ranking equality: outcomes are provenance, not part of the rank."""
        if isinstance(other, TopKResult):
            return self.segments == other.segments
        if isinstance(other, (list, tuple)):
            return self.segments == list(other)
        return NotImplemented

    def __repr__(self) -> str:
        flags = ", partial=True" if self.partial else ""
        return (
            f"TopKResult({len(self.segments)} segments, "
            f"{len(self.outcomes)} videos{flags})"
        )

    # -- merging ---------------------------------------------------------
    @classmethod
    def merge(
        cls, *results: "TopKResult", k: Optional[int] = None
    ) -> "TopKResult":
        """Provenance-preserving union of several results.

        The gather half of scatter-gather: segments are unioned,
        deduplicated by ``(video, segment id)`` keeping the highest
        actual value, re-ranked under the canonical total order
        ``(-actual, video, segment id)``, and truncated to ``k`` when
        given.  Because the top-k set under a total order is canonical,
        merging per-shard top-k results of disjoint shards reproduces
        the unsharded ranking exactly.

        Outcomes are unioned by video.  When two results report the same
        video (overlapping corpora, retried queries), the most
        informative status wins: ``ok`` (we have its segments) over the
        degraded statuses (the damage must stay visible) over
        ``pruned``; ties keep the first-seen outcome.  ``partial`` is
        recomputed from the merged outcomes; ``profile`` keeps the first
        non-None span.
        """
        ranked: List[RetrievedSegment] = sorted(
            (segment for result in results for segment in result.segments),
            key=lambda s: (-s.actual, s.video, s.segment_id),
        )
        seen: set = set()
        segments: List[RetrievedSegment] = []
        for segment in ranked:
            key = (segment.video, segment.segment_id)
            if key in seen:
                continue
            seen.add(key)
            segments.append(segment)
            if k is not None and len(segments) == k:
                break
        outcomes: Dict[str, VideoOutcome] = {}
        for result in results:
            for outcome in result.outcomes:
                previous = outcomes.get(outcome.video)
                if previous is None or (
                    _OUTCOME_RANK.get(outcome.status, 0)
                    > _OUTCOME_RANK.get(previous.status, 0)
                ):
                    outcomes[outcome.video] = outcome
        profile = next(
            (result.profile for result in results if result.profile), None
        )
        merged = tuple(outcomes.values())
        return cls(
            segments,
            merged,
            partial=any(outcome.degraded for outcome in merged),
            profile=profile,
        )

    # -- export ----------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-safe summary of the ranking and its provenance.

        The shape the serving layer returns to clients (DESIGN.md §14)
        and the benchmarks embed in ``BENCH_*.json``: ranked segments,
        the per-video outcome ledger, and the partial flag.  ``profile``
        is *not* embedded — span trees export separately through
        :func:`repro.bench.reporting.observability_payload`.
        """
        return {
            "segments": [
                {
                    "video": segment.video,
                    "segment_id": segment.segment_id,
                    "actual": segment.actual,
                    "maximum": segment.maximum,
                }
                for segment in self.segments
            ],
            "outcomes": {
                outcome.video: outcome.status for outcome in self.outcomes
            },
            "partial": self.partial,
        }

    # -- provenance helpers ---------------------------------------------
    def outcome_for(self, video: str) -> Optional[VideoOutcome]:
        """The recorded outcome of one video, by name."""
        for outcome in self.outcomes:
            if outcome.video == video:
                return outcome
        return None

    @property
    def failed_videos(self) -> List[str]:
        """Names of videos missing from the ranking abnormally."""
        return [o.video for o in self.outcomes if o.degraded]


def top_k_across_videos(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
    level: int = 2,
    *,
    parallelism: Optional[int] = None,
    prune: bool = True,
    budget: Optional[resilience.QueryBudget] = None,
    policy: Optional[resilience.ResiliencePolicy] = None,
    lenient: bool = False,
    profile: bool = False,
    exchange: Optional[BoundExchange] = None,
) -> TopKResult:
    """Evaluate the query on every video and rank segments globally.

    Multiple videos are handled exactly as the paper prescribes — "using
    two numbers one of which gives the video id and the other gives the id
    of the video segment within the video".

    ``prune=True`` skips a video when its admissible upper bound is
    strictly below the current k-th score; ``parallelism >= 2`` evaluates
    videos on that many threads.  Both knobs return rankings identical to
    the serial unpruned scan (see the module docstring for why).

    Resilience (DESIGN.md §8): ``budget`` bounds the whole fan-out by
    wall-clock and cooperative steps; ``policy`` configures the degraded
    fallback chain; ``lenient=True`` (or a lenient policy) turns per-video
    failures into recorded :class:`VideoOutcome` entries instead of
    raising, returning a ``partial=True`` :class:`TopKResult` that still
    ranks every video that did evaluate.  In strict mode (the default) the
    first failure propagates after pending sibling evaluations are
    cancelled.  With none of the three knobs set and no ambient
    :func:`repro.core.resilience.scope` active, the call runs exactly the
    pre-resilience fast path.

    Observability (DESIGN.md §10): ``profile=True`` — or an ambient
    :func:`repro.core.trace.recording` — collects a hierarchical trace
    (query → video → subformula → atom-sweep/list-op/top-k spans) and
    attaches its root to ``TopKResult.profile``.  Per-video spans carry
    the :class:`VideoOutcome` status, budget-step consumption and cache
    hit/miss deltas; fallbacks and breaker trips appear as span events.
    With metrics enabled (``instrument.enable()``), query and per-video
    latencies additionally feed the ``query-seconds`` /
    ``video-seconds`` histograms.

    Sharding (DESIGN.md §12): ``exchange`` shares a
    :class:`BoundExchange` with sibling calls over other shards, so the
    pruning floor is the running *global* k-th-best score, not just this
    call's local heap.  Evaluated lists are published back into the
    exchange.  The ranking this call returns is still its own corpus's
    top-k; :meth:`TopKResult.merge` assembles the global answer.

    Planning (DESIGN.md §13): when the engine carries a planner, each
    video's evaluation runs under a compiled query plan.  Plans are keyed
    by the index's *statistics signature*, so videos — and shards — whose
    indices summarise identically reuse one plan across the whole
    fan-out; traced queries annotate the per-query ``plans-built`` /
    ``plan-reuses`` / ``plan-skips`` deltas on the query span.
    """
    if k <= 0:
        return TopKResult([])
    if not instrument.is_enabled():
        return _dispatch_top_k(
            engine, formula, database, k, level, parallelism, prune,
            budget, policy, lenient, profile, exchange,
        )
    started = time.perf_counter()
    try:
        return _dispatch_top_k(
            engine, formula, database, k, level, parallelism, prune,
            budget, policy, lenient, profile, exchange,
        )
    finally:
        instrument.observe(
            instrument.QUERY_LATENCY, time.perf_counter() - started
        )


def top_k_within_shard(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
    level: int = 2,
    *,
    parallelism: Optional[int] = None,
    prune: bool = True,
    budget: Optional[resilience.QueryBudget] = None,
    policy: Optional[resilience.ResiliencePolicy] = None,
    lenient: bool = False,
    exchange: Optional[BoundExchange] = None,
) -> TopKResult:
    """One shard's slice of a scatter-gather query.

    Exactly :func:`top_k_across_videos` minus the query-span bookkeeping:
    the caller (:class:`repro.shard.ShardedCorpus`) already opened the
    query and shard spans, so per-video spans nest directly under the
    shard (query → shard → video), and per-shard latency is not
    double-counted into the ``query-seconds`` histogram.
    """
    if k <= 0:
        return TopKResult([])
    return _top_k_impl(
        engine, formula, database, k, level, parallelism, prune,
        budget, policy, lenient, exchange,
    )


def _dispatch_top_k(
    engine, formula, database, k, level, parallelism, prune,
    budget, policy, lenient, profile, exchange,
) -> TopKResult:
    """Route the call through a query span when tracing is requested."""
    recorder = trace.current()
    if recorder is None:
        if not profile:
            return _top_k_impl(
                engine, formula, database, k, level, parallelism, prune,
                budget, policy, lenient, exchange,
            )
        with trace.recording() as recorder:
            return _traced_top_k(
                recorder, engine, formula, database, k, level, parallelism,
                prune, budget, policy, lenient, exchange,
            )
    return _traced_top_k(
        recorder, engine, formula, database, k, level, parallelism, prune,
        budget, policy, lenient, exchange,
    )


def _clip_query(formula: ast.Formula, limit: int = 60) -> str:
    text = pretty(formula)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _traced_top_k(
    recorder, engine, formula, database, k, level, parallelism, prune,
    budget, policy, lenient, exchange,
) -> TopKResult:
    # Videos (and shards) with identical index shapes share one compiled
    # plan — the planner's cache key is the statistics signature, not the
    # video name — so a fan-out typically builds a handful of plans and
    # reuses them everywhere.  The deltas annotated below make that reuse
    # visible per query.
    planner = getattr(engine, "planner", None)
    plans_before = planner.stats if planner is not None else None
    with recorder.span(
        trace.KIND_QUERY,
        f"top-{k}: {_clip_query(formula)}",
        k=k,
        level=level,
        parallelism=parallelism if parallelism else 1,
    ) as query_span:
        result = _top_k_impl(
            engine, formula, database, k, level, parallelism, prune,
            budget, policy, lenient, exchange,
        )
        if planner is not None:
            plans_after = planner.stats
            query_span.attrs["plans-built"] = (
                plans_after.plans_built - plans_before.plans_built
            )
            query_span.attrs["plan-reuses"] = (
                plans_after.cache_hits - plans_before.cache_hits
            )
            query_span.attrs["plan-skips"] = (
                plans_after.skipped_subformulas
                - plans_before.skipped_subformulas
            )
        result.profile = query_span
        return result


def _run_video(
    video: Video,
    worker: Callable[[], Optional[VideoOutcome]],
    budget: Optional[resilience.QueryBudget],
) -> Optional[VideoOutcome]:
    """Run one per-video step inside a ``video`` span when tracing.

    The span carries the :class:`VideoOutcome` status and the budget-step
    delta of the step (exact serially; under a thread pool the shared
    step counter interleaves siblings, so read it as fan-out pressure,
    not isolated cost).  A strict-mode exception closes the span with its
    ``error`` attribute set and propagates.
    """
    recorder = trace.current()
    if recorder is None:
        return worker()
    steps_before = budget.steps if budget is not None else 0
    with recorder.span(trace.KIND_VIDEO, video.name) as video_span:
        outcome = worker()
        if budget is not None:
            video_span.attrs["budget-steps"] = budget.steps - steps_before
        if outcome is None:
            video_span.attrs["status"] = "cancelled"
            return None
        video_span.attrs["status"] = outcome.status
        if outcome.error is not None:
            video_span.attrs["error"] = type(outcome.error).__name__
        return outcome


def _prune_floor(
    local_worst: Optional[float], exchange: Optional[BoundExchange]
) -> Optional[float]:
    """The tightest admissible pruning floor currently known.

    Both sources are sound lower bounds on the final k-th-best global
    score — the local heap once it holds k segments, and the cross-shard
    exchange once k values have been published anywhere — so their max
    is too.
    """
    remote = exchange.threshold() if exchange is not None else None
    if local_worst is None:
        return remote
    if remote is None:
        return local_worst
    return max(local_worst, remote)


def _top_k_impl(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
    level: int,
    parallelism: Optional[int],
    prune: bool,
    budget: Optional[resilience.QueryBudget],
    policy: Optional[resilience.ResiliencePolicy],
    lenient: bool,
    exchange: Optional[BoundExchange] = None,
) -> TopKResult:
    outcomes: List[VideoOutcome] = []
    ambient = resilience.current()
    resilient = (
        budget is not None
        or policy is not None
        or lenient
        or ambient is not None
    )
    context: Optional[resilience.ResilienceContext] = None
    if resilient:
        if policy is None:
            policy = (
                ambient.policy
                if ambient is not None
                else resilience.ResiliencePolicy()
            )
        if lenient and not policy.lenient:
            policy = replace(policy, mode=resilience.LENIENT)
        if budget is None and ambient is not None:
            budget = ambient.budget
        if (
            ambient is not None
            and ambient.policy is policy
            and ambient.budget is budget
        ):
            context = ambient  # reuse the ambient breakers
        else:
            context = resilience.ResilienceContext(policy, budget)
    strict = context is None or not context.policy.lenient

    def evaluate(video: Video) -> SimilarityList:
        if not instrument.is_enabled():
            return _evaluate(video)
        eval_started = time.perf_counter()
        try:
            return _evaluate(video)
        finally:
            instrument.observe(
                instrument.VIDEO_LATENCY, time.perf_counter() - eval_started
            )

    def _evaluate(video: Video) -> SimilarityList:
        resilience.fault(resilience.SITE_TOPK_WORKER)
        if context is not None and context.policy.engine_fallback:
            sim = resilience.evaluate_with_fallback(
                engine, formula, video, level, database, context
            )
        else:
            sim = engine.evaluate_video(
                formula, video, level=level, database=database
            )
        sim = resilience.fault_value(resilience.SITE_TOPK_WORKER, sim)
        if context is not None:
            # Trust boundary: a corrupted list must not enter the shared
            # heap as a silently wrong ranking.
            sim.validate()
        return sim

    heap: List[_HeapItem] = []
    videos = list(database.videos())
    trace.annotate(videos=len(videos))
    active_budget = context.budget if context is not None else None
    activation = (
        resilience.activate(context) if context is not None else nullcontext()
    )

    if parallelism is None or parallelism <= 1:
        deadline: Optional[BudgetExceededError] = None

        def serial_step(video: Video) -> VideoOutcome:
            nonlocal deadline
            if deadline is not None:
                return VideoOutcome(video.name, OUTCOME_TIMED_OUT, deadline)
            if prune:
                floor = _prune_floor(
                    heap[0][0] if len(heap) == k else None, exchange
                )
                if floor is not None:
                    bound = _video_bound(formula, video, level, database)
                    if bound is not None and bound < floor - SIM_EPS:
                        trace.annotate(bound=bound)
                        return VideoOutcome(video.name, OUTCOME_PRUNED)
            try:
                sim = evaluate(video)
            except BudgetExceededError as exc:
                if strict:
                    raise
                deadline = exc
                return VideoOutcome(video.name, OUTCOME_TIMED_OUT, exc)
            except Exception as exc:
                if strict:
                    raise
                return VideoOutcome(video.name, OUTCOME_FAILED, exc)
            with trace.staged_span(
                trace.TOP_K, trace.KIND_TOPK, "stream-entries"
            ):
                _stream_entries(heap, k, sim, video.name)
            if exchange is not None:
                exchange.publish(sim)
            return VideoOutcome(video.name, OUTCOME_OK)

        with activation:
            for video in videos:
                outcomes.append(
                    _run_video(
                        video, lambda: serial_step(video), active_budget
                    )
                )
        with trace.staged_span(trace.TOP_K, trace.KIND_TOPK, "rank"):
            return TopKResult(
                _drain(heap),
                outcomes,
                partial=any(o.degraded for o in outcomes),
            )

    lock = threading.Lock()
    cancel = threading.Event()
    # Workers adopt the submitting thread's trace position, so their
    # per-video spans stay children of this query's span.
    token = trace.capture()

    def visit_step(video: Video) -> Optional[VideoOutcome]:
        if cancel.is_set():
            return None
        if prune:
            with lock:
                worst = heap[0][0] if len(heap) == k else None
            floor = _prune_floor(worst, exchange)
            if floor is not None:
                bound = _video_bound(formula, video, level, database)
                if bound is not None and bound < floor - SIM_EPS:
                    trace.annotate(bound=bound)
                    return VideoOutcome(video.name, OUTCOME_PRUNED)
        sim = evaluate(video)
        with lock:
            with trace.staged_span(
                trace.TOP_K, trace.KIND_TOPK, "stream-entries"
            ):
                _stream_entries(heap, k, sim, video.name)
        if exchange is not None:
            exchange.publish(sim)
        return VideoOutcome(video.name, OUTCOME_OK)

    def visit(video: Video) -> Optional[VideoOutcome]:
        # Workers re-install the submitting thread's context so the whole
        # fan-out shares one budget and one set of breakers.
        with trace.adopt(token), (
            resilience.activate(context)
            if context is not None
            else nullcontext()
        ):
            return _run_video(
                video, lambda: visit_step(video), active_budget
            )

    def note_failure(future) -> None:
        # Out-of-order early cancellation: a fatal worker failure stops
        # siblings that have not started yet, even before the parent
        # reaches this future in submission order.
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None and (
            strict or isinstance(exc, BudgetExceededError)
        ):
            cancel.set()

    fatal: Optional[BaseException] = None
    deadline = None
    with ThreadPoolExecutor(max_workers=parallelism) as pool:
        futures = [(video, pool.submit(visit, video)) for video in videos]
        for __, future in futures:
            future.add_done_callback(note_failure)
        for video, future in futures:
            abort = fatal if fatal is not None else deadline
            if abort is not None and future.cancel():
                outcomes.append(
                    VideoOutcome(video.name, OUTCOME_TIMED_OUT, abort)
                )
                continue
            try:
                outcome = future.result()
            except BudgetExceededError as exc:
                cancel.set()
                if strict and fatal is None:
                    fatal = exc
                deadline = deadline or exc
                outcomes.append(
                    VideoOutcome(video.name, OUTCOME_TIMED_OUT, exc)
                )
                continue
            except Exception as exc:
                if strict:
                    cancel.set()
                    if fatal is None:
                        fatal = exc
                outcomes.append(VideoOutcome(video.name, OUTCOME_FAILED, exc))
                continue
            if outcome is None:
                outcomes.append(
                    VideoOutcome(
                        video.name, OUTCOME_TIMED_OUT, fatal or deadline
                    )
                )
            else:
                outcomes.append(outcome)
    if fatal is not None:
        raise fatal
    with trace.staged_span(trace.TOP_K, trace.KIND_TOPK, "rank"):
        return TopKResult(
            _drain(heap),
            outcomes,
            partial=any(o.degraded for o in outcomes),
        )


def top_k_videos(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
) -> List[Tuple[str, SimilarityValue]]:
    """Rank whole videos by their root similarity value (browsing queries)."""
    scored = [
        (video.name, engine.evaluate_at_root(formula, video, database=database))
        for video in database.videos()
    ]
    scored.sort(key=lambda item: (-item[1].actual, item[0]))
    return scored[:k]
