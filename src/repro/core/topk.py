"""Top-k retrieval and ranked presentation (paper §1).

"Under our similarity based retrieval, the k top video segments that have
the highest similarity values with respect to the user query will be
retrieved; here, k may be a parameter specified by the user."

Multi-video retrieval is the fast path here: :func:`top_k_across_videos`
streams interval entries into a bounded size-k heap (never expanding a
similarity list into per-segment rows), skips videos whose admissible
upper bound (:func:`repro.core.engine.actual_upper_bound`) cannot crack
the current k-th score, and optionally fans the per-video evaluations out
over a thread pool.  All three features preserve the exact ranking of the
naive serial scan: the k best segments under the total order
``(-actual, video, segment_id)`` are a canonical set, independent of
evaluation or merge order, and pruning only ever skips videos whose every
segment ranks strictly below the current k-th.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import instrument
from repro.core.engine import RetrievalEngine, actual_upper_bound
from repro.core.simlist import SIM_EPS, SimilarityList, SimilarityValue
from repro.errors import UnsupportedFormulaError
from repro.htl import ast
from repro.model.database import VideoDatabase
from repro.model.hierarchy import Video


@dataclass(frozen=True)
class RetrievedSegment:
    """One ranked answer: which video, which segment, how similar."""

    video: str
    segment_id: int
    actual: float
    maximum: float

    @property
    def fraction(self) -> float:
        return self.actual / self.maximum


def ranked_entries(sim: SimilarityList) -> List[Tuple[int, int, float]]:
    """List entries sorted by descending similarity (the paper's Table 4
    presentation), as ``(begin, end, actual)`` triples."""
    triples = [
        (entry.begin, entry.end, entry.actual) for entry in sim.entries
    ]
    triples.sort(key=lambda triple: (-triple[2], triple[0]))
    return triples


def top_k_segments(
    sim: SimilarityList, k: int, video: str = ""
) -> List[RetrievedSegment]:
    """The k highest-similarity segments of one list.

    Ties break on ascending segment id, so results are deterministic.
    Intervals are expanded lazily in rank order — no full expansion.
    """
    if k <= 0:
        return []
    results: List[RetrievedSegment] = []
    for begin, end, actual in ranked_entries(sim):
        for segment_id in range(begin, end + 1):
            results.append(
                RetrievedSegment(video, segment_id, actual, sim.maximum)
            )
            if len(results) == k:
                return results
    return results


class _DescStr:
    """A string ordered in reverse, so heap tuples can mix ascending actual
    values with descending tie-break columns."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        self.value = value

    def __lt__(self, other: "_DescStr") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _DescStr) and self.value == other.value


#: A heap item: (actual, reversed video name, negated segment id, maximum).
#: Under the min-heap order, heap[0] is the *worst*-ranked kept segment —
#: lowest actual, then lexicographically largest video, then largest id —
#: exactly the one a better candidate should displace.
_HeapItem = Tuple[float, _DescStr, int, float]


def _stream_entries(
    heap: List[_HeapItem], k: int, sim: SimilarityList, video: str
) -> None:
    """Fold one video's similarity list into the bounded global heap.

    Entries stay interval-compressed: at most ``k`` segments per entry are
    ever materialised (ties within an entry break on ascending id, so its
    best k segments are its first k), and whole entries are skipped when
    they cannot beat the current k-th score.
    """
    name = _DescStr(video)
    for entry in sim.entries:
        if len(heap) == k and entry.actual < heap[0][0]:
            continue
        last = min(entry.end, entry.begin + k - 1)
        for segment_id in range(entry.begin, last + 1):
            item = (entry.actual, name, -segment_id, sim.maximum)
            if len(heap) < k:
                heapq.heappush(heap, item)
            elif heap[0] < item:
                heapq.heapreplace(heap, item)
            else:
                # Later segments of this entry rank strictly worse.
                break


def _drain(heap: List[_HeapItem]) -> List[RetrievedSegment]:
    """Best-first results from the bounded heap."""
    return [
        RetrievedSegment(name.value, -neg_id, actual, maximum)
        for actual, name, neg_id, maximum in sorted(heap, reverse=True)
    ]


def _video_bound(
    formula: ast.Formula,
    video: Video,
    level: int,
    database: VideoDatabase,
) -> Optional[float]:
    """Admissible per-video upper bound, or None when none is derivable."""
    try:
        return actual_upper_bound(formula, video, level, database)
    except UnsupportedFormulaError:
        return None


def top_k_across_videos(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
    level: int = 2,
    *,
    parallelism: Optional[int] = None,
    prune: bool = True,
) -> List[RetrievedSegment]:
    """Evaluate the query on every video and rank segments globally.

    Multiple videos are handled exactly as the paper prescribes — "using
    two numbers one of which gives the video id and the other gives the id
    of the video segment within the video".

    ``prune=True`` skips a video when its admissible upper bound is
    strictly below the current k-th score; ``parallelism >= 2`` evaluates
    videos on that many threads.  Both knobs return rankings identical to
    the serial unpruned scan (see the module docstring for why).
    """
    if k <= 0:
        return []
    heap: List[_HeapItem] = []
    videos = list(database.videos())

    if parallelism is None or parallelism <= 1:
        for video in videos:
            if prune and len(heap) == k:
                bound = _video_bound(formula, video, level, database)
                if bound is not None and bound < heap[0][0] - SIM_EPS:
                    continue
            sim = engine.evaluate_video(
                formula, video, level=level, database=database
            )
            with instrument.stage(instrument.TOP_K):
                _stream_entries(heap, k, sim, video.name)
        with instrument.stage(instrument.TOP_K):
            return _drain(heap)

    lock = threading.Lock()

    def visit(video: Video) -> None:
        if prune:
            with lock:
                worst = heap[0][0] if len(heap) == k else None
            if worst is not None:
                bound = _video_bound(formula, video, level, database)
                if bound is not None and bound < worst - SIM_EPS:
                    return
        sim = engine.evaluate_video(
            formula, video, level=level, database=database
        )
        with lock:
            with instrument.stage(instrument.TOP_K):
                _stream_entries(heap, k, sim, video.name)

    with ThreadPoolExecutor(max_workers=parallelism) as pool:
        # Consume the iterator so worker exceptions propagate.
        for __ in pool.map(visit, videos):
            pass
    with instrument.stage(instrument.TOP_K):
        return _drain(heap)


def top_k_videos(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
) -> List[Tuple[str, SimilarityValue]]:
    """Rank whole videos by their root similarity value (browsing queries)."""
    scored = [
        (video.name, engine.evaluate_at_root(formula, video, database=database))
        for video in database.videos()
    ]
    scored.sort(key=lambda item: (-item[1].actual, item[0]))
    return scored[:k]
