"""Top-k retrieval and ranked presentation (paper §1).

"Under our similarity based retrieval, the k top video segments that have
the highest similarity values with respect to the user query will be
retrieved; here, k may be a parameter specified by the user."
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.engine import RetrievalEngine
from repro.core.simlist import SimilarityList, SimilarityValue
from repro.htl import ast
from repro.model.database import VideoDatabase


@dataclass(frozen=True)
class RetrievedSegment:
    """One ranked answer: which video, which segment, how similar."""

    video: str
    segment_id: int
    actual: float
    maximum: float

    @property
    def fraction(self) -> float:
        return self.actual / self.maximum


def ranked_entries(sim: SimilarityList) -> List[Tuple[int, int, float]]:
    """List entries sorted by descending similarity (the paper's Table 4
    presentation), as ``(begin, end, actual)`` triples."""
    triples = [
        (entry.begin, entry.end, entry.actual) for entry in sim.entries
    ]
    triples.sort(key=lambda triple: (-triple[2], triple[0]))
    return triples


def top_k_segments(
    sim: SimilarityList, k: int, video: str = ""
) -> List[RetrievedSegment]:
    """The k highest-similarity segments of one list.

    Ties break on ascending segment id, so results are deterministic.
    Intervals are expanded lazily in rank order — no full expansion.
    """
    if k <= 0:
        return []
    results: List[RetrievedSegment] = []
    for begin, end, actual in ranked_entries(sim):
        for segment_id in range(begin, end + 1):
            results.append(
                RetrievedSegment(video, segment_id, actual, sim.maximum)
            )
            if len(results) == k:
                return results
    return results


def top_k_across_videos(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
    level: int = 2,
) -> List[RetrievedSegment]:
    """Evaluate the query on every video and rank segments globally.

    Multiple videos are handled exactly as the paper prescribes — "using
    two numbers one of which gives the video id and the other gives the id
    of the video segment within the video".
    """
    candidates: List[Tuple[float, str, int, float]] = []
    for video in database.videos():
        sim = engine.evaluate_video(formula, video, level=level, database=database)
        for entry in sim.entries:
            for segment_id in entry.interval:
                candidates.append(
                    (entry.actual, video.name, segment_id, sim.maximum)
                )
    best = heapq.nsmallest(
        k, candidates, key=lambda item: (-item[0], item[1], item[2])
    )
    return [
        RetrievedSegment(video, segment_id, actual, maximum)
        for actual, video, segment_id, maximum in best
    ]


def top_k_videos(
    engine: RetrievalEngine,
    formula: ast.Formula,
    database: VideoDatabase,
    k: int,
) -> List[Tuple[str, SimilarityValue]]:
    """Rank whole videos by their root similarity value (browsing queries)."""
    scored = [
        (video.name, engine.evaluate_at_root(formula, video, database=database))
        for video in database.videos()
    ]
    scored.sort(key=lambda item: (-item[1].actual, item[0]))
    return scored[:k]
